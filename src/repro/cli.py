"""Command-line interface: regenerate any table or figure of the paper.

Usage::

    repro list                      # what can be regenerated
    repro run fig1                  # regenerate Figure 1 (default scale)
    repro run tab4 --scale smoke    # quick noisy version
    repro run all --scale default   # everything, in order
    repro run fig1 --workers 8 --cache-dir ~/.cache/repro
    repro bench --json bench.json   # machine-readable sweep timings
    repro bench --profile           # cProfile + phase attribution
    repro bench --compare old.json new.json   # regression gate (>20%)
    repro check --quick             # runtime invariant audit (CI smoke)
    repro check --fuzz 50           # full audit + 50 fuzz cases
    repro check --config '{"algorithm": "cbf", "scheme": "R2"}'
    repro lint src/ --baseline lint-baseline.json   # static determinism gate
    repro lint src/ --format json --rule DET001     # one rule, JSON report
    repro trace record --out runs/r2 --schemes R2   # traced sweep
    repro trace summary runs/r2/trace.jsonl
    repro trace export-chrome runs/r2/trace.jsonl --out r2.trace.json
    repro probe record --out runs/p --schemes R2 --cadence 30
    repro probe summary runs/p/probes.jsonl
    repro probe plot-ascii runs/p/probes.jsonl --field utilisation
    repro probe compare runs/a/probes.jsonl runs/b/probes.jsonl
    repro probe export-chrome runs/p/probes.jsonl --out p.trace.json
    repro serve --state-dir runs/svc --port 8642    # async sweep service
    repro worker --url http://127.0.0.1:8642        # lease + compute chunks
    repro job submit --url http://127.0.0.1:8642 --schemes R2 NONE \\
        --replications 2 --executor workqueue       # returns a job id
    repro job wait --url http://127.0.0.1:8642 job-0001
    repro job result --url http://127.0.0.1:8642 job-0001 --out grid.json
    repro cache prune --cache-dir ~/.cache/repro    # drop stale-schema files

Scales are defined in :mod:`repro.analysis.registry`; ``--workers``
parallelises replications across processes.  ``--cache-dir`` persists
simulation results on disk (content-addressed by config + replication),
so reruns and figures sharing the paired NONE baseline skip simulation;
``--no-cache`` disables caching entirely.

Output discipline: reports, JSON payloads and filtered trace lines go
to **stdout**; all diagnostics flow through :mod:`repro.obs.log` to
**stderr** (``-v`` for debug detail, ``-q`` for warnings only), so
piped output stays machine-readable.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

from .analysis.registry import REGISTRY, SCALES, run_experiment
from .core.parallel import resolve_workers
from .obs.log import get_logger, setup_logging
from .obs.trace import EVENT_TYPES

_log = get_logger("cli")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'On the Harmfulness of Redundant Batch "
            "Requests' (Casanova, HPDC 2006)"
        ),
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="more diagnostics on stderr (repeatable)",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="warnings and errors only",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the reproducible tables and figures")

    run = sub.add_parser("run", help="regenerate one experiment (or 'all')")
    run.add_argument(
        "experiment",
        help=f"experiment id: one of {', '.join(sorted(REGISTRY))}, or 'all'",
    )
    run.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default=None,
        help="experiment scale (overrides REPRO_SCALE; default: 'default')",
    )
    run.add_argument(
        "--workers",
        type=int,
        default=None,
        help="processes for replication parallelism (overrides REPRO_WORKERS)",
    )
    run.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="persist simulation results in this directory "
        "(overrides REPRO_CACHE_DIR)",
    )
    run.add_argument(
        "--no-cache",
        action="store_true",
        help="disable result caching (in-memory and on-disk)",
    )
    run.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the report(s) as JSON (experiment id is appended "
        "when running 'all')",
    )
    run.add_argument(
        "--csv",
        metavar="DIR",
        default=None,
        help="also write each report table as CSV into this directory",
    )

    bench = sub.add_parser(
        "bench",
        help="time the sweep engine (serial vs parallel, cold vs warm cache)",
    )
    bench.add_argument(
        "--workers",
        type=int,
        default=4,
        help="worker processes for the parallel measurement (default 4)",
    )
    bench.add_argument(
        "--schemes",
        nargs="+",
        default=None,
        metavar="SCHEME",
        help="schemes to sweep (default: the paper's R2 R3 R4 HALF ALL)",
    )
    bench.add_argument(
        "--replications",
        type=int,
        default=16,
        help="replications per config (default 16)",
    )
    bench.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write machine-readable timings to PATH ('-' for stdout only)",
    )
    bench.add_argument(
        "--profile",
        action="store_true",
        help="profile a serial sweep instead of timing it: cProfile "
        "hot spots plus generate/simulate/aggregate phase attribution",
    )
    bench.add_argument(
        "--top",
        type=int,
        default=20,
        help="hot functions to show with --profile (default 20)",
    )
    bench.add_argument(
        "--compare",
        nargs=2,
        metavar=("OLD", "NEW"),
        default=None,
        help="compare two bench --json payloads (or BENCH_*.json "
        "trajectory wrappers) instead of running; exits non-zero when "
        "any benchmark regressed by more than 20%%",
    )
    bench.add_argument(
        "--phase",
        action="store_true",
        help="time a reduced phase-diagram sweep (policy x d x regime x "
        "load) instead of the scheme sweep; the JSON payload carries the "
        "classified grid",
    )

    check = sub.add_parser(
        "check",
        help="run the runtime sanitizer (invariant audit + differential "
        "oracle + fuzz)",
    )
    check.add_argument(
        "--quick",
        action="store_true",
        help="small platforms and fuzz budget (the CI smoke posture)",
    )
    check.add_argument(
        "--fuzz",
        type=int,
        default=None,
        metavar="N",
        help="fuzz cases to run (default: 8 quick / 25 full; 0 disables)",
    )
    check.add_argument(
        "--config",
        default=None,
        metavar="JSON",
        help="audit one configuration instead of the suite: an inline "
        "JSON object of ExperimentConfig fields, or a path to a JSON "
        "file (skips the oracle and fuzz stages)",
    )

    trace = sub.add_parser(
        "trace",
        help="record and inspect lifecycle event traces",
    )
    tsub = trace.add_subparsers(dest="trace_command", required=True)

    rec = tsub.add_parser(
        "record",
        help="run a traced sweep; write trace.jsonl + manifest.json",
    )
    rec.add_argument("--out", required=True, metavar="DIR",
                     help="output directory for trace.jsonl + manifest.json")
    rec.add_argument("--schemes", nargs="+", default=["ALL"],
                     metavar="SCHEME", help="schemes to trace (default: ALL)")
    rec.add_argument("--replications", type=int, default=1,
                     help="replications per scheme (default 1)")
    rec.add_argument("--workers", type=int, default=1,
                     help="worker processes (traces stay byte-identical)")
    rec.add_argument("--clusters", type=int, default=5,
                     help="clusters in the platform (default 5)")
    rec.add_argument("--nodes", type=int, default=32,
                     help="nodes per cluster (default 32)")
    rec.add_argument("--duration", type=float, default=900.0,
                     help="submission window in seconds (default 900)")
    rec.add_argument("--load", type=float, default=2.0,
                     help="offered load rho (default 2.0)")
    rec.add_argument("--algorithm", default="easy",
                     help="scheduler algorithm (default easy)")
    rec.add_argument("--seed", type=int, default=20060619,
                     help="master seed (default 20060619)")

    summ = tsub.add_parser("summary", help="aggregate view of a trace")
    summ.add_argument("trace", metavar="TRACE", help="path to trace.jsonl")

    exp = tsub.add_parser(
        "export-chrome",
        help="convert a trace to Chrome trace_event JSON (chrome://tracing)",
    )
    exp.add_argument("trace", metavar="TRACE", help="path to trace.jsonl")
    exp.add_argument("--out", required=True, metavar="PATH",
                     help="output .json path")

    filt = tsub.add_parser(
        "filter",
        help="print matching trace events as JSONL on stdout",
    )
    filt.add_argument("trace", metavar="TRACE", help="path to trace.jsonl")
    filt.add_argument("--type", dest="types", action="append",
                      choices=EVENT_TYPES, metavar="TYPE",
                      help=f"event type (repeatable): {', '.join(EVENT_TYPES)}")
    filt.add_argument("--cluster", type=int, default=None)
    filt.add_argument("--job", type=int, default=None)
    filt.add_argument("--request", type=int, default=None)
    filt.add_argument("--config", type=int, default=None,
                      help="config index within the trace")
    filt.add_argument("--rep", type=int, default=None)
    filt.add_argument("--t-min", type=float, default=None)
    filt.add_argument("--t-max", type=float, default=None)

    from .obs.probes import DEFAULT_PROBE_CADENCE

    probe = sub.add_parser(
        "probe",
        help="record and inspect sim-time probe series (online observability)",
    )
    psub = probe.add_subparsers(dest="probe_command", required=True)

    prec = psub.add_parser(
        "record",
        help="run a probed sweep; write probes.jsonl + manifest.json",
    )
    prec.add_argument("--out", required=True, metavar="DIR",
                      help="output directory for probes.jsonl + manifest.json")
    prec.add_argument("--schemes", nargs="+", default=["ALL"],
                      metavar="SCHEME", help="schemes to probe (default: ALL)")
    prec.add_argument("--replications", type=int, default=1,
                      help="replications per scheme (default 1)")
    prec.add_argument("--workers", type=int, default=1,
                      help="worker processes (probes stay byte-identical)")
    prec.add_argument("--cadence", type=float, default=DEFAULT_PROBE_CADENCE,
                      help="sim-seconds between samples "
                      f"(default {DEFAULT_PROBE_CADENCE:g})")
    prec.add_argument("--clusters", type=int, default=5,
                      help="clusters in the platform (default 5)")
    prec.add_argument("--nodes", type=int, default=32,
                      help="nodes per cluster (default 32)")
    prec.add_argument("--duration", type=float, default=900.0,
                      help="submission window in seconds (default 900)")
    prec.add_argument("--load", type=float, default=2.0,
                      help="offered load rho (default 2.0)")
    prec.add_argument("--algorithm", default="easy",
                      help="scheduler algorithm (default easy)")
    prec.add_argument("--seed", type=int, default=20060619,
                      help="master seed (default 20060619)")

    psum = psub.add_parser("summary", help="aggregate view of a probe series")
    psum.add_argument("probes", metavar="PROBES", help="path to probes.jsonl")

    pplot = psub.add_parser(
        "plot-ascii",
        help="plot one probe field over sim time as ASCII",
    )
    pplot.add_argument("probes", metavar="PROBES", help="path to probes.jsonl")
    pplot.add_argument("--field", default="utilisation",
                       help="probe field to plot (default: utilisation); "
                       "cluster fields: queue_depth busy_nodes utilisation; "
                       "kernel fields: outstanding_duplicates "
                       "wasted_node_seconds pending_events compactions")
    pplot.add_argument("--cluster", type=int, default=None,
                       help="restrict to one cluster (kernel rows are -1; "
                       "default: one series per cluster carrying the field)")
    pplot.add_argument("--config", type=int, default=None,
                       help="config index within the series")
    pplot.add_argument("--rep", type=int, default=None,
                       help="replication index")

    pcmp = psub.add_parser(
        "compare",
        help="compare two probe series; exit non-zero if they diverge",
    )
    pcmp.add_argument("probes", nargs=2, metavar=("A", "B"),
                      help="two probes.jsonl paths")

    pexp = psub.add_parser(
        "export-chrome",
        help="convert a probe series to Chrome counter tracks "
        "(chrome://tracing)",
    )
    pexp.add_argument("probes", metavar="PROBES", help="path to probes.jsonl")
    pexp.add_argument("--out", required=True, metavar="PATH",
                      help="output .json path")

    serve = sub.add_parser(
        "serve",
        help="run the sweep service: submit jobs over HTTP, poll, fetch",
    )
    serve.add_argument("--state-dir", required=True, metavar="DIR",
                       help="service state: jobs/, shared result cache")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1; the wire "
                       "protocol trusts its peers — keep it loopback)")
    serve.add_argument("--port", type=int, default=8642,
                       help="bind port (default 8642; 0 picks a free port)")

    worker = sub.add_parser(
        "worker",
        help="lease chunks from a sweep service and compute them",
    )
    worker.add_argument("--url", required=True, metavar="URL",
                        help="service base url, e.g. http://127.0.0.1:8642")
    worker.add_argument("--worker-id", default=None,
                        help="worker identity in service logs (default: "
                        "derived from pid)")
    worker.add_argument("--poll-interval", type=float, default=0.2,
                        help="seconds between empty lease polls (default 0.2)")
    worker.add_argument("--max-chunks", type=int, default=None,
                        help="exit after this many completed chunks")
    worker.add_argument("--max-idle-polls", type=int, default=None,
                        help="exit after this many consecutive empty polls "
                        "(one-shot drain mode for CI)")

    job = sub.add_parser("job", help="submit and inspect sweep-service jobs")
    jsub = job.add_subparsers(dest="job_command", required=True)

    def job_url(p: argparse.ArgumentParser) -> None:
        p.add_argument("--url", required=True, metavar="URL",
                       help="service base url, e.g. http://127.0.0.1:8642")

    jsubmit = jsub.add_parser(
        "submit", help="submit a sweep job; prints the job id",
    )
    job_url(jsubmit)
    jsubmit.add_argument("--spec", default=None, metavar="PATH",
                         help="JobSpec JSON file ('-' for stdin); overrides "
                         "the config flags below")
    jsubmit.add_argument("--schemes", nargs="+", default=["R2"],
                         metavar="SCHEME",
                         help="one config per scheme (default: R2)")
    jsubmit.add_argument("--replications", type=int, default=1,
                         help="replications per config (default 1)")
    jsubmit.add_argument("--clusters", type=int, default=5,
                         help="clusters in the platform (default 5)")
    jsubmit.add_argument("--nodes", type=int, default=32,
                         help="nodes per cluster (default 32)")
    jsubmit.add_argument("--duration", type=float, default=900.0,
                         help="submission window in seconds (default 900)")
    jsubmit.add_argument("--load", type=float, default=2.0,
                         help="offered load rho (default 2.0)")
    jsubmit.add_argument("--algorithm", default="easy",
                         help="scheduler algorithm (default easy)")
    jsubmit.add_argument("--seed", type=int, default=20060619,
                         help="master seed (default 20060619)")
    jsubmit.add_argument("--executor",
                         choices=("inprocess", "pool", "workqueue"),
                         default="inprocess",
                         help="how the server runs the grid (default "
                         "inprocess; workqueue needs `repro worker`s)")
    jsubmit.add_argument("--workers", type=int, default=1,
                         help="pool executor width (default 1)")
    jsubmit.add_argument("--chunksize", type=int, default=None,
                         help="tasks per chunk (default: auto)")
    jsubmit.add_argument("--lease-ttl", type=float, default=30.0,
                         help="workqueue lease TTL in seconds (default 30)")
    jsubmit.add_argument("--max-attempts", type=int, default=3,
                         help="lease attempts per chunk before the job "
                         "fails (default 3)")
    jsubmit.add_argument("--wait", action="store_true",
                         help="block until the job reaches a terminal state")
    jsubmit.add_argument("--timeout", type=float, default=None,
                         help="give up waiting after this many seconds")

    jstatus = jsub.add_parser("status", help="one job's status as JSON")
    job_url(jstatus)
    jstatus.add_argument("job_id", metavar="JOB_ID")

    jwait = jsub.add_parser(
        "wait", help="poll until the job is done/failed/cancelled",
    )
    job_url(jwait)
    jwait.add_argument("job_id", metavar="JOB_ID")
    jwait.add_argument("--timeout", type=float, default=None,
                       help="give up after this many seconds")
    jwait.add_argument("--poll-interval", type=float, default=0.2,
                       help="seconds between polls (default 0.2)")

    jresult = jsub.add_parser(
        "result", help="fetch the job's canonical results JSON",
    )
    job_url(jresult)
    jresult.add_argument("job_id", metavar="JOB_ID")
    jresult.add_argument("--out", default=None, metavar="PATH",
                         help="write here instead of stdout")

    jcancel = jsub.add_parser("cancel", help="cancel a running job")
    job_url(jcancel)
    jcancel.add_argument("job_id", metavar="JOB_ID")

    jlist = jsub.add_parser("list", help="all jobs, one JSON line each")
    job_url(jlist)

    cache = sub.add_parser("cache", help="manage the on-disk result cache")
    csub = cache.add_subparsers(dest="cache_command", required=True)
    cprune = csub.add_parser(
        "prune",
        help="delete unreadable or stale-schema cache files",
    )
    cprune.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="cache directory (default: REPRO_CACHE_DIR)")

    from .lint.cli import add_lint_parser

    add_lint_parser(sub)
    return parser


def cmd_list() -> int:
    width = max(len(k) for k in REGISTRY)
    for exp_id, (title, _) in REGISTRY.items():
        print(f"  {exp_id:<{width}}  {title}")
    return 0


def _apply_cache_flags(cache_dir: Optional[str], no_cache: bool) -> None:
    if no_cache:
        os.environ["REPRO_NO_CACHE"] = "1"
    elif cache_dir is not None:
        os.environ.pop("REPRO_NO_CACHE", None)
        os.environ["REPRO_CACHE_DIR"] = cache_dir


def cmd_run(
    experiment: str,
    scale: Optional[str],
    workers: Optional[int],
    json_path: Optional[str] = None,
    csv_dir: Optional[str] = None,
    cache_dir: Optional[str] = None,
    no_cache: bool = False,
) -> int:
    if scale is not None:
        os.environ["REPRO_SCALE"] = scale
    if workers is not None:
        try:
            os.environ["REPRO_WORKERS"] = str(
                resolve_workers(workers, source="--workers")
            )
        except ValueError as exc:
            _log.error("%s", exc)
            return 2
    _apply_cache_flags(cache_dir, no_cache)
    ids = sorted(REGISTRY) if experiment == "all" else [experiment]
    many = len(ids) > 1
    for exp_id in ids:
        if exp_id not in REGISTRY:
            _log.error("unknown experiment %r; run 'repro list'", exp_id)
            return 2
        t0 = time.perf_counter()
        report = run_experiment(exp_id)
        elapsed = time.perf_counter() - t0
        print(report.render())
        _log.info("%s took %.1fs", exp_id, elapsed)
        if json_path is not None:
            from .analysis.export import report_to_json

            target = Path(json_path)
            if many:
                target = target.with_name(
                    f"{target.stem}_{exp_id}{target.suffix or '.json'}"
                )
            report_to_json(report, target)
            _log.info("wrote %s", target)
        if csv_dir is not None:
            from .analysis.export import table_to_csv

            directory = Path(csv_dir)
            directory.mkdir(parents=True, exist_ok=True)
            for i, table in enumerate(report.tables):
                path = directory / f"{exp_id}_table{i}.csv"
                table_to_csv(table, path)
                _log.info("wrote %s", path)
    return 0


def cmd_bench_phase(
    workers: int, replications: int, json_path: Optional[str]
) -> int:
    """Time a reduced phase-diagram sweep; emit the classified grid.

    Runs the smoke-scale grid (both cancellation policies, R2, the
    Lublin and scaled-Bernoulli regimes at ρ = 1.8) and reports timing
    plus the helpful/harmful classification per cell.  Exits non-zero if
    the sweep produced no classifiable cells (schema guard for CI).
    """
    from .analysis.registry import SCALES, phase_base_config
    from .core.cache import shared_cache

    try:
        workers = resolve_workers(workers, source="--workers")
    except ValueError as exc:
        _log.error("%s", exc)
        return 2
    from .policies.phase import CLASSES, run_phase_diagram

    scale = SCALES["smoke"]
    _log.info(
        "bench --phase: %d polic(ies) x %d degree(s) x %d regime(s) x "
        "%d load(s), %d replication(s), workers=%d",
        len(scale.phase_policies), len(scale.phase_degrees),
        len(scale.phase_regimes), len(scale.phase_loads),
        replications, workers,
    )
    t0 = time.perf_counter()
    diagram = run_phase_diagram(
        phase_base_config(scale),
        policies=scale.phase_policies,
        degrees=scale.phase_degrees,
        regimes=scale.phase_regimes,
        loads=scale.phase_loads,
        n_replications=replications,
        n_workers=workers,
        cache=shared_cache(),
    )
    elapsed = time.perf_counter() - t0
    ok = bool(diagram.cells) and all(
        c.stretch_class in CLASSES and c.waste_class in CLASSES
        for c in diagram.cells
    )
    payload = {
        "bench": "phase_diagram",
        "cpu_count": os.cpu_count(),
        "config": {"replications": replications, "workers": workers},
        "timings_s": {"sweep": elapsed},
        "cells_per_second": len(diagram.cells) / elapsed if elapsed else 0.0,
        "schema_ok": ok,
        **diagram.to_payload(),
    }
    text = json.dumps(payload, indent=2, sort_keys=True)
    if json_path and json_path != "-":
        Path(json_path).write_text(text + "\n")
        _log.info("wrote %s", json_path)
    else:
        print(text)
    _log.info(
        "bench --phase: %d cells in %.2fs (%d helpful, %d harmful)",
        len(diagram.cells), elapsed,
        payload["n_helpful"], payload["n_harmful"],
    )
    return 0 if ok else 1


def cmd_bench_compare(old_path: str, new_path: str) -> int:
    """Diff two bench payloads; exit 1 on any >20% regression."""
    from .bench import compare_payloads, load_bench_payload

    try:
        old = load_bench_payload(old_path)
        new = load_bench_payload(new_path)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        _log.error("%s", exc)
        return 2
    comparison = compare_payloads(old, new)
    print(f"bench compare: {old_path} -> {new_path}")
    print(comparison.render())
    return 0 if comparison.ok else 1


def cmd_bench_profile(
    schemes: Optional[Sequence[str]],
    replications: int,
    top: int,
    json_path: Optional[str],
) -> int:
    """Profile a serial sweep; phase attribution + cProfile hot spots."""
    from .bench import profile_sweep
    from .core.config import ExperimentConfig
    from .core.schemes import PAPER_SCHEME_ORDER

    schemes = list(schemes) if schemes else list(PAPER_SCHEME_ORDER)
    cfg = ExperimentConfig(
        n_clusters=5, nodes_per_cluster=32, duration=900.0,
        offered_load=2.0, drain=True, seed=20060619,
    )
    _log.info(
        "profiling %d schemes x %d replications (serial, cProfile)",
        len(schemes), replications,
    )
    report = profile_sweep(cfg, schemes, replications, top=top)
    if json_path and json_path != "-":
        Path(json_path).write_text(
            json.dumps(report.as_dict(), indent=2, sort_keys=True) + "\n"
        )
        _log.info("wrote %s", json_path)
    print(report.render())
    return 0


def cmd_bench(
    workers: int,
    schemes: Optional[Sequence[str]],
    replications: int,
    json_path: Optional[str],
) -> int:
    """Benchmark the sweep engine and emit machine-readable timings.

    Three measurements over the same 5-scheme comparison grid:

    * ``serial``   — fresh run, one process, no cache (the seed path);
    * ``parallel`` — fresh run, ``--workers`` processes, no cache;
    * ``cold``/``warm`` — disk-cached runs into a temp directory; the
      warm rerun must hit the cache for every task.

    The payload folds in a :class:`~repro.obs.metrics.MetricsRegistry`
    snapshot (simulation counters summed over the serial sweep plus the
    engine's cache accounting) and a run manifest, so a bench artifact
    records what produced it.
    """
    import tempfile

    from .core.cache import ResultCache
    from .core.parallel import GridStats
    from .core.runner import compare_schemes
    from .core.schemes import PAPER_SCHEME_ORDER
    from .obs.manifest import build_manifest
    from .obs.metrics import MetricsRegistry, aggregate_results
    from .obs.stream import ONLINE_SCHEMA_VERSION, merge_online_payloads

    try:
        workers = resolve_workers(workers, source="--workers")
    except ValueError as exc:
        _log.error("%s", exc)
        return 2
    schemes = list(schemes) if schemes else list(PAPER_SCHEME_ORDER)
    from .core.config import ExperimentConfig

    cfg = ExperimentConfig(
        n_clusters=5, nodes_per_cluster=32, duration=900.0,
        offered_load=2.0, drain=True, seed=20060619,
    )
    n_tasks = (len(schemes) + 1) * replications
    _log.info(
        "bench: %d schemes x %d replications (+ baseline) = %d simulations; "
        "workers=%d", len(schemes), replications, n_tasks, workers,
    )

    stats = GridStats()
    metrics = MetricsRegistry()
    t_wall = time.perf_counter()
    with metrics.timer("bench_serial_s"):
        t0 = time.perf_counter()
        serial = compare_schemes(cfg, schemes, replications, n_workers=1,
                                 stats=stats, metrics=metrics)
        t_serial = time.perf_counter() - t0
    _log.info("bench serial:   %.2fs", t_serial)

    with metrics.timer("bench_parallel_s"):
        t0 = time.perf_counter()
        parallel = compare_schemes(cfg, schemes, replications,
                                   n_workers=workers, stats=stats,
                                   metrics=metrics)
        t_parallel = time.perf_counter() - t0
    _log.info("bench parallel: %.2fs (speedup %.2fx)",
              t_parallel, t_serial / t_parallel)

    identical = all(
        serial.relative(s) == parallel.relative(s) for s in schemes
    )

    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        cache = ResultCache(tmp)
        with metrics.timer("bench_cold_cache_s"):
            t0 = time.perf_counter()
            compare_schemes(cfg, schemes, replications, n_workers=workers,
                            cache=cache, stats=stats, metrics=metrics)
            t_cold = time.perf_counter() - t0
        cache.clear_memory()  # force the warm run through the disk layer
        warm_start_hits = cache.stats.hits
        with metrics.timer("bench_warm_cache_s"):
            t0 = time.perf_counter()
            warm = compare_schemes(cfg, schemes, replications,
                                   n_workers=workers, cache=cache,
                                   stats=stats, metrics=metrics)
            t_warm = time.perf_counter() - t0
        warm_hits = cache.stats.hits - warm_start_hits
    _log.info("bench cold cache: %.2fs; warm cache: %.2fs "
              "(%d/%d tasks from cache)", t_cold, t_warm, warm_hits, n_tasks)
    identical = identical and all(
        serial.relative(s) == warm.relative(s) for s in schemes
    )

    # Simulation counters from the serial sweep only (the other three
    # sweeps rerun/cache the same grid; counting them would triple up).
    aggregate_results(
        [r for r in serial.baseline]
        + [r for results in serial.per_scheme.values() for r in results],
        metrics,
    )

    # Streaming estimator payloads (Welford + P²) merged across the
    # serial sweep's replications, per scheme and overall — the sweep's
    # headline distributions without holding any per-request arrays.
    online = {
        "schema": ONLINE_SCHEMA_VERSION,
        "baseline": merge_online_payloads(
            r.online_metrics for r in serial.baseline
        ),
        "per_scheme": {
            s: merge_online_payloads(
                r.online_metrics for r in serial.per_scheme[s]
            )
            for s in schemes
        },
        "overall": merge_online_payloads(
            r.online_metrics
            for results in serial.per_scheme.values()
            for r in results
        ),
    }

    bench_configs = [cfg.with_(scheme="NONE")] + [
        cfg.with_(scheme=s) for s in schemes
    ]
    manifest = build_manifest(
        bench_configs,
        n_replications=replications,
        n_workers=workers,
        wall_time_s=time.perf_counter() - t_wall,
        grid_stats=stats.as_dict(),
        command=["repro", "bench"],
        extra={"bench": "parallel_sweep"},
    )

    payload = {
        "bench": "parallel_sweep",
        "cpu_count": os.cpu_count(),
        "config": {
            "schemes": schemes,
            "replications": replications,
            "workers": workers,
            "n_tasks": n_tasks,
        },
        "timings_s": {
            "serial": t_serial,
            "parallel": t_parallel,
            "cold_cache": t_cold,
            "warm_cache": t_warm,
        },
        "speedup_parallel": t_serial / t_parallel,
        "speedup_warm_cache": t_serial / t_warm,
        "warm_cache_hits": warm_hits,
        "warm_cache_complete": warm_hits == n_tasks,
        "results_identical": identical,
        "online": online,
        "metrics": metrics.snapshot(),
        "manifest": manifest.to_dict(),
        **stats.as_dict(),
    }
    text = json.dumps(payload, indent=2, sort_keys=True)
    if json_path and json_path != "-":
        Path(json_path).write_text(text + "\n")
        _log.info("wrote %s", json_path)
    else:
        print(text)
    return 0 if identical else 1


def cmd_check(
    quick: bool, fuzz: Optional[int], config_spec: Optional[str]
) -> int:
    """Run the sanitizer; exit 0 iff every audited invariant held.

    The report (violations with obs-layer trace context, oracle
    relations, fuzz outcomes) goes to stdout; per-stage progress flows
    to stderr like every other diagnostic.
    """
    from .sanitize import run_check

    t0 = time.perf_counter()
    report = run_check(
        quick=quick,
        fuzz_cases=fuzz,
        config_spec=config_spec,
        progress=lambda msg: _log.info("%s", msg),
    )
    print(report.render())
    _log.info("check took %.1fs", time.perf_counter() - t0)
    return 0 if report.ok else 1


def cmd_trace(args: argparse.Namespace) -> int:
    """Dispatch the ``repro trace`` sub-subcommands."""
    from .obs.trace import filter_events, read_trace, summarize_trace

    if args.trace_command == "record":
        from .core.config import ExperimentConfig
        from .obs.trace import MANIFEST_FILENAME, TRACE_FILENAME, record_sweep

        try:
            workers = resolve_workers(args.workers, source="--workers")
        except ValueError as exc:
            _log.error("%s", exc)
            return 2
        configs = [
            ExperimentConfig(
                scheme=scheme,
                algorithm=args.algorithm,
                n_clusters=args.clusters,
                nodes_per_cluster=args.nodes,
                duration=args.duration,
                offered_load=args.load,
                drain=True,
                seed=args.seed,
            )
            for scheme in args.schemes
        ]
        _log.info(
            "recording traced sweep: %d config(s) x %d replication(s), "
            "workers=%d", len(configs), args.replications, workers,
        )
        _, manifest = record_sweep(
            configs,
            args.replications,
            args.out,
            n_workers=workers,
            command=["repro", "trace", "record"],
        )
        out = Path(args.out)
        _log.info("wrote %s (%d events) and %s",
                  out / TRACE_FILENAME,
                  manifest.extra.get("n_trace_events", 0),
                  out / MANIFEST_FILENAME)
        return 0

    if args.trace_command == "summary":
        _, events = read_trace(args.trace)
        print(json.dumps(summarize_trace(events), indent=2, sort_keys=True))
        return 0

    if args.trace_command == "export-chrome":
        from .obs.chrome import export_chrome

        _, events = read_trace(args.trace)
        out = export_chrome(events, args.out)
        _log.info("wrote %s", out)
        return 0

    if args.trace_command == "filter":
        _, events = read_trace(args.trace)
        for ev in filter_events(
            events,
            types=args.types,
            cluster=args.cluster,
            job=args.job,
            request=args.request,
            config=args.config,
            rep=args.rep,
            t_min=args.t_min,
            t_max=args.t_max,
        ):
            print(json.dumps(ev, sort_keys=True, separators=(",", ":")))
        return 0

    raise AssertionError(
        f"unhandled trace command {args.trace_command}"
    )  # pragma: no cover


def cmd_probe(args: argparse.Namespace) -> int:
    """Dispatch the ``repro probe`` sub-subcommands."""
    from .obs.probes import read_probes, summarize_probes

    if args.probe_command == "record":
        from .core.config import ExperimentConfig
        from .obs.probes import (
            MANIFEST_FILENAME, PROBES_FILENAME, record_probe_sweep,
        )

        try:
            workers = resolve_workers(args.workers, source="--workers")
        except ValueError as exc:
            _log.error("%s", exc)
            return 2
        if args.cadence <= 0.0:
            _log.error("--cadence must be positive, got %g", args.cadence)
            return 2
        configs = [
            ExperimentConfig(
                scheme=scheme,
                algorithm=args.algorithm,
                n_clusters=args.clusters,
                nodes_per_cluster=args.nodes,
                duration=args.duration,
                offered_load=args.load,
                drain=True,
                seed=args.seed,
            )
            for scheme in args.schemes
        ]
        _log.info(
            "recording probed sweep: %d config(s) x %d replication(s), "
            "cadence=%gs, workers=%d",
            len(configs), args.replications, args.cadence, workers,
        )
        _, manifest = record_probe_sweep(
            configs,
            args.replications,
            args.out,
            cadence=args.cadence,
            n_workers=workers,
            command=["repro", "probe", "record"],
        )
        out = Path(args.out)
        _log.info("wrote %s (%d records) and %s",
                  out / PROBES_FILENAME,
                  manifest.extra.get("n_probe_records", 0),
                  out / MANIFEST_FILENAME)
        return 0

    if args.probe_command == "summary":
        _, records = read_probes(args.probes)
        print(json.dumps(summarize_probes(records), indent=2, sort_keys=True))
        return 0

    if args.probe_command == "plot-ascii":
        from .analysis.plots import AsciiPlot
        from .obs.probes import probe_series

        _, records = read_probes(args.probes)
        clusters = (
            [args.cluster] if args.cluster is not None
            else sorted({
                rec["cluster"] for rec in records if args.field in rec
            })
        )
        plot = AsciiPlot(
            title=f"{args.field} ({Path(args.probes).name})",
            xlabel="sim time (s)",
            ylabel=args.field,
        )
        for cluster in clusters:
            points = probe_series(
                records, args.field, cluster=cluster,
                config=args.config, rep=args.rep,
            )
            if points:
                label = "kernel" if cluster == -1 else f"cluster {cluster}"
                plot.add_series(label, points)
        if not plot.series:
            _log.error("no records carry field %r (with those filters)",
                       args.field)
            return 2
        print(plot.render())
        return 0

    if args.probe_command == "compare":
        path_a, path_b = args.probes
        header_a, records_a = read_probes(path_a)
        header_b, records_b = read_probes(path_b)
        divergences = []
        if header_a != header_b:
            divergences.append("headers differ")
        if len(records_a) != len(records_b):
            divergences.append(
                f"record counts differ: {len(records_a)} vs {len(records_b)}"
            )
        first_diff = next(
            (i for i, (a, b) in enumerate(zip(records_a, records_b))
             if a != b),
            None,
        )
        if first_diff is not None:
            divergences.append(f"first differing record at line {first_diff + 2}")
        report = {
            "a": str(path_a),
            "b": str(path_b),
            "identical": not divergences,
            "n_records": [len(records_a), len(records_b)],
            "divergences": divergences,
        }
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0 if not divergences else 1

    if args.probe_command == "export-chrome":
        from .obs.chrome import probes_to_counter_trace

        _, records = read_probes(args.probes)
        payload = probes_to_counter_trace(records)
        out = Path(args.out)
        out.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        _log.info("wrote %s", out)
        return 0

    raise AssertionError(
        f"unhandled probe command {args.probe_command}"
    )  # pragma: no cover


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the sweep service until interrupted.

    The bound endpoint is printed to stdout as one JSON line so shell
    scripts (and the CI smoke job) can capture it even with ``--port 0``.
    """
    from .service.server import SweepService

    service = SweepService(args.state_dir, host=args.host, port=args.port)
    port = service.start()
    url = f"http://{args.host}:{port}"
    print(json.dumps({"url": url, "state_dir": str(args.state_dir)},
                     sort_keys=True), flush=True)
    _log.info("sweep service listening on %s (state: %s)",
              url, args.state_dir)
    try:
        while True:
            time.sleep(1.0)
    except KeyboardInterrupt:
        _log.info("interrupt: stopping service")
    finally:
        service.stop()
    return 0


def cmd_worker(args: argparse.Namespace) -> int:
    """Run one queue worker against a sweep service."""
    from .service.worker import QueueWorker

    worker = QueueWorker(
        args.url,
        worker_id=args.worker_id,
        poll_interval_s=args.poll_interval,
    )
    try:
        completed = worker.run(
            max_chunks=args.max_chunks,
            max_idle_polls=args.max_idle_polls,
        )
    except KeyboardInterrupt:
        _log.info("interrupt: worker exiting")
        return 130
    print(json.dumps({"chunks_completed": completed}, sort_keys=True))
    return 0


def _job_spec_payload(args: argparse.Namespace) -> dict:
    """Build the submit payload from ``--spec`` or the config flags."""
    from .service.jobs import JobSpec

    if args.spec is not None:
        if args.spec == "-":
            text = sys.stdin.read()
        else:
            text = Path(args.spec).read_text(encoding="utf-8")
        # Round-trip through JobSpec so a malformed file fails here,
        # client-side, with a useful message.
        return JobSpec.from_dict(json.loads(text)).to_dict()
    from .core.config import ExperimentConfig

    configs = tuple(
        ExperimentConfig(
            scheme=scheme,
            algorithm=args.algorithm,
            n_clusters=args.clusters,
            nodes_per_cluster=args.nodes,
            duration=args.duration,
            offered_load=args.load,
            drain=True,
            seed=args.seed,
        )
        for scheme in args.schemes
    )
    return JobSpec(
        configs=configs,
        n_replications=args.replications,
        executor=args.executor,
        n_workers=args.workers,
        chunksize=args.chunksize,
        lease_ttl_s=args.lease_ttl,
        max_attempts=args.max_attempts,
    ).to_dict()


def cmd_job(args: argparse.Namespace) -> int:
    """Dispatch the ``repro job`` sub-subcommands."""
    from .service.client import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    try:
        if args.job_command == "submit":
            spec = _job_spec_payload(args)
            job_id = client.submit(spec)
            _log.info("submitted %s", job_id)
            if args.wait:
                status = client.wait(job_id, timeout=args.timeout)
                print(json.dumps(status, indent=2, sort_keys=True))
                return 0 if status.get("state") == "done" else 1
            print(job_id)
            return 0
        if args.job_command == "status":
            print(json.dumps(client.status(args.job_id), indent=2,
                             sort_keys=True))
            return 0
        if args.job_command == "wait":
            status = client.wait(
                args.job_id,
                timeout=args.timeout,
                poll_interval_s=args.poll_interval,
            )
            print(json.dumps(status, indent=2, sort_keys=True))
            return 0 if status.get("state") == "done" else 1
        if args.job_command == "result":
            data = client.results_bytes(args.job_id)
            if args.out is not None and args.out != "-":
                Path(args.out).write_bytes(data)
                _log.info("wrote %s", args.out)
            else:
                sys.stdout.buffer.write(data)
                sys.stdout.buffer.flush()
            return 0
        if args.job_command == "cancel":
            print(json.dumps(client.cancel(args.job_id), indent=2,
                             sort_keys=True))
            return 0
        if args.job_command == "list":
            for job in client.jobs():
                print(json.dumps(job, sort_keys=True,
                                 separators=(",", ":")))
            return 0
    except ServiceError as exc:
        _log.error("%s", exc)
        return 1
    except (OSError, TimeoutError, ValueError,
            json.JSONDecodeError) as exc:
        _log.error("%s", exc)
        return 2
    raise AssertionError(
        f"unhandled job command {args.job_command}"
    )  # pragma: no cover


def cmd_cache(args: argparse.Namespace) -> int:
    """Dispatch the ``repro cache`` sub-subcommands."""
    if args.cache_command == "prune":
        from .core.cache import ResultCache

        cache_dir = args.cache_dir or os.environ.get("REPRO_CACHE_DIR")
        if not cache_dir:
            _log.error(
                "no cache directory: pass --cache-dir or set REPRO_CACHE_DIR"
            )
            return 2
        cache = ResultCache(cache_dir)
        removed = cache.prune_stale()
        _log.info("pruned %d stale file(s) from %s", removed, cache_dir)
        print(json.dumps(
            {"cache_dir": str(cache_dir), "removed": removed},
            sort_keys=True,
        ))
        return 0
    raise AssertionError(
        f"unhandled cache command {args.cache_command}"
    )  # pragma: no cover


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    setup_logging(verbosity=-1 if args.quiet else args.verbose)
    if args.command == "list":
        return cmd_list()
    if args.command == "run":
        return cmd_run(args.experiment, args.scale, args.workers,
                       args.json, args.csv, args.cache_dir, args.no_cache)
    if args.command == "bench":
        if args.compare is not None:
            return cmd_bench_compare(args.compare[0], args.compare[1])
        if args.phase:
            return cmd_bench_phase(args.workers, args.replications,
                                   args.json)
        if args.profile:
            return cmd_bench_profile(args.schemes, args.replications,
                                     args.top, args.json)
        return cmd_bench(args.workers, args.schemes, args.replications,
                         args.json)
    if args.command == "check":
        return cmd_check(args.quick, args.fuzz, args.config)
    if args.command == "trace":
        return cmd_trace(args)
    if args.command == "probe":
        return cmd_probe(args)
    if args.command == "serve":
        return cmd_serve(args)
    if args.command == "worker":
        return cmd_worker(args)
    if args.command == "job":
        return cmd_job(args)
    if args.command == "cache":
        return cmd_cache(args)
    if args.command == "lint":
        from .lint.cli import cmd_lint

        return cmd_lint(args)
    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
