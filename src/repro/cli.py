"""Command-line interface: regenerate any table or figure of the paper.

Usage::

    repro list                      # what can be regenerated
    repro run fig1                  # regenerate Figure 1 (default scale)
    repro run tab4 --scale smoke    # quick noisy version
    repro run all --scale default   # everything, in order

Scales are defined in :mod:`repro.analysis.registry`; ``--workers``
parallelises replications across processes.
"""

from __future__ import annotations

import argparse
from pathlib import Path
import os
import sys
import time
from typing import Optional, Sequence

from .analysis.registry import REGISTRY, SCALES, run_experiment


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'On the Harmfulness of Redundant Batch "
            "Requests' (Casanova, HPDC 2006)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the reproducible tables and figures")

    run = sub.add_parser("run", help="regenerate one experiment (or 'all')")
    run.add_argument(
        "experiment",
        help=f"experiment id: one of {', '.join(sorted(REGISTRY))}, or 'all'",
    )
    run.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default=None,
        help="experiment scale (overrides REPRO_SCALE; default: 'default')",
    )
    run.add_argument(
        "--workers",
        type=int,
        default=None,
        help="processes for replication parallelism (overrides REPRO_WORKERS)",
    )
    run.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the report(s) as JSON (experiment id is appended "
        "when running 'all')",
    )
    run.add_argument(
        "--csv",
        metavar="DIR",
        default=None,
        help="also write each report table as CSV into this directory",
    )
    return parser


def cmd_list() -> int:
    width = max(len(k) for k in REGISTRY)
    for exp_id, (title, _) in REGISTRY.items():
        print(f"  {exp_id:<{width}}  {title}")
    return 0


def cmd_run(
    experiment: str,
    scale: Optional[str],
    workers: Optional[int],
    json_path: Optional[str] = None,
    csv_dir: Optional[str] = None,
) -> int:
    if scale is not None:
        os.environ["REPRO_SCALE"] = scale
    if workers is not None:
        os.environ["REPRO_WORKERS"] = str(workers)
    ids = sorted(REGISTRY) if experiment == "all" else [experiment]
    many = len(ids) > 1
    for exp_id in ids:
        if exp_id not in REGISTRY:
            print(
                f"unknown experiment {exp_id!r}; run 'repro list'",
                file=sys.stderr,
            )
            return 2
        t0 = time.perf_counter()
        report = run_experiment(exp_id)
        elapsed = time.perf_counter() - t0
        print(report.render())
        print(f"[{exp_id} took {elapsed:.1f}s]\n")
        if json_path is not None:
            from .analysis.export import report_to_json

            target = Path(json_path)
            if many:
                target = target.with_name(
                    f"{target.stem}_{exp_id}{target.suffix or '.json'}"
                )
            report_to_json(report, target)
            print(f"[wrote {target}]")
        if csv_dir is not None:
            from .analysis.export import table_to_csv

            directory = Path(csv_dir)
            directory.mkdir(parents=True, exist_ok=True)
            for i, table in enumerate(report.tables):
                path = directory / f"{exp_id}_table{i}.csv"
                table_to_csv(table, path)
                print(f"[wrote {path}]")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return cmd_list()
    if args.command == "run":
        return cmd_run(args.experiment, args.scale, args.workers,
                       args.json, args.csv)
    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
