"""Command-line interface: regenerate any table or figure of the paper.

Usage::

    repro list                      # what can be regenerated
    repro run fig1                  # regenerate Figure 1 (default scale)
    repro run tab4 --scale smoke    # quick noisy version
    repro run all --scale default   # everything, in order
    repro run fig1 --workers 8 --cache-dir ~/.cache/repro
    repro bench --json bench.json   # machine-readable sweep timings

Scales are defined in :mod:`repro.analysis.registry`; ``--workers``
parallelises replications across processes.  ``--cache-dir`` persists
simulation results on disk (content-addressed by config + replication),
so reruns and figures sharing the paired NONE baseline skip simulation;
``--no-cache`` disables caching entirely.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

from .analysis.registry import REGISTRY, SCALES, run_experiment
from .core.parallel import resolve_workers


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'On the Harmfulness of Redundant Batch "
            "Requests' (Casanova, HPDC 2006)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the reproducible tables and figures")

    run = sub.add_parser("run", help="regenerate one experiment (or 'all')")
    run.add_argument(
        "experiment",
        help=f"experiment id: one of {', '.join(sorted(REGISTRY))}, or 'all'",
    )
    run.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default=None,
        help="experiment scale (overrides REPRO_SCALE; default: 'default')",
    )
    run.add_argument(
        "--workers",
        type=int,
        default=None,
        help="processes for replication parallelism (overrides REPRO_WORKERS)",
    )
    run.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="persist simulation results in this directory "
        "(overrides REPRO_CACHE_DIR)",
    )
    run.add_argument(
        "--no-cache",
        action="store_true",
        help="disable result caching (in-memory and on-disk)",
    )
    run.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the report(s) as JSON (experiment id is appended "
        "when running 'all')",
    )
    run.add_argument(
        "--csv",
        metavar="DIR",
        default=None,
        help="also write each report table as CSV into this directory",
    )

    bench = sub.add_parser(
        "bench",
        help="time the sweep engine (serial vs parallel, cold vs warm cache)",
    )
    bench.add_argument(
        "--workers",
        type=int,
        default=4,
        help="worker processes for the parallel measurement (default 4)",
    )
    bench.add_argument(
        "--schemes",
        nargs="+",
        default=None,
        metavar="SCHEME",
        help="schemes to sweep (default: the paper's R2 R3 R4 HALF ALL)",
    )
    bench.add_argument(
        "--replications",
        type=int,
        default=16,
        help="replications per config (default 16)",
    )
    bench.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write machine-readable timings to PATH ('-' for stdout only)",
    )
    return parser


def cmd_list() -> int:
    width = max(len(k) for k in REGISTRY)
    for exp_id, (title, _) in REGISTRY.items():
        print(f"  {exp_id:<{width}}  {title}")
    return 0


def _apply_cache_flags(cache_dir: Optional[str], no_cache: bool) -> None:
    if no_cache:
        os.environ["REPRO_NO_CACHE"] = "1"
    elif cache_dir is not None:
        os.environ.pop("REPRO_NO_CACHE", None)
        os.environ["REPRO_CACHE_DIR"] = cache_dir


def cmd_run(
    experiment: str,
    scale: Optional[str],
    workers: Optional[int],
    json_path: Optional[str] = None,
    csv_dir: Optional[str] = None,
    cache_dir: Optional[str] = None,
    no_cache: bool = False,
) -> int:
    if scale is not None:
        os.environ["REPRO_SCALE"] = scale
    if workers is not None:
        try:
            os.environ["REPRO_WORKERS"] = str(
                resolve_workers(workers, source="--workers")
            )
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    _apply_cache_flags(cache_dir, no_cache)
    ids = sorted(REGISTRY) if experiment == "all" else [experiment]
    many = len(ids) > 1
    for exp_id in ids:
        if exp_id not in REGISTRY:
            print(
                f"unknown experiment {exp_id!r}; run 'repro list'",
                file=sys.stderr,
            )
            return 2
        t0 = time.perf_counter()
        report = run_experiment(exp_id)
        elapsed = time.perf_counter() - t0
        print(report.render())
        print(f"[{exp_id} took {elapsed:.1f}s]\n")
        if json_path is not None:
            from .analysis.export import report_to_json

            target = Path(json_path)
            if many:
                target = target.with_name(
                    f"{target.stem}_{exp_id}{target.suffix or '.json'}"
                )
            report_to_json(report, target)
            print(f"[wrote {target}]")
        if csv_dir is not None:
            from .analysis.export import table_to_csv

            directory = Path(csv_dir)
            directory.mkdir(parents=True, exist_ok=True)
            for i, table in enumerate(report.tables):
                path = directory / f"{exp_id}_table{i}.csv"
                table_to_csv(table, path)
                print(f"[wrote {path}]")
    return 0


def cmd_bench(
    workers: int,
    schemes: Optional[Sequence[str]],
    replications: int,
    json_path: Optional[str],
) -> int:
    """Benchmark the sweep engine and emit machine-readable timings.

    Three measurements over the same 5-scheme comparison grid:

    * ``serial``   — fresh run, one process, no cache (the seed path);
    * ``parallel`` — fresh run, ``--workers`` processes, no cache;
    * ``cold``/``warm`` — disk-cached runs into a temp directory; the
      warm rerun must hit the cache for every task.
    """
    import tempfile

    from .core.cache import ResultCache
    from .core.parallel import GridStats
    from .core.runner import compare_schemes
    from .core.schemes import PAPER_SCHEME_ORDER

    try:
        workers = resolve_workers(workers, source="--workers")
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    schemes = list(schemes) if schemes else list(PAPER_SCHEME_ORDER)
    from .core.config import ExperimentConfig

    cfg = ExperimentConfig(
        n_clusters=5, nodes_per_cluster=32, duration=900.0,
        offered_load=2.0, drain=True, seed=20060619,
    )
    n_tasks = (len(schemes) + 1) * replications
    print(
        f"[bench] {len(schemes)} schemes x {replications} replications "
        f"(+ baseline) = {n_tasks} simulations; workers={workers}"
    )

    stats = GridStats()
    t0 = time.perf_counter()
    serial = compare_schemes(cfg, schemes, replications, n_workers=1,
                             stats=stats)
    t_serial = time.perf_counter() - t0
    print(f"[bench] serial:   {t_serial:.2f}s")

    t0 = time.perf_counter()
    parallel = compare_schemes(cfg, schemes, replications, n_workers=workers,
                               stats=stats)
    t_parallel = time.perf_counter() - t0
    print(f"[bench] parallel: {t_parallel:.2f}s "
          f"(speedup {t_serial / t_parallel:.2f}x)")

    identical = all(
        serial.relative(s) == parallel.relative(s) for s in schemes
    )

    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        cache = ResultCache(tmp)
        t0 = time.perf_counter()
        compare_schemes(cfg, schemes, replications, n_workers=workers,
                        cache=cache, stats=stats)
        t_cold = time.perf_counter() - t0
        cache.clear_memory()  # force the warm run through the disk layer
        warm_start_hits = cache.stats.hits
        t0 = time.perf_counter()
        warm = compare_schemes(cfg, schemes, replications, n_workers=workers,
                               cache=cache, stats=stats)
        t_warm = time.perf_counter() - t0
        warm_hits = cache.stats.hits - warm_start_hits
    print(f"[bench] cold cache: {t_cold:.2f}s; warm cache: {t_warm:.2f}s "
          f"({warm_hits}/{n_tasks} tasks from cache)")
    identical = identical and all(
        serial.relative(s) == warm.relative(s) for s in schemes
    )

    payload = {
        "bench": "parallel_sweep",
        "cpu_count": os.cpu_count(),
        "config": {
            "schemes": schemes,
            "replications": replications,
            "workers": workers,
            "n_tasks": n_tasks,
        },
        "timings_s": {
            "serial": t_serial,
            "parallel": t_parallel,
            "cold_cache": t_cold,
            "warm_cache": t_warm,
        },
        "speedup_parallel": t_serial / t_parallel,
        "speedup_warm_cache": t_serial / t_warm,
        "warm_cache_hits": warm_hits,
        "warm_cache_complete": warm_hits == n_tasks,
        "results_identical": identical,
        **stats.as_dict(),
    }
    text = json.dumps(payload, indent=2, sort_keys=True)
    if json_path and json_path != "-":
        Path(json_path).write_text(text + "\n")
        print(f"[wrote {json_path}]")
    else:
        print(text)
    return 0 if identical else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return cmd_list()
    if args.command == "run":
        return cmd_run(args.experiment, args.scale, args.workers,
                       args.json, args.csv, args.cache_dir, args.no_cache)
    if args.command == "bench":
        return cmd_bench(args.workers, args.schemes, args.replications,
                         args.json)
    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
