"""Metascheduler baseline (Subramani et al., the paper's Section 2 contrast).

The related work the paper positions itself against: instead of users
blindly fanning out redundant requests, a *metascheduler* with global
knowledge places each job on a single well-chosen cluster ("redundant
requests that play nice").  This module implements the least-work
placement policy so the repository can quantify the paper's implicit
comparison: user-driven redundancy vs informed single placement.

The policy: at submission, send the job to the eligible cluster with
the least committed work (running remaining + queued requested
node·seconds), the natural "queue length" signal the paper mentions
metaschedulers use.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.platform import Platform
from ..core.config import ExperimentConfig
from ..core.coordinator import Coordinator
from ..core.experiment import (
    _job_outcome,
    _resolve_node_counts,
    _resolve_workload_params,
)
from ..core.results import ClusterOutcome, ExperimentResult
from ..sim.engine import Simulator
from ..sim.events import EventPriority
from ..sim.rng import RngFactory
from ..workload.estimates import make_estimate_model
from ..workload.stream import StreamJob, generate_platform_streams, merge_streams


def committed_work(scheduler) -> float:
    """Node·seconds of work a queue has promised: running remainder +
    pending requests' full requested areas."""
    now = scheduler.sim.now
    running = sum(
        r.nodes * max(r.expected_end - now, 0.0) for r in scheduler.running
    )
    queued = sum(
        r.nodes * r.requested_time for r in scheduler.queue if r.is_pending
    )
    return running + queued


class MetaScheduler:
    """Central single-placement dispatcher with global queue knowledge."""

    def __init__(self, sim: Simulator, platform: Platform,
                 coordinator: Coordinator) -> None:
        self.sim = sim
        self.platform = platform
        self.coordinator = coordinator

    def choose_cluster(self, job: StreamJob) -> int:
        """Eligible cluster with the least expected drain time.

        Committed work is normalised by cluster size (node·seconds per
        node): 5,000 node·seconds queued on 16 nodes is a far longer
        wait than on 256 nodes, so raw committed work would misroute
        jobs on heterogeneous platforms.  Ties break to the lowest
        index.
        """
        eligible = self.platform.eligible_clusters(job.nodes)
        if not eligible:
            raise ValueError(f"no cluster can run a {job.nodes}-node job")
        loads = [
            (
                committed_work(self.platform.scheduler_at(i))
                / self.platform.clusters[i].total_nodes,
                i,
            )
            for i in eligible
        ]
        return min(loads)[1]

    def schedule_job(self, job: StreamJob) -> None:
        """Defer the placement decision to the job's arrival instant."""
        def place() -> None:
            target = self.choose_cluster(job)
            if target == job.origin:
                targets = [target]
            else:
                # submit_job requires the origin first; a metascheduled
                # job has a single request wherever it lands, so rewrite
                # the origin to the chosen cluster.
                job_here = StreamJob(
                    origin=target,
                    arrival=job.arrival,
                    nodes=job.nodes,
                    runtime=job.runtime,
                    requested_time=job.requested_time,
                    uses_redundancy=job.uses_redundancy,
                )
                self.coordinator.submit_job(job_here, [target])
                return
            self.coordinator.submit_job(job, targets)

        self.sim.at(job.arrival, place, EventPriority.SUBMIT)


def run_metascheduler_experiment(
    config: ExperimentConfig, replication: int = 0
) -> ExperimentResult:
    """Mirror of :func:`repro.core.experiment.run_single` with central
    least-work placement instead of redundancy.

    The ``scheme`` field of ``config`` is ignored; every job gets
    exactly one request on the least-loaded eligible cluster.
    """
    factory = RngFactory(config.seed)
    sim = Simulator()
    node_counts = _resolve_node_counts(config, factory, replication)
    platform = Platform(sim, node_counts, config.algorithm,
                        config.scheduler_kwargs)
    params = _resolve_workload_params(config, factory, replication, node_counts)
    estimate_model = make_estimate_model(config.estimates)
    streams = generate_platform_streams(
        factory, replication, node_counts, config.duration,
        params_per_cluster=params, estimate_model=estimate_model,
        adoption_probability=config.adoption_probability,
    )
    coordinator = Coordinator(sim, platform)
    meta = MetaScheduler(sim, platform, coordinator)
    for spec in merge_streams(streams):
        meta.schedule_job(spec)
    if config.drain:
        sim.run()
    else:
        sim.run(until=config.duration)
    completed = [j for j in coordinator.jobs if j.completed]
    return ExperimentResult(
        scheme="METASCHED",
        algorithm=config.algorithm,
        n_clusters=config.n_clusters,
        replication=replication,
        jobs=[_job_outcome(j) for j in completed],
        n_submitted_jobs=len(coordinator.jobs),
        clusters=[
            ClusterOutcome(
                cluster=c.index,
                total_nodes=c.total_nodes,
                submitted=s.stats.submitted,
                cancelled=s.stats.cancelled,
                started=s.stats.started,
                completed=s.stats.completed,
                max_queue_length=s.stats.max_queue_length,
            )
            for c, s in zip(platform.clusters, platform.schedulers)
        ],
        total_requests=coordinator.total_requests,
        total_cancellations=coordinator.total_cancellations,
    )


@dataclass(frozen=True)
class MetaComparison:
    """Redundancy (ALL) vs informed single placement vs local-only."""

    none_stretch: float
    metasched_stretch: float
    redundant_stretch: float

    @property
    def metasched_relative(self) -> float:
        return self.metasched_stretch / self.none_stretch

    @property
    def redundant_relative(self) -> float:
        return self.redundant_stretch / self.none_stretch


def compare_with_metascheduler(
    config: ExperimentConfig,
    n_replications: int = 3,
    redundant_scheme: str = "ALL",
) -> MetaComparison:
    """Average stretch under NONE, metascheduling, and redundancy,
    on paired job streams."""
    from ..core.experiment import run_single

    none_vals, meta_vals, red_vals = [], [], []
    for rep in range(n_replications):
        none_vals.append(run_single(config.with_(scheme="NONE"), rep).avg_stretch)
        meta_vals.append(
            run_metascheduler_experiment(config, rep).avg_stretch
        )
        red_vals.append(
            run_single(config.with_(scheme=redundant_scheme), rep).avg_stretch
        )
    return MetaComparison(
        none_stretch=float(np.mean(none_vals)),
        metasched_stretch=float(np.mean(meta_vals)),
        redundant_stretch=float(np.mean(red_vals)),
    )
