"""Moldable redundant requests — the paper's option (iv), left as future work.

Section 2: for *moldable* jobs, one can submit redundant requests for
different node counts to the same queue — a large request starts late
but runs fast; a small one starts early but runs long.  First to start
wins, the others are cancelled.

Speedup model: a job with work ``W`` (node·seconds at its natural size)
run on ``n`` nodes takes ``runtime(n) = W / n**alpha`` scaled so the
natural size reproduces the natural runtime; ``alpha`` in (0, 1] is the
parallel efficiency exponent (1 = perfect scaling, the paper's
"difficult" selection problem is most interesting below 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..cluster.cluster import Cluster
from ..sched import make_scheduler
from ..sched.job import Request, RequestState
from ..sim.engine import Simulator
from ..sim.events import EventPriority
from ..workload.stream import StreamJob


def moldable_runtime(
    natural_nodes: int, natural_runtime: float, nodes: int, alpha: float = 0.9
) -> float:
    """Runtime of the job when run on ``nodes`` instead of its natural size.

    Power-law scaling: time ∝ n^(−alpha), anchored at the natural point.
    """
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    if nodes < 1 or natural_nodes < 1:
        raise ValueError("node counts must be >= 1")
    if natural_runtime <= 0:
        raise ValueError(f"runtime must be positive, got {natural_runtime}")
    return natural_runtime * (natural_nodes / nodes) ** alpha


def candidate_sizes(natural_nodes: int, max_nodes: int,
                    factors: Sequence[float] = (0.5, 1.0, 2.0)) -> list[int]:
    """Distinct candidate node counts around the natural size."""
    sizes = sorted(
        {
            max(1, min(max_nodes, int(round(natural_nodes * f))))
            for f in factors
        }
    )
    return sizes


@dataclass
class MoldableJob:
    """One moldable job with one request per candidate size."""

    spec: StreamJob
    requests: list[Request]
    winner: Request | None = None

    @property
    def completed(self) -> bool:
        return self.winner is not None and self.winner.state is RequestState.COMPLETED


class MoldableCoordinator:
    """First-start-wins over size variants in a single batch queue."""

    def __init__(self, sim: Simulator, scheduler) -> None:
        self.sim = sim
        self.scheduler = scheduler
        self.jobs: list[MoldableJob] = []
        scheduler.add_start_callback(self._on_start)

    def submit_moldable(
        self,
        spec: StreamJob,
        alpha: float = 0.9,
        factors: Sequence[float] = (0.5, 1.0, 2.0),
    ) -> MoldableJob:
        sizes = candidate_sizes(
            spec.nodes, self.scheduler.cluster.total_nodes, factors
        )
        if not spec.uses_redundancy:
            sizes = [min(spec.nodes, self.scheduler.cluster.total_nodes)]
        requests = []
        overestimate = spec.requested_time / spec.runtime
        job = MoldableJob(spec=spec, requests=requests)
        for n in sizes:
            rt = moldable_runtime(spec.nodes, spec.runtime, n, alpha)
            requests.append(
                Request(
                    nodes=n,
                    runtime=rt,
                    requested_time=rt * overestimate,
                    submit_time=spec.arrival,
                    group=job,
                )
            )
        self.jobs.append(job)

        def submit_all() -> None:
            for req in requests:
                self.scheduler.submit(req)

        self.sim.at(spec.arrival, submit_all, EventPriority.SUBMIT)
        return job

    def _on_start(self, request: Request, now: float) -> None:
        job = request.group
        if not isinstance(job, MoldableJob) or job.winner is not None:
            return
        job.winner = request
        for sibling in job.requests:
            if sibling is not request and sibling.state is RequestState.PENDING:
                self.scheduler.cancel(sibling)


@dataclass(frozen=True)
class MoldableStudyResult:
    """Fixed-size vs moldable-redundant submission on one cluster."""

    fixed_avg_stretch: float
    moldable_avg_stretch: float
    fixed_completed: int
    moldable_completed: int

    @property
    def relative_stretch(self) -> float:
        return self.moldable_avg_stretch / self.fixed_avg_stretch


def run_moldable_study(
    jobs: Sequence[StreamJob],
    nodes: int = 128,
    algorithm: str = "easy",
    alpha: float = 0.9,
    horizon: float | None = None,
) -> MoldableStudyResult:
    """Run the same stream with fixed sizes and with moldable redundancy."""
    def run(moldable: bool) -> tuple[float, int]:
        sim = Simulator()
        sched = make_scheduler(algorithm, sim, Cluster(0, nodes))
        coord = MoldableCoordinator(sim, sched)
        for spec in jobs:
            if moldable:
                coord.submit_moldable(spec, alpha=alpha)
            else:
                coord.submit_moldable(spec, alpha=alpha, factors=(1.0,))
        if horizon is None:
            sim.run()
        else:
            sim.run(until=horizon)
        done = [j for j in coord.jobs if j.completed]
        if not done:
            return float("nan"), 0
        stretches = [
            (j.winner.end_time - j.spec.arrival)
            / max(j.winner.runtime, 1e-12)
            for j in done
        ]
        return float(np.mean(stretches)), len(done)

    fixed_stretch, fixed_n = run(moldable=False)
    mold_stretch, mold_n = run(moldable=True)
    return MoldableStudyResult(
        fixed_avg_stretch=fixed_stretch,
        moldable_avg_stretch=mold_stretch,
        fixed_completed=fixed_n,
        moldable_completed=mold_n,
    )
