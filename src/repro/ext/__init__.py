"""Extensions the paper names but leaves to future work.

* :mod:`repro.ext.metascheduler` — informed single placement
  (Subramani-style), the Section 2 contrast to user-driven redundancy;
* :mod:`repro.ext.moldable` — option (iv): redundant requests with
  different node counts in a single queue.
"""

from .metascheduler import (
    MetaComparison,
    MetaScheduler,
    committed_work,
    compare_with_metascheduler,
    run_metascheduler_experiment,
)
from .multiqueue import (
    DEFAULT_QUEUES,
    BilledJob,
    MultiQueueCoordinator,
    MultiQueueScheduler,
    QueueSpec,
    QueueStrategyOutcome,
    run_option_iii_study,
)
from .moldable import (
    MoldableCoordinator,
    MoldableJob,
    MoldableStudyResult,
    candidate_sizes,
    moldable_runtime,
    run_moldable_study,
)

__all__ = [
    "MetaScheduler",
    "MetaComparison",
    "committed_work",
    "run_metascheduler_experiment",
    "compare_with_metascheduler",
    "MoldableCoordinator",
    "MoldableJob",
    "MoldableStudyResult",
    "moldable_runtime",
    "candidate_sizes",
    "run_moldable_study",
    "QueueSpec",
    "DEFAULT_QUEUES",
    "MultiQueueScheduler",
    "MultiQueueCoordinator",
    "BilledJob",
    "QueueStrategyOutcome",
    "run_option_iii_study",
]
