"""Redundant requests across multiple queues — options (ii)/(iii) of §2.

The paper's taxonomy: redundant requests can go to (iii) multiple batch
queues of a *single* resource, or (ii) multiple queues of *multiple*
resources, where "different queues typically correspond to higher
service unit costs.  The question is then whether one should wait
possibly a long time for a cheaper resource allocation."  Both options
are left to future work; this module implements them.

Model: one cluster exposes several queues sharing its nodes.  Queues
have a strict priority order (a premium queue's requests are considered
before standard ones at every scheduling decision) and a service-unit
cost factor (premium cycles cost more).  The scheduler is EASY over the
priority-then-submission order.  An option-(iii) user submits one copy
per queue; the first to start wins and is billed at that queue's rate —
trading money for waiting time exactly as the paper frames it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..cluster.cluster import Cluster
from ..sched.easy import EASYScheduler
from ..sched.job import Request, RequestState
from ..sim.engine import Simulator
from ..sim.events import EventPriority
from ..sim.rng import RngFactory
from ..workload.stream import StreamJob


@dataclass(frozen=True)
class QueueSpec:
    """One queue of a multi-queue resource."""

    name: str
    priority: int          # lower = served first
    cost_factor: float     # service-unit multiplier (premium > standard)

    def __post_init__(self) -> None:
        if self.cost_factor <= 0:
            raise ValueError(f"cost factor must be positive, got "
                             f"{self.cost_factor}")


#: a typical two-tier setup: premium jumps the line at 2.5x the price
DEFAULT_QUEUES = (
    QueueSpec("premium", priority=0, cost_factor=2.5),
    QueueSpec("standard", priority=1, cost_factor=1.0),
)


class MultiQueueScheduler(EASYScheduler):
    """EASY backfilling over several priority-ordered queues.

    All queues share the cluster's nodes; at every pass the pending list
    is considered in (priority, submission) order, so premium requests
    both start and backfill ahead of standard ones.
    """

    algorithm = "multiqueue-easy"

    def __init__(self, sim: Simulator, cluster: Cluster,
                 queues: Sequence[QueueSpec] = DEFAULT_QUEUES) -> None:
        super().__init__(sim, cluster)
        if not queues:
            raise ValueError("need at least one queue")
        names = [q.name for q in queues]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate queue names in {names}")
        self.queues = {q.name: q for q in queues}

    def submit_to(self, request: Request, queue_name: str) -> None:
        """Submit ``request`` into the named queue."""
        try:
            spec = self.queues[queue_name]
        except KeyError:
            raise ValueError(
                f"unknown queue {queue_name!r}; have {sorted(self.queues)}"
            ) from None
        request.priority = spec.priority
        request.name = request.name or queue_name
        self.submit(request)

    def _schedule_pass(self) -> None:
        # Re-establish priority-then-submission order before the EASY
        # pass; the sort is stable and submission order is already the
        # list order within each priority class.
        self.queue.sort(
            key=lambda r: (r.priority, r.submitted_at, r.request_id)
        )
        # The in-place sort invalidates every ``Request.slot``; rebuild
        # the struct-of-arrays mirror before the array-scanning pass.
        self._sync_queue_arrays()
        super()._schedule_pass()
        # Drop the EASY blocked-state memo: it assumes a new submission
        # can never become the head, which priority queues violate (a
        # premium arrival sorts ahead of the blocked standard head).
        self._block = None


@dataclass
class BilledJob:
    """A job with its queue copies and the bill for the winning one."""

    spec: StreamJob
    requests: dict[str, Request]
    winner_queue: Optional[str] = None

    @property
    def winner(self) -> Optional[Request]:
        if self.winner_queue is None:
            return None
        return self.requests[self.winner_queue]

    @property
    def completed(self) -> bool:
        w = self.winner
        return w is not None and w.state is RequestState.COMPLETED

    def cost(self, scheduler: MultiQueueScheduler) -> float:
        """Service units consumed: nodes x runtime x queue cost factor."""
        if self.winner_queue is None:
            raise ValueError("job has not started")
        factor = scheduler.queues[self.winner_queue].cost_factor
        return self.spec.nodes * self.spec.runtime * factor


class MultiQueueCoordinator:
    """Option (iii): first-start-wins across the queues of one resource."""

    def __init__(self, sim: Simulator, scheduler: MultiQueueScheduler) -> None:
        self.sim = sim
        self.scheduler = scheduler
        self.jobs: list[BilledJob] = []
        scheduler.add_start_callback(self._on_start)

    def submit(self, spec: StreamJob, queue_names: Sequence[str]) -> BilledJob:
        if not queue_names:
            raise ValueError("need at least one target queue")
        job = BilledJob(spec=spec, requests={})
        self.jobs.append(job)

        def fire() -> None:
            for qname in queue_names:
                req = Request(
                    nodes=spec.nodes,
                    runtime=spec.runtime,
                    requested_time=spec.requested_time,
                    submit_time=spec.arrival,
                    group=job,
                    name=qname,
                )
                job.requests[qname] = req
                self.scheduler.submit_to(req, qname)

        self.sim.at(spec.arrival, fire, EventPriority.SUBMIT)
        return job

    def _on_start(self, request: Request, now: float) -> None:
        job = request.group
        if not isinstance(job, BilledJob) or job.winner_queue is not None:
            return
        job.winner_queue = request.name
        for qname, sibling in job.requests.items():
            if sibling is not request and sibling.state is RequestState.PENDING:
                self.scheduler.cancel(sibling)


@dataclass(frozen=True)
class QueueStrategyOutcome:
    """Average turnaround and bill for one submission strategy."""

    strategy: str
    mean_turnaround: float
    mean_cost: float
    completed: int


def run_option_iii_study(
    jobs: Sequence[StreamJob],
    nodes: int = 64,
    queues: Sequence[QueueSpec] = DEFAULT_QUEUES,
    premium_fraction: float = 0.3,
    horizon: Optional[float] = None,
    seed: int = 0,
) -> list[QueueStrategyOutcome]:
    """Compare three strategies on the same stream.

    * ``standard``  — everyone queues in the cheap queue;
    * ``premium``   — everyone pays for the fast queue;
    * ``redundant`` — option (iii): a copy in each, first start wins.

    ``premium_fraction`` of unrelated background jobs always use the
    premium queue, so the fast lane has genuine competition.
    """
    if not 0.0 <= premium_fraction <= 1.0:
        raise ValueError(f"premium_fraction must be in [0,1], got "
                         f"{premium_fraction}")
    queue_names = [q.name for q in sorted(queues, key=lambda q: q.priority)]
    premium, standard = queue_names[0], queue_names[-1]
    outcomes = []
    for strategy in ("standard", "premium", "redundant"):
        sim = Simulator()
        sched = MultiQueueScheduler(sim, Cluster(0, nodes), queues)
        coord = MultiQueueCoordinator(sim, sched)
        # Re-derived per strategy from the same key: every strategy sees
        # identical background traffic (common random numbers).
        rng = RngFactory(seed).generator("multiqueue", "background")
        tracked: list[BilledJob] = []
        for spec in jobs:
            background = rng.random() < premium_fraction
            if background:
                coord.submit(spec, [premium])
                continue
            if strategy == "standard":
                tracked.append(coord.submit(spec, [standard]))
            elif strategy == "premium":
                tracked.append(coord.submit(spec, [premium]))
            else:
                tracked.append(coord.submit(spec, queue_names))
        if horizon is None:
            sim.run()
        else:
            sim.run(until=horizon)
        done = [j for j in tracked if j.completed]
        if done:
            mean_ta = float(np.mean(
                [j.winner.end_time - j.spec.arrival for j in done]
            ))
            mean_cost = float(np.mean([j.cost(sched) for j in done]))
        else:
            mean_ta = mean_cost = float("nan")
        outcomes.append(QueueStrategyOutcome(
            strategy=strategy,
            mean_turnaround=mean_ta,
            mean_cost=mean_cost,
            completed=len(done),
        ))
    return outcomes
