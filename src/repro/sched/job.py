"""Job and request state machines.

Terminology follows the paper: a *job* is the user's unit of work (it
needs ``nodes`` compute nodes for ``runtime`` seconds); a *request* is
one copy of that job submitted to one batch queue.  Without redundancy a
job has exactly one request; with redundancy it has several, and all but
the first to start are cancelled.

The scheduler layer deals exclusively with :class:`Request` objects; the
grouping of requests into jobs lives in :mod:`repro.core.coordinator`
(the ``group`` attribute is an opaque back-reference for that layer).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional


class RequestState(enum.Enum):
    """Lifecycle of a request inside one batch queue."""

    CREATED = "created"      # built, not yet submitted
    PENDING = "pending"      # waiting in a batch queue
    RUNNING = "running"      # holds compute nodes
    COMPLETED = "completed"  # ran to completion
    CANCELLED = "cancelled"  # removed from the queue before starting


_request_ids = itertools.count()


def reset_request_ids() -> None:
    """Reset the global request-id counter (test isolation helper)."""
    global _request_ids
    # repro-lint: disable=PAR001 -- deliberate per-process reset: the
    # trace layer calls this at the start of every task precisely so
    # request ids are identical no matter which worker runs the task
    _request_ids = itertools.count()


@dataclass(slots=True)
class Request:
    """One copy of a job in one batch queue.

    Hundreds of thousands of these flow through an overloaded sweep and
    the scheduler hot paths are attribute-bound, so the layout matters:
    ``slots=True`` removes the per-instance dict, shrinking requests and
    speeding up every attribute access in submit/cancel/pass loops.

    Parameters
    ----------
    nodes:
        Number of compute nodes requested (fixed; jobs are rigid).
    runtime:
        Actual execution time in seconds, unknown to the scheduler.
    requested_time:
        User-supplied estimate; the scheduler plans with this.  Must be
        >= ``runtime`` (jobs are killed at the estimate in real systems,
        and the workload generator never produces under-estimates).
    submit_time:
        Intended submission instant (set when the request is built;
        the scheduler stamps the actual submission in ``submitted_at``).
    group:
        Opaque back-reference to the owning redundant-job group.
    """

    nodes: int
    runtime: float
    requested_time: float
    submit_time: float = 0.0
    group: Any = None
    name: str = ""
    #: queue priority class; lower sorts first (0 = highest).  The paper's
    #: main experiments use a single priority-less queue; the multi-queue
    #: extension (repro.ext.multiqueue) uses this field.
    priority: int = 0
    request_id: int = field(default_factory=lambda: next(_request_ids))

    # Mutable scheduling state -------------------------------------------------
    state: RequestState = RequestState.CREATED
    cluster: Any = None                    # Scheduler that owns the request
    #: index of this request in its scheduler's queue-state arrays (see
    #: the struct-of-arrays bookkeeping in :mod:`repro.sched.base`);
    #: maintained by the owning scheduler, -1 while unqueued
    slot: int = -1
    submitted_at: Optional[float] = None
    start_time: Optional[float] = None
    end_time: Optional[float] = None
    cancelled_at: Optional[float] = None
    #: earliest start promised by CBF at submission (None for EASY/FCFS)
    predicted_start_at_submit: Optional[float] = None
    #: most recent CBF reservation (moves earlier as the queue compresses)
    reserved_start: Optional[float] = None

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError(f"request needs >=1 node, got {self.nodes}")
        if self.runtime <= 0:
            raise ValueError(f"runtime must be positive, got {self.runtime}")
        if self.requested_time < self.runtime:
            raise ValueError(
                f"requested_time {self.requested_time} < runtime {self.runtime}"
            )

    # -- derived quantities ----------------------------------------------------

    @property
    def wait_time(self) -> float:
        """Queue waiting time; only valid once the request has started."""
        if self.start_time is None or self.submitted_at is None:
            raise ValueError(f"request {self.request_id} has not started")
        return self.start_time - self.submitted_at

    @property
    def turnaround(self) -> float:
        """Submission-to-completion time; valid once completed."""
        if self.end_time is None or self.submitted_at is None:
            raise ValueError(f"request {self.request_id} has not completed")
        return self.end_time - self.submitted_at

    @property
    def stretch(self) -> float:
        """Turnaround divided by execution time (the paper's slowdown)."""
        return self.turnaround / self.runtime

    @property
    def expected_end(self) -> float:
        """Scheduler's view of the completion time of a running request."""
        if self.start_time is None:
            raise ValueError(f"request {self.request_id} is not running")
        return self.start_time + self.requested_time

    @property
    def is_pending(self) -> bool:
        return self.state is RequestState.PENDING

    @property
    def is_active(self) -> bool:
        """Pending or running — i.e. still occupying scheduler state."""
        return self.state in (RequestState.PENDING, RequestState.RUNNING)

    def copy_spec(self, **overrides: Any) -> "Request":
        """Build a fresh request with the same workload characteristics.

        Used by the coordinator to fan one job out into several
        requests; each copy gets its own identity and scheduling state.
        """
        spec = dict(
            nodes=self.nodes,
            runtime=self.runtime,
            requested_time=self.requested_time,
            submit_time=self.submit_time,
            group=self.group,
            name=self.name,
        )
        spec.update(overrides)
        return Request(**spec)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Request(id={self.request_id}, n={self.nodes}, rt={self.runtime:.1f}, "
            f"req={self.requested_time:.1f}, state={self.state.value})"
        )
