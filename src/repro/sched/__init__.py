"""Batch schedulers: FCFS, EASY backfilling, Conservative Backfilling.

Each scheduler manages a single queue with no priorities, exactly the
configuration the paper simulates (Section 3.1.1).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from .base import Scheduler, SchedulerError, QueueStats, expected_releases
from .cbf import CBFScheduler
from .easy import EASYScheduler
from .fcfs import FCFSScheduler
from .job import Request, RequestState, reset_request_ids
from .profile import Profile, ProfileError

if TYPE_CHECKING:  # typing-only: avoids importing cluster/sim here
    from ..cluster.cluster import Cluster
    from ..sim.engine import Simulator

ALGORITHMS = {
    "fcfs": FCFSScheduler,
    "easy": EASYScheduler,
    "cbf": CBFScheduler,
}


def make_scheduler(
    algorithm: str, sim: Simulator, cluster: Cluster, **kwargs: Any
) -> Scheduler:
    """Instantiate a scheduler by its short name (``fcfs``/``easy``/``cbf``)."""
    try:
        cls = ALGORITHMS[algorithm.lower()]
    except KeyError:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; choose from {sorted(ALGORITHMS)}"
        ) from None
    return cls(sim, cluster, **kwargs)


__all__ = [
    "Scheduler",
    "SchedulerError",
    "QueueStats",
    "FCFSScheduler",
    "EASYScheduler",
    "CBFScheduler",
    "Request",
    "RequestState",
    "Profile",
    "ProfileError",
    "ALGORITHMS",
    "make_scheduler",
    "reset_request_ids",
    "expected_releases",
]
