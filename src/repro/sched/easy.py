"""EASY aggressive backfilling (Lifka, ANL/IBM SP).

The algorithm the paper treats as "representative of algorithms running
in deployed systems today":

1. start queued requests in order while they fit;
2. give the (non-fitting) head request a *reservation*: the shadow time
   at which enough nodes will be free assuming running requests hold
   their nodes for their full requested times;
3. backfill any later request that either (a) will finish (per its
   requested time) before the shadow time, or (b) uses only nodes that
   are spare even after the head starts (the "extra" nodes).

Backfilling is re-attempted after every submission, cancellation and
completion — cancellations and early completions are exactly the churn
the paper studies.
"""

from __future__ import annotations

import math

from .base import Scheduler, expected_releases
from .job import RequestState


class EASYScheduler(Scheduler):
    """Aggressive backfilling with a single head reservation."""

    algorithm = "easy"

    def _head_reservation(self, head_nodes: int) -> tuple[float, int]:
        """Shadow time and extra nodes for a head needing ``head_nodes``.

        Returns ``(shadow, extra)`` where ``shadow`` is the earliest time
        the head is guaranteed to start and ``extra`` is the number of
        nodes free at ``shadow`` beyond what the head consumes.  Requests
        backfilled against this bound can never delay the head.
        """
        free = self.cluster.free_nodes
        if free >= head_nodes:
            return self.sim.now, free - head_nodes
        releases = sorted(expected_releases(self.running))
        avail = free
        shadow = math.inf
        for end, nodes in releases:
            avail += nodes
            if avail >= head_nodes:
                shadow = end
                # Nodes freed *after* the shadow time do not matter for
                # the extra-node bound; stop accumulating here.
                break
        else:  # pragma: no cover - head always fits eventually
            raise AssertionError("head request can never start")
        extra = avail - head_nodes
        return shadow, extra

    def _schedule_pass(self) -> None:
        self._compact_queue()
        # Fixpoint loop: every successful start changes free nodes (and,
        # via sibling cancellation, possibly the queue itself), so the
        # head reservation is recomputed until no request can start.
        # Started/cancelled entries are left in place and skipped via
        # state checks; they are reclaimed by the next pass's compaction.
        # The scans check ``state`` directly instead of the
        # ``is_pending`` property: these loops run over thousands of
        # queue entries per pass under overload and the descriptor call
        # is measurable.
        pending = RequestState.PENDING
        queue = self.queue
        while True:
            head = None
            for r in queue:
                if r.state is pending:
                    head = r
                    break
            if head is None:
                return
            if self.cluster.can_fit(head.nodes):
                self._start(head)
                continue
            shadow, extra = self._head_reservation(head.nodes)
            started = False
            seen_head = False
            now = self.sim.now
            for req in queue:
                if req is head:
                    seen_head = True
                    continue
                if not seen_head or req.state is not pending:
                    continue
                if not self.cluster.can_fit(req.nodes):
                    continue
                finishes_in_time = now + req.requested_time <= shadow
                within_extra = req.nodes <= extra
                if finishes_in_time or within_extra:
                    self._start(req)
                    self.stats.backfilled += 1
                    if self.auditor is not None:
                        # Legality: recomputed from the post-start state,
                        # the head's shadow time must not have moved later.
                        self.auditor.check_easy_backfill(
                            self, head, req, shadow
                        )
                    started = True
                    break
            if not started:
                return
