"""EASY aggressive backfilling (Lifka, ANL/IBM SP).

The algorithm the paper treats as "representative of algorithms running
in deployed systems today":

1. start queued requests in order while they fit;
2. give the (non-fitting) head request a *reservation*: the shadow time
   at which enough nodes will be free assuming running requests hold
   their nodes for their full requested times;
3. backfill any later request that either (a) will finish (per its
   requested time) before the shadow time, or (b) uses only nodes that
   are spare even after the head starts (the "extra" nodes).

Backfilling is re-attempted after every submission, cancellation and
completion — cancellations and early completions are exactly the churn
the paper studies.
"""

from __future__ import annotations

import math

import numpy as np

from .base import Scheduler, expected_releases


class EASYScheduler(Scheduler):
    """Aggressive backfilling with a single head reservation."""

    algorithm = "easy"

    def _head_reservation(self, head_nodes: int) -> tuple[float, int]:
        """Shadow time and extra nodes for a head needing ``head_nodes``.

        Returns ``(shadow, extra)`` where ``shadow`` is the earliest time
        the head is guaranteed to start and ``extra`` is the number of
        nodes free at ``shadow`` beyond what the head consumes.  Requests
        backfilled against this bound can never delay the head.
        """
        free = self.cluster.free_nodes
        if free >= head_nodes:
            return self.sim.now, free - head_nodes
        releases = self._releases_sorted
        if releases is None:
            releases = self._releases_sorted = sorted(
                expected_releases(self.running)
            )
        avail = free
        shadow = math.inf
        for end, nodes in releases:
            avail += nodes
            if avail >= head_nodes:
                shadow = end
                # Nodes freed *after* the shadow time do not matter for
                # the extra-node bound; stop accumulating here.
                break
        else:  # pragma: no cover - head always fits eventually
            raise AssertionError("head request can never start")
        extra = avail - head_nodes
        return shadow, extra

    def _schedule_pass(self) -> None:
        # Fixpoint loop: every successful start changes free nodes (and,
        # via sibling cancellation, possibly the live mask), so the head
        # reservation is recomputed until no request can start.  The
        # queue is scanned through the struct-of-arrays mirror: the head
        # is one ``argmax`` over the live mask and the backfill filter
        # is a single vectorised boolean expression over the whole
        # queue — thousands of entries per pass under overload make
        # these array operations the whole cost of the pass.  A start flips
        # pending bits in place (its own slot, plus any siblings the
        # coordinator cancels reentrantly), so the mask is re-read each
        # iteration; the queue list itself never grows mid-pass.
        queue = self.queue
        cluster = self.cluster
        n = len(queue)
        mask = self._q_pending[:n]
        nd = self._q_nodes[:n]
        rt = self._q_reqtime[:n]
        now = self.sim.now
        while True:
            head_i = mask.argmax()
            if not mask[head_i]:
                # Empty queue: only a new submission that fits outright
                # can start (it becomes the head), which the memo's
                # ``extra = free`` bound expresses exactly.
                free = cluster.free_nodes
                self._block = (free, -math.inf, free, None)
                return
            free = cluster.free_nodes
            if nd[head_i] <= free:
                self._start(queue[head_i])
                continue
            shadow, extra = self._head_reservation(int(nd[head_i]))
            ok = mask & (nd <= free) & ((now + rt <= shadow) | (nd <= extra))
            ok[head_i] = False
            cand_i = ok.argmax()
            if not ok[cand_i]:
                self._block = (free, shadow, extra, queue[head_i])
                return
            req = queue[cand_i]
            self._start(req)
            self.stats.backfilled += 1
            if self.auditor is not None:
                # Legality: recomputed from the post-start state, the
                # head's shadow time must not have moved later.
                self.auditor.check_easy_backfill(
                    self, queue[head_i], req, shadow
                )
