"""First-Come First-Serve scheduler (no backfilling).

The paper's baseline comparator: requests start strictly in submission
order; if the head of the queue does not fit, nothing behind it may
start, so large head requests blockade the queue.
"""

from __future__ import annotations

import math

from .base import Scheduler


class FCFSScheduler(Scheduler):
    """Start the head of the queue whenever it fits; never skip it."""

    algorithm = "fcfs"

    def _schedule_pass(self) -> None:
        # Head = first set bit in the live mask; started/cancelled
        # entries stay in place (their bit is clear) and are reclaimed
        # by lazy compaction, keeping ``Request.slot`` indices stable.
        queue = self.queue
        nodes = self._q_nodes
        pending = self._q_pending
        n = len(queue)
        while True:
            mask = pending[:n]
            head_i = int(mask.argmax())
            free = self.cluster.free_nodes
            if not mask[head_i]:
                # Empty queue: a new submission starts iff it fits, the
                # ``extra = free`` memo bound (see the base class).
                self._block = (free, -math.inf, free, None)
                return
            if nodes[head_i] > free:
                # Blockaded: with no backfilling, *no* submission can
                # start behind the stuck head (extra = -1 rejects all).
                self._block = (free, -math.inf, -1, queue[head_i])
                return
            self._start(queue[head_i])

    def check_invariants(self) -> None:
        super().check_invariants()
        # FCFS never reorders: the pending queue must remain sorted by
        # (submission time, request id).
        keys = [
            (r.submitted_at, r.request_id) for r in self.queue if r.is_pending
        ]
        assert keys == sorted(keys), f"{self.name}: queue out of FCFS order"
