"""First-Come First-Serve scheduler (no backfilling).

The paper's baseline comparator: requests start strictly in submission
order; if the head of the queue does not fit, nothing behind it may
start, so large head requests blockade the queue.
"""

from __future__ import annotations

from .base import Scheduler


class FCFSScheduler(Scheduler):
    """Start the head of the queue whenever it fits; never skip it."""

    algorithm = "fcfs"

    def _schedule_pass(self) -> None:
        while self.queue:
            head = self.queue[0]
            if not head.is_pending:
                # Started earlier, or cancelled reentrantly (a sibling
                # started elsewhere at this same instant); drop it.
                self.queue.pop(0)
                continue
            if not self.cluster.can_fit(head.nodes):
                break
            self.queue.pop(0)
            self._start(head)

    def check_invariants(self) -> None:
        super().check_invariants()
        # FCFS never reorders: the pending queue must remain sorted by
        # (submission time, request id).
        keys = [
            (r.submitted_at, r.request_id) for r in self.queue if r.is_pending
        ]
        assert keys == sorted(keys), f"{self.name}: queue out of FCFS order"
