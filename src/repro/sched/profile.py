"""Node-availability profile: free nodes as a step function of time.

Backfilling schedulers plan against the *future* availability implied by
the requested (not actual) runtimes of running and reserved requests.
This module provides that plan as an explicit step function supporting
the operations conservative backfilling needs:

* :meth:`Profile.reserve` / :meth:`Profile.adjust` — commit or undo a
  reservation or a running hold over a finite window;
* :meth:`Profile.find_start` — earliest instant at which ``nodes`` nodes
  are continuously free for ``duration`` seconds;
* :meth:`Profile.can_place` — feasibility check for a specific start,
  optionally ignoring the request's own stale reservation;
* :meth:`Profile.trim` — garbage-collect segments that fell into the
  past (the profile is long-lived in the incremental CBF).

The representation is two parallel arrays ``times``/``free`` where
``free[i]`` holds over ``[times[i], times[i+1])`` and the last value
extends to infinity.
"""

from __future__ import annotations

import bisect
import math
from typing import Iterable, Optional, Tuple


class ProfileError(RuntimeError):
    """Raised when an adjustment would violate 0 <= free <= capacity."""


class Profile:
    """Step function of free nodes over ``[origin, inf)``.

    Parameters
    ----------
    origin:
        Left edge of the horizon (usually the current simulated time).
    free_now:
        Free nodes at the origin.
    total_nodes:
        Capacity bound; availability must stay within ``[0, total]``.
    """

    __slots__ = ("times", "free", "total_nodes")

    def __init__(self, origin: float, free_now: int, total_nodes: int) -> None:
        if not 0 <= free_now <= total_nodes:
            raise ValueError(f"free_now={free_now} outside [0, {total_nodes}]")
        self.times: list[float] = [float(origin)]
        self.free: list[int] = [int(free_now)]
        self.total_nodes = int(total_nodes)

    # -- construction ----------------------------------------------------

    @classmethod
    def from_running(
        cls,
        now: float,
        total_nodes: int,
        running: Iterable[Tuple[float, int]],
    ) -> "Profile":
        """Build the profile implied by running requests.

        ``running`` yields ``(expected_end, nodes)`` pairs; each pair
        returns ``nodes`` nodes to the pool at ``expected_end``.
        """
        busy = 0
        releases = []
        for end, nodes in running:
            busy += nodes
            releases.append((end, nodes))
        if busy > total_nodes:
            raise ProfileError(f"running jobs hold {busy} > {total_nodes} nodes")
        prof = cls(now, total_nodes - busy, total_nodes)
        for end, nodes in releases:
            prof.adjust(max(end, now), math.inf, nodes)
        return prof

    # -- mutation --------------------------------------------------------

    def _split_at(self, t: float) -> int:
        """Ensure a breakpoint exists at ``t``; return its index."""
        i = bisect.bisect_right(self.times, t) - 1
        if i < 0:
            raise ProfileError(f"time {t} precedes profile origin {self.times[0]}")
        if self.times[i] != t:
            self.times.insert(i + 1, t)
            self.free.insert(i + 1, self.free[i])
            return i + 1
        return i

    def adjust(self, start: float, end: float, delta: int) -> None:
        """Add ``delta`` free nodes over ``[start, end)`` (``end`` may be inf).

        Raises :exc:`ProfileError` (leaving the profile unchanged) if the
        result would leave ``[0, total_nodes]`` anywhere in the window.
        """
        if end <= start:
            raise ValueError(f"empty window [{start}, {end})")
        if delta == 0:
            return
        i = self._split_at(start)
        j = self._split_at(end) if math.isfinite(end) else len(self.times)
        for k in range(i, j):
            nf = self.free[k] + delta
            if not 0 <= nf <= self.total_nodes:
                # Roll back the prefix already adjusted.
                for kk in range(i, k):
                    self.free[kk] -= delta
                raise ProfileError(
                    f"adjust({start}, {end}, {delta:+d}) drives availability "
                    f"to {nf} at t={self.times[k]} (capacity {self.total_nodes})"
                )
            self.free[k] = nf

    def reserve(self, start: float, duration: float, nodes: int) -> None:
        """Subtract ``nodes`` over ``[start, start + duration)``."""
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        if nodes <= 0:
            raise ValueError(f"nodes must be positive, got {nodes}")
        self.adjust(start, start + duration, -nodes)

    def release_window(self, start: float, end: float, nodes: int) -> None:
        """Give back ``nodes`` over ``[start, end)`` (undo part of a hold)."""
        if nodes <= 0:
            raise ValueError(f"nodes must be positive, got {nodes}")
        self.adjust(start, end, nodes)

    def trim(self, t: float) -> None:
        """Drop breakpoints strictly before ``t``; new origin becomes ``t``.

        Availability in the discarded past is forgotten — only call with
        ``t <= now`` once no queries before ``t`` will ever be issued.
        """
        i = bisect.bisect_right(self.times, t) - 1
        if i <= 0:
            return
        self.times = [t] + self.times[i + 1:]
        self.free = self.free[i:]

    # -- queries ---------------------------------------------------------

    def free_at(self, t: float) -> int:
        """Free nodes at time ``t`` (t >= origin)."""
        i = bisect.bisect_right(self.times, t) - 1
        if i < 0:
            raise ProfileError(f"time {t} precedes profile origin {self.times[0]}")
        return self.free[i]

    def can_place(
        self,
        start: float,
        duration: float,
        nodes: int,
        bonus: Optional[Tuple[float, float, int]] = None,
    ) -> bool:
        """Whether ``nodes`` nodes are free throughout ``[start, start+duration)``.

        ``bonus`` is an optional ``(b_start, b_end, b_nodes)`` window of
        *extra* availability, used to ignore the candidate's own stale
        reservation without mutating the profile.
        """
        end = start + duration
        i = bisect.bisect_right(self.times, start) - 1
        if i < 0:
            raise ProfileError(f"time {start} precedes profile origin")
        n = len(self.times)
        j = i
        while j < n and (j == i or self.times[j] < end):
            seg_start = start if j == i else self.times[j]
            avail = self.free[j]
            if bonus is not None:
                b_start, b_end, b_nodes = bonus
                seg_end = self.times[j + 1] if j + 1 < n else math.inf
                # The bonus applies where the segment overlaps the window.
                if b_start < min(seg_end, end) and b_end > seg_start:
                    if b_start <= seg_start and b_end >= min(seg_end, end):
                        avail += b_nodes
                    else:
                        # Partial overlap: be conservative, no bonus.
                        pass
            if avail < nodes:
                return False
            j += 1
        return True

    def find_start(self, nodes: int, duration: float, earliest: float) -> float:
        """Earliest ``t >= earliest`` with ``nodes`` free throughout
        ``[t, t + duration)``.

        Always succeeds for ``nodes <= total_nodes`` because reservations
        and holds are finite, so the final step has full availability.
        """
        if nodes > self.total_nodes:
            raise ProfileError(
                f"request for {nodes} nodes can never fit in {self.total_nodes}"
            )
        if nodes <= 0:
            raise ValueError(f"nodes must be positive, got {nodes}")
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        earliest = max(earliest, self.times[0])
        n = len(self.times)
        start_idx = bisect.bisect_right(self.times, earliest) - 1
        i = start_idx
        while i < n:
            t = earliest if i == start_idx else self.times[i]
            if self.free[i] >= nodes:
                end = t + duration
                ok = True
                j = i + 1
                while j < n and self.times[j] < end:
                    if self.free[j] < nodes:
                        ok = False
                        break
                    j += 1
                if ok:
                    return t
                # Restart the search after the blocking segment.
                i = j
            else:
                i += 1
        raise ProfileError(
            f"no feasible start for {nodes} nodes x {duration}s; the profile "
            "tail should always be feasible (capacity leak?)"
        )

    def segments(self) -> list[Tuple[float, int]]:
        """Return ``(time, free)`` breakpoints (copy, for inspection)."""
        return list(zip(self.times, self.free))

    def check_invariants(self) -> None:
        """Assert representation invariants (used by tests)."""
        assert len(self.times) == len(self.free)
        assert all(a < b for a, b in zip(self.times, self.times[1:])), "times sorted"
        assert all(0 <= f <= self.total_nodes for f in self.free), "bounds"

    def __len__(self) -> int:
        return len(self.times)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        segs = ", ".join(f"{t:.1f}:{f}" for t, f in self.segments()[:8])
        return f"Profile[{segs}{'...' if len(self.times) > 8 else ''}]"
