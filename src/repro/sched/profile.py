"""Node-availability profile: free nodes as a step function of time.

Backfilling schedulers plan against the *future* availability implied by
the requested (not actual) runtimes of running and reserved requests.
This module provides that plan as an explicit step function supporting
the operations conservative backfilling needs:

* :meth:`Profile.reserve` / :meth:`Profile.adjust` — commit or undo a
  reservation or a running hold over a finite window;
* :meth:`Profile.find_start` — earliest instant at which ``nodes`` nodes
  are continuously free for ``duration`` seconds;
* :meth:`Profile.can_place` — feasibility check for a specific start,
  optionally ignoring the request's own stale reservation;
* :meth:`Profile.trim` — garbage-collect segments that fell into the
  past (the profile is long-lived in the incremental CBF).

The representation is two parallel **numpy arrays** ``times``/``free``
where ``free[i]`` holds over ``[times[i], times[i+1])`` and the last
value extends to infinity.  All operations are vectorised: breakpoint
lookup is ``searchsorted``, window validation and the in-place
adjustment fast path are single array expressions, and ``find_start``
evaluates every candidate segment in one shot instead of walking the
step function — under the paper's overload the profile grows to
hundreds of segments and the former per-segment Python loops were the
CBF hot spot.  The original list-backed implementation survives as
:class:`repro.sched.profile_ref.ReferenceProfile`, and the property
suite drives both through identical interleavings to prove exact
agreement.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Tuple

import numpy as np

__all__ = ["Profile", "ProfileError"]


class ProfileError(RuntimeError):
    """Raised when an adjustment would violate 0 <= free <= capacity."""


class Profile:
    """Step function of free nodes over ``[origin, inf)``.

    Parameters
    ----------
    origin:
        Left edge of the horizon (usually the current simulated time).
    free_now:
        Free nodes at the origin.
    total_nodes:
        Capacity bound; availability must stay within ``[0, total]``.
    """

    __slots__ = ("times", "free", "total_nodes")

    def __init__(self, origin: float, free_now: int, total_nodes: int) -> None:
        if not 0 <= free_now <= total_nodes:
            raise ValueError(f"free_now={free_now} outside [0, {total_nodes}]")
        #: breakpoint times (float64, strictly increasing)
        self.times: np.ndarray = np.array([float(origin)], dtype=np.float64)
        #: free nodes per segment (int64, aligned with ``times``)
        self.free: np.ndarray = np.array([int(free_now)], dtype=np.int64)
        self.total_nodes = int(total_nodes)

    # -- construction ----------------------------------------------------

    @classmethod
    def from_running(
        cls,
        now: float,
        total_nodes: int,
        running: Iterable[Tuple[float, int]],
    ) -> "Profile":
        """Build the profile implied by running requests.

        ``running`` yields ``(expected_end, nodes)`` pairs; each pair
        returns ``nodes`` nodes to the pool at ``expected_end``.
        """
        busy = 0
        releases = []
        for end, nodes in running:
            busy += nodes
            releases.append((end, nodes))
        if busy > total_nodes:
            raise ProfileError(f"running jobs hold {busy} > {total_nodes} nodes")
        prof = cls(now, total_nodes - busy, total_nodes)
        for end, nodes in releases:
            prof.adjust(max(end, now), math.inf, nodes)
        return prof

    def copy(self) -> "Profile":
        """Independent deep copy (used by tests and what-if probing)."""
        dup = Profile.__new__(Profile)
        dup.times = self.times.copy()
        dup.free = self.free.copy()
        dup.total_nodes = self.total_nodes
        return dup

    # -- mutation --------------------------------------------------------

    def adjust(self, start: float, end: float, delta: int) -> None:
        """Add ``delta`` free nodes over ``[start, end)`` (``end`` may be inf).

        Raises :exc:`ProfileError` (leaving the profile unchanged) if the
        result would leave ``[0, total_nodes]`` anywhere in the window.

        The window is validated *before* any mutation — one vectorised
        bounds check over the covered segments — then applied in a
        single batched update: when both window edges already coincide
        with breakpoints (the dominant case under backfill churn, where
        reservations are released over the exact windows that created
        them) the update is one in-place slice assignment with **zero**
        reallocation; otherwise the arrays are rebuilt with a single
        concatenation inserting the (at most two) new breakpoints.
        """
        if end <= start:
            raise ValueError(f"empty window [{start}, {end})")
        if delta == 0:
            return
        times, free = self.times, self.free
        n = len(times)
        i = int(np.searchsorted(times, start, side="right")) - 1
        if i < 0:
            raise ProfileError(
                f"time {start} precedes profile origin {float(times[0])}"
            )
        if math.isfinite(end):
            # Segment containing ``end``; j >= i because end > start.
            j = int(np.searchsorted(times, end, side="right")) - 1
            split_end = bool(times[j] != end)
            hi = j if split_end else j - 1
        else:
            j = n - 1
            split_end = False
            hi = n - 1
        split_start = bool(times[i] != start)

        # Validate the whole window first — failure leaves no trace.
        total = self.total_nodes
        window = free[i:hi + 1] + delta
        bad = (window < 0) | (window > total)
        if bad.any():
            k = i + int(np.argmax(bad))
            nf = int(free[k]) + delta
            raise ProfileError(
                f"adjust({start}, {end}, {delta:+d}) drives availability "
                f"to {nf} at t={max(float(times[k]), start)} (capacity {total})"
            )

        if not split_start and not split_end:
            # Fast path: boundaries already exist, adjust in place.
            free[i:hi + 1] = window
            return

        # One concatenation covering segments i..hi, inserting the new
        # breakpoints along the way (dtypes pinned so empty pieces never
        # upcast the result).
        if split_start:
            ins_t = np.array([times[i], start], dtype=np.float64)
            ins_f = np.array([free[i], free[i] + delta], dtype=np.int64)
        else:
            ins_t = np.array([times[i]], dtype=np.float64)
            ins_f = np.array([free[i] + delta], dtype=np.int64)
        if split_end:
            end_t = np.array([end], dtype=np.float64)
            end_f = np.array([free[j]], dtype=np.int64)
        else:
            end_t = np.empty(0, dtype=np.float64)
            end_f = np.empty(0, dtype=np.int64)
        self.times = np.concatenate(
            (times[:i], ins_t, times[i + 1:hi + 1], end_t, times[hi + 1:])
        )
        self.free = np.concatenate(
            (free[:i], ins_f, window[1:], end_f, free[hi + 1:])
        )

    def reserve(self, start: float, duration: float, nodes: int) -> None:
        """Subtract ``nodes`` over ``[start, start + duration)``."""
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        if nodes <= 0:
            raise ValueError(f"nodes must be positive, got {nodes}")
        self.adjust(start, start + duration, -nodes)

    def release_window(self, start: float, end: float, nodes: int) -> None:
        """Give back ``nodes`` over ``[start, end)`` (undo part of a hold)."""
        if nodes <= 0:
            raise ValueError(f"nodes must be positive, got {nodes}")
        self.adjust(start, end, nodes)

    def trim(self, t: float) -> None:
        """Drop breakpoints strictly before ``t``; new origin becomes ``t``.

        Availability in the discarded past is forgotten — only call with
        ``t <= now`` once no queries before ``t`` will ever be issued.
        """
        i = int(np.searchsorted(self.times, t, side="right")) - 1
        if i <= 0:
            return
        self.times = np.concatenate(
            (np.array([t], dtype=np.float64), self.times[i + 1:])
        )
        self.free = self.free[i:].copy()

    # -- queries ---------------------------------------------------------

    def free_at(self, t: float) -> int:
        """Free nodes at time ``t`` (t >= origin)."""
        i = int(np.searchsorted(self.times, t, side="right")) - 1
        if i < 0:
            raise ProfileError(
                f"time {t} precedes profile origin {float(self.times[0])}"
            )
        return int(self.free[i])

    def can_place(
        self,
        start: float,
        duration: float,
        nodes: int,
        bonus: Optional[Tuple[float, float, int]] = None,
    ) -> bool:
        """Whether ``nodes`` nodes are free throughout ``[start, start+duration)``.

        ``bonus`` is an optional ``(b_start, b_end, b_nodes)`` window of
        *extra* availability, used to ignore the candidate's own stale
        reservation without mutating the profile.
        """
        end = start + duration
        times, free = self.times, self.free
        i = int(np.searchsorted(times, start, side="right")) - 1
        if i < 0:
            raise ProfileError(f"time {start} precedes profile origin")
        # Segments i..k-1 overlap [start, end): k is the first
        # breakpoint at or past the window end (k >= i+1 since end > start).
        k = int(np.searchsorted(times, end, side="left"))
        seg_free = free[i:k]
        short = seg_free < nodes
        if not short.any():
            return True
        if bonus is None:
            return False
        # Every short sub-window must be wholly inside the bonus window
        # and bridged by its extra nodes; a partially covered sub-window
        # keeps the base availability on the uncovered piece.
        b_start, b_end, b_nodes = bonus
        idx = np.flatnonzero(short) + i
        seg_starts = np.maximum(times[idx], start)
        nxt = np.append(times[1:], np.inf)
        win_ends = np.minimum(nxt[idx], end)
        ok = (
            (seg_starts >= b_start)
            & (win_ends <= b_end)
            & (free[idx] + b_nodes >= nodes)
        )
        return bool(ok.all())

    def find_start(self, nodes: int, duration: float, earliest: float) -> float:
        """Earliest ``t >= earliest`` with ``nodes`` free throughout
        ``[t, t + duration)``.

        Always succeeds for ``nodes <= total_nodes`` because reservations
        and holds are finite, so the final step has full availability.

        Vectorised: every segment with enough free nodes is a candidate
        start; a candidate is feasible iff its window ends before the
        next under-provisioned segment begins.  Both sides are single
        array expressions, and the earliest feasible candidate is the
        answer (segment-skipping in the old walk was only ever an
        optimisation — a candidate blocked at segment ``b`` forces every
        later candidate before ``b`` to be blocked at ``b`` too).
        """
        if nodes > self.total_nodes:
            raise ProfileError(
                f"request for {nodes} nodes can never fit in {self.total_nodes}"
            )
        if nodes <= 0:
            raise ValueError(f"nodes must be positive, got {nodes}")
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        times, free = self.times, self.free
        earliest = max(earliest, float(times[0]))
        start_idx = int(np.searchsorted(times, earliest, side="right")) - 1
        good = free >= nodes
        cand = np.flatnonzero(good[start_idx:]) + start_idx
        if cand.size:
            # Candidate start times: ``earliest`` inside the segment the
            # search begins in, the segment's breakpoint afterwards.
            t_cand = np.maximum(times[cand], earliest)
            bad_idx = np.flatnonzero(~good)
            if bad_idx.size:
                # Time of the first under-provisioned segment after each
                # candidate (inf when none follows).
                pos = np.searchsorted(bad_idx, cand)
                safe = np.minimum(pos, bad_idx.size - 1)
                next_bad = np.where(
                    pos < bad_idx.size, times[bad_idx[safe]], np.inf
                )
            else:
                next_bad = np.full(cand.size, np.inf)
            feasible = np.flatnonzero(t_cand + duration <= next_bad)
            if feasible.size:
                return float(t_cand[feasible[0]])
        raise ProfileError(
            f"no feasible start for {nodes} nodes x {duration}s; the profile "
            "tail should always be feasible (capacity leak?)"
        )

    def segments(self) -> list[Tuple[float, int]]:
        """Return ``(time, free)`` breakpoints (Python scalars, a copy)."""
        return list(zip(self.times.tolist(), self.free.tolist()))

    def check_invariants(self) -> None:
        """Verify representation invariants; raise on any breakage.

        Explicit raises rather than ``assert`` so the runtime auditor
        (which calls this on every CBF pass) keeps its teeth under
        ``python -O``.
        """
        if len(self.times) != len(self.free):
            raise ProfileError(
                f"times/free length mismatch: {len(self.times)} != "
                f"{len(self.free)}"
            )
        diffs_ok = np.diff(self.times) > 0
        if not diffs_ok.all():
            k = int(np.argmin(diffs_ok))
            raise ProfileError(
                "breakpoints not strictly increasing: "
                f"{float(self.times[k])} >= {float(self.times[k + 1])}"
            )
        in_bounds = (self.free >= 0) & (self.free <= self.total_nodes)
        if not in_bounds.all():
            k = int(np.argmin(in_bounds))
            raise ProfileError(
                f"availability {int(self.free[k])} at t={float(self.times[k])} "
                f"outside [0, {self.total_nodes}]"
            )

    def __len__(self) -> int:
        return len(self.times)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        segs = ", ".join(f"{t:.1f}:{f}" for t, f in self.segments()[:8])
        return f"Profile[{segs}{'...' if len(self.times) > 8 else ''}]"
