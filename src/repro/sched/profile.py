"""Node-availability profile: free nodes as a step function of time.

Backfilling schedulers plan against the *future* availability implied by
the requested (not actual) runtimes of running and reserved requests.
This module provides that plan as an explicit step function supporting
the operations conservative backfilling needs:

* :meth:`Profile.reserve` / :meth:`Profile.adjust` — commit or undo a
  reservation or a running hold over a finite window;
* :meth:`Profile.find_start` — earliest instant at which ``nodes`` nodes
  are continuously free for ``duration`` seconds;
* :meth:`Profile.can_place` — feasibility check for a specific start,
  optionally ignoring the request's own stale reservation;
* :meth:`Profile.trim` — garbage-collect segments that fell into the
  past (the profile is long-lived in the incremental CBF).

The representation is two parallel arrays ``times``/``free`` where
``free[i]`` holds over ``[times[i], times[i+1])`` and the last value
extends to infinity.
"""

from __future__ import annotations

import bisect
import math
from typing import Iterable, Optional, Tuple


class ProfileError(RuntimeError):
    """Raised when an adjustment would violate 0 <= free <= capacity."""


class Profile:
    """Step function of free nodes over ``[origin, inf)``.

    Parameters
    ----------
    origin:
        Left edge of the horizon (usually the current simulated time).
    free_now:
        Free nodes at the origin.
    total_nodes:
        Capacity bound; availability must stay within ``[0, total]``.
    """

    __slots__ = ("times", "free", "total_nodes")

    def __init__(self, origin: float, free_now: int, total_nodes: int) -> None:
        if not 0 <= free_now <= total_nodes:
            raise ValueError(f"free_now={free_now} outside [0, {total_nodes}]")
        self.times: list[float] = [float(origin)]
        self.free: list[int] = [int(free_now)]
        self.total_nodes = int(total_nodes)

    # -- construction ----------------------------------------------------

    @classmethod
    def from_running(
        cls,
        now: float,
        total_nodes: int,
        running: Iterable[Tuple[float, int]],
    ) -> "Profile":
        """Build the profile implied by running requests.

        ``running`` yields ``(expected_end, nodes)`` pairs; each pair
        returns ``nodes`` nodes to the pool at ``expected_end``.
        """
        busy = 0
        releases = []
        for end, nodes in running:
            busy += nodes
            releases.append((end, nodes))
        if busy > total_nodes:
            raise ProfileError(f"running jobs hold {busy} > {total_nodes} nodes")
        prof = cls(now, total_nodes - busy, total_nodes)
        for end, nodes in releases:
            prof.adjust(max(end, now), math.inf, nodes)
        return prof

    # -- mutation --------------------------------------------------------

    def adjust(self, start: float, end: float, delta: int) -> None:
        """Add ``delta`` free nodes over ``[start, end)`` (``end`` may be inf).

        Raises :exc:`ProfileError` (leaving the profile unchanged) if the
        result would leave ``[0, total_nodes]`` anywhere in the window.

        The window is validated *before* any mutation, then applied in a
        single batched update: when both window edges already coincide
        with breakpoints — the dominant case under backfill churn, where
        reservations are released over the exact windows that created
        them — the update is pure in-place arithmetic with **zero** list
        inserts; otherwise the affected slice is rebuilt with one splice
        instead of per-edge O(n) inserts plus rollback bookkeeping.
        """
        if end <= start:
            raise ValueError(f"empty window [{start}, {end})")
        if delta == 0:
            return
        times, free = self.times, self.free
        n = len(times)
        i = bisect.bisect_right(times, start) - 1
        if i < 0:
            raise ProfileError(
                f"time {start} precedes profile origin {times[0]}"
            )
        finite = math.isfinite(end)
        if finite:
            # Segment containing ``end``; j >= i because end > start.
            j = bisect.bisect_right(times, end, lo=i) - 1
            split_end = times[j] != end
            hi = j if split_end else j - 1
        else:
            j = n - 1
            split_end = False
            hi = n - 1
        split_start = times[i] != start

        # Validate the whole window first — failure leaves no trace.
        total = self.total_nodes
        for k in range(i, hi + 1):
            nf = free[k] + delta
            if not 0 <= nf <= total:
                raise ProfileError(
                    f"adjust({start}, {end}, {delta:+d}) drives availability "
                    f"to {nf} at t={max(times[k], start)} (capacity {total})"
                )

        if not split_start and not split_end:
            # Fast path: boundaries already exist, adjust in place.
            for k in range(i, hi + 1):
                free[k] += delta
            return

        # One splice covering segments i..hi, inserting the (at most
        # two) new breakpoints along the way.
        new_times: list[float] = []
        new_free: list[int] = []
        if split_start:
            new_times.append(times[i])
            new_free.append(free[i])
            new_times.append(start)
        else:
            new_times.append(times[i])
        new_free.append(free[i] + delta)
        for k in range(i + 1, hi + 1):
            new_times.append(times[k])
            new_free.append(free[k] + delta)
        if split_end:
            new_times.append(end)
            new_free.append(free[j])
        times[i:hi + 1] = new_times
        free[i:hi + 1] = new_free

    def reserve(self, start: float, duration: float, nodes: int) -> None:
        """Subtract ``nodes`` over ``[start, start + duration)``."""
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        if nodes <= 0:
            raise ValueError(f"nodes must be positive, got {nodes}")
        self.adjust(start, start + duration, -nodes)

    def release_window(self, start: float, end: float, nodes: int) -> None:
        """Give back ``nodes`` over ``[start, end)`` (undo part of a hold)."""
        if nodes <= 0:
            raise ValueError(f"nodes must be positive, got {nodes}")
        self.adjust(start, end, nodes)

    def trim(self, t: float) -> None:
        """Drop breakpoints strictly before ``t``; new origin becomes ``t``.

        Availability in the discarded past is forgotten — only call with
        ``t <= now`` once no queries before ``t`` will ever be issued.
        """
        i = bisect.bisect_right(self.times, t) - 1
        if i <= 0:
            return
        self.times = [t] + self.times[i + 1:]
        self.free = self.free[i:]

    # -- queries ---------------------------------------------------------

    def free_at(self, t: float) -> int:
        """Free nodes at time ``t`` (t >= origin)."""
        i = bisect.bisect_right(self.times, t) - 1
        if i < 0:
            raise ProfileError(f"time {t} precedes profile origin {self.times[0]}")
        return self.free[i]

    def can_place(
        self,
        start: float,
        duration: float,
        nodes: int,
        bonus: Optional[Tuple[float, float, int]] = None,
    ) -> bool:
        """Whether ``nodes`` nodes are free throughout ``[start, start+duration)``.

        ``bonus`` is an optional ``(b_start, b_end, b_nodes)`` window of
        *extra* availability, used to ignore the candidate's own stale
        reservation without mutating the profile.
        """
        end = start + duration
        i = bisect.bisect_right(self.times, start) - 1
        if i < 0:
            raise ProfileError(f"time {start} precedes profile origin")
        n = len(self.times)
        j = i
        while j < n and (j == i or self.times[j] < end):
            seg_start = start if j == i else self.times[j]
            seg_end = self.times[j + 1] if j + 1 < n else math.inf
            win_end = seg_end if seg_end < end else end
            if self.free[j] < nodes:
                # The base profile is short over [seg_start, win_end);
                # only the bonus window can bridge the deficit, and only
                # where it applies.  Splitting the sub-window at the
                # bonus edges, every uncovered piece keeps the base
                # availability — so feasibility requires the bonus to
                # cover the *whole* sub-window and to be large enough.
                if bonus is None:
                    return False
                b_start, b_end, b_nodes = bonus
                if b_start > seg_start or b_end < win_end:
                    return False
                if self.free[j] + b_nodes < nodes:
                    return False
            j += 1
        return True

    def find_start(self, nodes: int, duration: float, earliest: float) -> float:
        """Earliest ``t >= earliest`` with ``nodes`` free throughout
        ``[t, t + duration)``.

        Always succeeds for ``nodes <= total_nodes`` because reservations
        and holds are finite, so the final step has full availability.
        """
        if nodes > self.total_nodes:
            raise ProfileError(
                f"request for {nodes} nodes can never fit in {self.total_nodes}"
            )
        if nodes <= 0:
            raise ValueError(f"nodes must be positive, got {nodes}")
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        times, free = self.times, self.free
        earliest = max(earliest, times[0])
        n = len(times)
        start_idx = bisect.bisect_right(times, earliest) - 1
        i = start_idx
        while i < n:
            if free[i] >= nodes:
                t = earliest if i == start_idx else times[i]
                end = t + duration
                ok = True
                j = i + 1
                while j < n and times[j] < end:
                    if free[j] < nodes:
                        ok = False
                        break
                    j += 1
                if ok:
                    return t
                # Restart the search after the blocking segment.
                i = j
            else:
                i += 1
        raise ProfileError(
            f"no feasible start for {nodes} nodes x {duration}s; the profile "
            "tail should always be feasible (capacity leak?)"
        )

    def segments(self) -> list[Tuple[float, int]]:
        """Return ``(time, free)`` breakpoints (copy, for inspection)."""
        return list(zip(self.times, self.free))

    def check_invariants(self) -> None:
        """Verify representation invariants; raise on any breakage.

        Explicit raises rather than ``assert`` so the runtime auditor
        (which calls this on every CBF pass) keeps its teeth under
        ``python -O``.
        """
        if len(self.times) != len(self.free):
            raise ProfileError(
                f"times/free length mismatch: {len(self.times)} != "
                f"{len(self.free)}"
            )
        for a, b in zip(self.times, self.times[1:]):
            if not a < b:
                raise ProfileError(
                    f"breakpoints not strictly increasing: {a} >= {b}"
                )
        for t, f in zip(self.times, self.free):
            if not 0 <= f <= self.total_nodes:
                raise ProfileError(
                    f"availability {f} at t={t} outside "
                    f"[0, {self.total_nodes}]"
                )

    def __len__(self) -> int:
        return len(self.times)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        segs = ", ".join(f"{t:.1f}:{f}" for t, f in self.segments()[:8])
        return f"Profile[{segs}{'...' if len(self.times) > 8 else ''}]"
