"""Conservative Backfilling (CBF, Mu'alem & Feitelson).

Every request receives a *reservation* — a guaranteed latest start time —
the moment it is submitted, and backfilling is allowed only when it
delays no existing reservation.  The reservation made at submission is
also the scheduler's queue-waiting-time prediction, which Section 5 of
the paper evaluates (Table 4).

Implementation: a persistent availability :class:`~repro.sched.profile.Profile`
tracks ``capacity − running holds − reservations`` over time.  All
bookkeeping is incremental and local:

* **submit** — earliest feasible slot in the profile becomes the
  reservation (and the at-submit prediction);
* **reservation due** — a timer fires at the earliest reservation; due
  requests start (their start is guaranteed: actual holds never exceed
  the planned holds because real runtimes never exceed requests);
* **cancel** — the reservation window is returned to the profile;
* **early finish** — the unused tail of the running hold is returned;
* **backfill** — after capacity returns (cancel/early finish), pending
  requests are scanned in submit order and started immediately when the
  profile proves no reservation would be delayed.

Unlike textbook CBF, existing reservations are *not* recomputed
("compressed") when capacity frees up early — freed capacity is instead
consumed by the submit-order backfill scan and by new arrivals, which
may legally reserve ahead of older, later reservations.  This matches
deployed conservative schedulers, keeps every operation O(local profile
scan) in the paper's heavily overloaded regime, and can only make
requests start *earlier* than their guaranteed reservation.  An optional
``compress_interval`` restores periodic compression for ablations
(textbook CBF with eager compression at ``compress_interval=0``);
compression re-places each reservation with all others held fixed, so
it too can only move starts earlier.
"""

from __future__ import annotations

import heapq

from typing import Optional

import numpy as np

from ..cluster.cluster import Cluster
from ..sim.engine import Simulator
from ..sim.events import Event, EventPriority
from .base import Scheduler, SchedulerError
from .job import Request
from .profile import Profile

#: trim past profile segments every this many scheduling passes
_TRIM_EVERY = 256


class CBFScheduler(Scheduler):
    """Conservative backfilling with per-request reservations.

    Parameters
    ----------
    sim, cluster:
        As for :class:`~repro.sched.base.Scheduler`.
    compress_interval:
        ``None`` (default): never recompute reservations — freed
        capacity is used by backfill and new arrivals only.
        ``0``: recompute after every cancellation/early finish
        (textbook CBF with eager compression; O(queue) per event, only
        viable for small workloads).
        ``t > 0``: recompute at most every ``t`` simulated seconds.
    """

    algorithm = "cbf"

    def __init__(
        self,
        sim: Simulator,
        cluster: Cluster,
        compress_interval: Optional[float] = None,
    ) -> None:
        super().__init__(sim, cluster)
        self._profile = Profile(sim.now, cluster.total_nodes, cluster.total_nodes)
        # Min-heap of (reserved_start, request_id, request); entries go
        # stale when the request starts early or is cancelled and are
        # discarded lazily on pop.
        self._due: list[tuple[float, int, Request]] = []
        self._timer: Optional[Event] = None
        self._pass_count = 0
        self.compress_interval = compress_interval
        self._dirty = False
        self._last_compress = sim.now
        self.compressions = 0

    @property
    def profile(self) -> Profile:
        """The availability profile (read-only view for audit tooling)."""
        return self._profile

    # -- event hooks -----------------------------------------------------

    def _on_submit(self, request: Request) -> None:
        start = self._profile.find_start(
            request.nodes, request.requested_time, self.sim.now
        )
        self._profile.reserve(start, request.requested_time, request.nodes)
        request.reserved_start = start
        if request.predicted_start_at_submit is None:
            request.predicted_start_at_submit = start
        heapq.heappush(self._due, (start, request.request_id, request))
        self._arm_timer()

    def _on_cancel(self, request: Request) -> None:
        start = request.reserved_start
        assert start is not None, "pending CBF request must hold a reservation"
        self._profile.adjust(
            start, start + request.requested_time, +request.nodes
        )
        request.reserved_start = None
        self._dirty = True

    def _on_finish(self, request: Request) -> None:
        expected_end = request.start_time + request.requested_time
        if self.sim.now < expected_end:
            # Early completion: return the unused tail of the hold.
            self._profile.adjust(self.sim.now, expected_end, +request.nodes)
            self._dirty = True

    # -- scheduling ------------------------------------------------------

    def _schedule_pass(self) -> None:
        now = self.sim.now
        self._pass_count += 1
        if self._pass_count % _TRIM_EVERY == 0:
            self._profile.trim(now)
        if self._should_compress(now):
            self.compress()

        # 1. Start requests whose reservation is due.
        while self._due:
            start, _, req = self._due[0]
            if not req.is_pending or req.reserved_start != start:
                heapq.heappop(self._due)  # stale entry
                continue
            if start > now:
                break
            heapq.heappop(self._due)
            if start == now:
                self._start_at_reservation(req)
            else:
                self._restore_overdue(req)

        # 2. Backfill: submit-order scan over pending requests, starting
        #    any that provably delay no reservation.  The candidate set
        #    is prefiltered in one vectorised expression against the
        #    *initial* free count; since every early start only shrinks
        #    free_now (reservations sit strictly in the future, so
        #    reentrant sibling cancellations cannot grow it), the filter
        #    is a superset of the old per-request scan and the
        #    per-candidate rechecks below keep the semantics identical.
        free_now = self._profile.free_at(now)
        if free_now > 0 and self._pending_count > 0:
            n = len(self.queue)
            candidates = np.flatnonzero(
                self._q_pending[:n] & (self._q_nodes[:n] <= free_now)
            )
            for i in candidates:
                if free_now <= 0:
                    break
                req = self.queue[i]
                if not self._q_pending[i] or req.nodes > free_now:
                    continue
                rs = req.reserved_start
                assert rs is not None
                bonus = (rs, rs + req.requested_time, req.nodes)
                if self._profile.can_place(
                    now, req.requested_time, req.nodes, bonus=bonus
                ):
                    self._start_early(req)
                    free_now = self._profile.free_at(now)

        self._arm_timer()

    def _start_at_reservation(self, request: Request) -> None:
        """Start a request exactly at its reserved time (hold == reservation)."""
        if not self.cluster.can_fit(request.nodes):  # pragma: no cover
            raise SchedulerError(
                f"{self.name}: reservation for request {request.request_id} due "
                f"but only {self.cluster.free_nodes} nodes free — profile leak"
            )
        # The reservation window becomes the running hold verbatim; the
        # profile does not change.
        self._start(request)

    def _restore_overdue(self, request: Request) -> None:
        """Re-place a reservation that came due while the daemon was down.

        Passes are suspended during an outage, so a reservation can be
        strictly in the past by the time the daemon recovers.  Starting
        it verbatim would create a hold ending at ``now + requested``
        while the profile only accounts for ``reserved_start +
        requested`` — the difference silently oversubscribes the profile
        tail and later surfaces as a "profile leak".  Instead the stale
        window is released and the request re-placed at its earliest
        feasible time (starting immediately when that is ``now``).
        """
        now = self.sim.now
        rs = request.reserved_start
        d = request.requested_time
        if rs + d > now:
            # Only the future part matters: queries never look back and
            # trim() discards the past remainder.
            self._profile.adjust(now, rs + d, +request.nodes)
        start = self._profile.find_start(request.nodes, d, now)
        if start == now:
            self._profile.adjust(now, now + d, -request.nodes)
            request.reserved_start = now
            self._start(request)
        else:
            self._profile.reserve(start, d, request.nodes)
            request.reserved_start = start
            heapq.heappush(self._due, (start, request.request_id, request))

    def _start_early(self, request: Request) -> None:
        """Start a request before its reservation (backfill)."""
        now = self.sim.now
        rs = request.reserved_start
        d = request.requested_time
        # Swap the reservation window for the hold window.
        self._profile.adjust(rs, rs + d, +request.nodes)
        self._profile.adjust(now, now + d, -request.nodes)
        request.reserved_start = now
        self._start(request)
        self.stats.backfilled += 1

    # -- reservation timer -------------------------------------------------

    def _arm_timer(self) -> None:
        """Keep a wake-up pending at the earliest live reservation.

        Needed because a reservation time may not coincide with any
        finish/submit/cancel event once early completions have shifted
        the actual schedule ahead of the planned one.
        """
        while self._due:
            start, _, req = self._due[0]
            if req.is_pending and req.reserved_start == start:
                break
            heapq.heappop(self._due)
        if not self._due:
            return
        t = self._due[0][0]
        if t <= self.sim.now:
            self._request_pass()
            return
        if self._timer is not None and not self._timer.cancelled:
            if self._timer.time <= t:
                return
            # Tracked cancellation: the engine counts the tombstone and
            # compacts the heap when dead timers start to dominate.
            self.sim.cancel(self._timer)
        self._timer = self.sim.at(t, self._timer_fired, EventPriority.CONTROL)

    def _timer_fired(self) -> None:
        # Drop the handle before requesting the pass: a fired event is
        # never marked ``cancelled``, so keeping it would make every
        # later ``_arm_timer`` call see a "pending" wake-up at a time in
        # the past and suppress re-arming — after the first firing, due
        # reservations would then only start when an unrelated
        # finish/submit/cancel happened to trigger a pass (i.e. late).
        self._timer = None
        self._request_pass()

    # -- base-class guard ----------------------------------------------------

    def _start_possible(self) -> bool:
        # In addition to the free-nodes guard, a pass is useful whenever a
        # reservation is due or compression is pending.
        if self._due and self._due[0][0] <= self.sim.now:
            return True
        if self._should_compress(self.sim.now):
            return True
        return super()._start_possible()

    # -- compression (optional; ablation/textbook mode) ------------------------

    def _should_compress(self, now: float) -> bool:
        return (
            self.compress_interval is not None
            and self._dirty
            and now - self._last_compress >= self.compress_interval
        )

    def compress(self) -> None:
        """Move reservations earlier where freed capacity allows.

        Each pending request is removed from the live profile and
        re-inserted at its earliest feasible time, in submission order,
        while every *other* reservation stays in place.  Because a
        request's own window is freed before the search, its old slot is
        always still feasible, so a reservation can only move earlier —
        the at-submit guarantee survives compression.

        (A from-scratch greedy rebuild does *not* have this property:
        re-placing an earlier-submitted request into a freed gap can
        consume the very window a later request's reservation sat in,
        pushing the later request past its guaranteed start.)
        """
        now = self.sim.now
        origin = self._profile.times[0]
        for req in self.queue:
            if not req.is_pending:
                continue
            rs = req.reserved_start
            d = req.requested_time
            release_from = rs if rs > origin else origin
            if rs + d > release_from:
                self._profile.adjust(release_from, rs + d, +req.nodes)
            # With rs >= now the freed slot guarantees find_start <= rs;
            # rs < now only after an outage, where the request is simply
            # re-placed from now (its guarantee is already void).
            start = self._profile.find_start(req.nodes, d, now)
            self._profile.reserve(start, d, req.nodes)
            if start != rs:
                req.reserved_start = start
                heapq.heappush(self._due, (start, req.request_id, req))
        self._dirty = False
        self._last_compress = now
        self.compressions += 1

    # -- invariants ------------------------------------------------------------

    def check_invariants(self) -> None:
        super().check_invariants()
        self._profile.check_invariants()
        for req in self.queue:
            if req.is_pending:
                assert req.reserved_start is not None
                assert req.predicted_start_at_submit is not None
