"""Common machinery for batch schedulers.

Each scheduler manages a single queue with no request priorities
(Section 3.1.1).  The base class owns:

* queue and running-set bookkeeping;
* the submit / cancel / finish event plumbing (finish events fire at
  ``start + actual runtime``, which is <= the requested time — this is
  what creates backfilling opportunities on early completion);
* coalesced scheduling passes: every state change requests a pass, and
  all changes at one simulated instant are served by a single pass that
  runs at :data:`~repro.sim.events.EventPriority.SCHEDULE` priority,
  i.e. after all cancellations/finishes/submissions at that instant;
* start notification callbacks (used by the redundancy coordinator to
  cancel sibling requests) and per-queue statistics;
* optional lifecycle tracing: when a
  :class:`~repro.obs.trace.TraceRecorder` is attached (``tracer``
  attribute), every queue/start/cancel/complete/outage transition is
  emitted as a typed event.  With no recorder attached (the default)
  each hook site costs one attribute check and nothing else;
* optional runtime auditing: an attached
  :class:`~repro.sanitize.auditor.InvariantAuditor` (``auditor``
  attribute) re-derives and checks capacity, ordering and reservation
  invariants after every transition, under the same
  zero-overhead-when-off discipline.

Performance note: the paper's workload is an *overloaded* peak-hour
stream (queues grow by ~700 requests/hour, Section 4.1), so queues reach
thousands of entries and anything O(queue) per event dominates.  The
base class therefore tracks the pending count incrementally, compacts
cancelled entries lazily, and offers subclasses an O(1)
"could anything start?" guard (:meth:`_start_possible`) based on a
conservative lower bound of the smallest pending request.

Queue state additionally lives in *struct-of-arrays* form: three numpy
arrays (``nodes``, ``requested_time``, ``pending``) aligned with the
``queue`` list, maintained incrementally (append on submit, O(1) bit
flip on start/cancel, rebuilt on compaction).  Scheduling passes scan
these arrays with vectorised boolean operations instead of iterating
thousands of request objects per event — the array scan *is* the hot
loop under overload.  Each request carries its array index in
``Request.slot``; subclasses that reorder ``queue`` in place must call
:meth:`_sync_queue_arrays` afterwards.

Subclasses implement :meth:`_schedule_pass` only.
"""

from __future__ import annotations

import abc
from functools import partial
from typing import Callable, Iterable

import numpy as np

from ..cluster.cluster import Cluster
from ..sim.engine import Simulator
from ..sim.events import EventPriority
from .job import Request, RequestState

StartCallback = Callable[[Request, float], None]

# Module-level aliases: enum member lookup through the class is a
# touch slower than a global load, and these appear on every
# submit/cancel/start/finish.
_PENDING = RequestState.PENDING
_CREATED = RequestState.CREATED
_CANCELLED = RequestState.CANCELLED
_RUNNING = RequestState.RUNNING
_COMPLETED = RequestState.COMPLETED

#: compact the queue list once this many cancelled entries accumulate
_COMPACT_SLACK = 64

#: initial capacity of the struct-of-arrays queue state
_SOA_CAPACITY = 64


class SchedulerError(RuntimeError):
    """Raised on invalid scheduler API usage."""


class SchedulerDownError(SchedulerError):
    """Raised when a submit/cancel reaches a scheduler that is down.

    Models the daemon-level failures of the paper's Section 4: a downed
    batch scheduler rejects new submissions and silently loses
    cancellation messages, while already-running jobs keep their nodes
    (the daemon crashed, not the compute nodes).
    """


class QueueStats:
    """Running statistics about one batch queue."""

    def __init__(self) -> None:
        self.submitted = 0
        self.cancelled = 0
        self.started = 0
        self.completed = 0
        #: starts that jumped the queue order (EASY backfill slots, CBF
        #: early starts) — the "backfill decisions" observability counter
        self.backfilled = 0
        #: pending requests lost when the scheduler crashed with
        #: ``drop_queue`` (distinct from user-issued cancellations)
        self.dropped = 0
        self.max_queue_length = 0
        #: (time, queue_length) samples, recorded when ``trace_enabled``
        self.length_trace: list[tuple[float, int]] = []
        self.trace_enabled = False

    def observe_queue(self, now: float, length: int) -> None:
        if length > self.max_queue_length:
            self.max_queue_length = length
        if self.trace_enabled:
            self.length_trace.append((now, length))


class Scheduler(abc.ABC):
    """Abstract batch scheduler bound to one cluster.

    Parameters
    ----------
    sim:
        The shared simulator.
    cluster:
        The cluster whose nodes this scheduler allocates.
    """

    #: short algorithm name, e.g. ``"easy"``; set by subclasses
    algorithm: str = "abstract"

    def __init__(self, sim: Simulator, cluster: Cluster) -> None:
        self.sim = sim
        self.cluster = cluster
        self.queue: list[Request] = []   # pending requests, submit order
        self.running: list[Request] = []
        self.stats = QueueStats()
        #: scheduler daemon availability (see :meth:`go_down`)
        self.down = False
        #: optional lifecycle-event recorder (``None`` = tracing off;
        #: see :mod:`repro.obs.trace`)
        self.tracer = None
        #: optional invariant auditor (``None`` = auditing off; see
        #: :mod:`repro.sanitize.auditor`) — same zero-overhead hook
        #: discipline as ``tracer``
        self.auditor = None
        self._start_callbacks: list[StartCallback] = []
        self._finish_callbacks: list[StartCallback] = []
        self._pass_pending = False
        self._pending_count = 0
        # Hook elision: the base hooks are empty, so when a subclass
        # does not override one the call site can skip the call (and
        # its frame) entirely.  Resolved once per instance.
        cls = type(self)
        self._has_on_submit = cls._on_submit is not Scheduler._on_submit
        self._has_on_cancel = cls._on_cancel is not Scheduler._on_cancel
        self._has_on_finish = cls._on_finish is not Scheduler._on_finish
        # True while _schedule_pass is on the stack: passes hold local
        # references to ``queue`` and array slices, so compaction (which
        # rebuilds the list and remaps every slot) must not run under
        # them — a reentrant sibling cancellation would otherwise leave
        # the pass scanning a stale snapshot with live indices.
        self._in_pass = False
        # Struct-of-arrays queue state, aligned with ``self.queue``
        # (including stale entries awaiting compaction).  ``nodes`` and
        # ``requested_time`` are immutable per request; ``pending`` is
        # the live mask flipped on every state transition.
        self._q_nodes = np.zeros(_SOA_CAPACITY, dtype=np.int64)
        self._q_reqtime = np.zeros(_SOA_CAPACITY, dtype=np.float64)
        self._q_pending = np.zeros(_SOA_CAPACITY, dtype=bool)
        # Conservative lower bound on the smallest pending node count.
        # Starts/cancels can only raise the true minimum, so the cached
        # bound stays valid (it may trigger a useless pass, never skip a
        # useful one).  Tightened whenever a full pass finds nothing.
        self._min_nodes_lb = 1
        # Blocked-state memo ``(free, shadow, extra, head)`` recorded by
        # EASY/FCFS passes that started nothing (``None`` = unknown, be
        # conservative).  While set, it proves no pending request can
        # start, so submit/cancel can decide *locally* whether a pass is
        # worth scheduling: a new request starts only if it fits now and
        # clears the cached backfill bound, and removing a non-head
        # request never enables anything.  The memo is invalidated by
        # every transition that moves its inputs — finish and start
        # change ``free`` and the release schedule, cancelling the head
        # changes the reservation, outages rewrite the queue.  CBF and
        # the multi-queue extension never record a memo (their submits
        # can reshape the plan), so they keep the conservative path.
        self._block: "tuple[int, float, int, Request | None] | None" = None
        # Sorted ``(expected_end, nodes)`` release schedule of the
        # running set, cached between passes.  Only :meth:`_start` and
        # :meth:`_finish` mutate ``running``, so both drop the cache;
        # EASY rebuilds it lazily per head reservation (the sort was a
        # visible profile line under overload, where many same-instant
        # reservations share one unchanged running set).
        self._releases_sorted: "list[tuple[float, int]] | None" = None

    # -- callbacks -------------------------------------------------------

    def add_start_callback(self, cb: StartCallback) -> None:
        """Register ``cb(request, time)`` invoked whenever a request starts."""
        self._start_callbacks.append(cb)

    def add_finish_callback(self, cb: StartCallback) -> None:
        """Register ``cb(request, time)`` invoked whenever a request finishes.

        The coordinator's online-metrics path registers here only when
        streaming statistics are enabled, so the disabled path costs a
        single truthiness check per finish — the same zero-overhead
        discipline as ``tracer``/``auditor``.
        """
        self._finish_callbacks.append(cb)

    # -- tracing ---------------------------------------------------------

    def _emit(self, etype: str, request: "Request | None" = None) -> None:
        """Record one lifecycle event (callers have checked ``tracer``)."""
        if request is None:
            self.tracer.emit(self.sim.now, etype, self.cluster.index)
        else:
            self.tracer.emit(
                self.sim.now,
                etype,
                self.cluster.index,
                request.request_id,
                getattr(request.group, "job_id", -1),
            )

    # -- public API ------------------------------------------------------

    @property
    def name(self) -> str:
        return f"{self.algorithm}@{self.cluster.name}"

    @property
    def queue_length(self) -> int:
        """Number of pending requests."""
        return self._pending_count

    def pending_requests(self) -> list[Request]:
        """Pending requests in submission order."""
        return [r for r in self.queue if r.is_pending]

    def submit(self, request: Request) -> None:
        """Enqueue ``request`` at the current simulated time."""
        if self.down:
            raise SchedulerDownError(
                f"{self.name}: scheduler is down, submission rejected"
            )
        if request.state is not _CREATED:
            raise SchedulerError(
                f"request {request.request_id} resubmitted (state={request.state})"
            )
        if not self.cluster.can_ever_fit(request.nodes):
            raise SchedulerError(
                f"{self.name}: request for {request.nodes} nodes can never run "
                f"on {self.cluster.total_nodes} nodes"
            )
        now = self.sim.now
        request.state = _PENDING
        request.cluster = self
        request.submitted_at = now
        slot = len(self.queue)
        self.queue.append(request)
        if slot == len(self._q_nodes):
            self._grow_arrays()
        request.slot = slot
        self._q_nodes[slot] = request.nodes
        self._q_reqtime[slot] = request.requested_time
        self._q_pending[slot] = True
        self._pending_count += 1
        if request.nodes < self._min_nodes_lb:
            self._min_nodes_lb = request.nodes
        self.stats.submitted += 1
        self.stats.observe_queue(now, self._pending_count)
        if self.tracer is not None:
            self._emit("queue", request)
        if self._has_on_submit:
            self._on_submit(request)
        if self.auditor is not None:
            self.auditor.after_submit(self, request)
        blk = self._block
        if blk is None:
            self._request_pass()
        else:
            free, shadow, extra, _head = blk
            # The queue is provably blocked and a submission changes
            # neither the head nor the release schedule, so only the new
            # request itself could start — and only by the cached
            # backfill test (fits now, and finishes before the shadow
            # time or stays within the extra nodes).
            if request.nodes <= free and (
                now + request.requested_time <= shadow
                or request.nodes <= extra
            ):
                self._block = None
                self._request_pass()

    def cancel(self, request: Request, force: bool = False) -> None:
        """Remove a pending request from the queue.

        Only pending requests may be cancelled: the redundancy protocol
        cancels siblings the instant one copy starts, so a running copy
        is never a cancellation target.

        ``force`` bypasses the downed-daemon rejection — used for
        end-of-run bookkeeping (an operator purge outside the measured
        window), never for in-simulation cancellations.
        """
        if self.down and not force:
            raise SchedulerDownError(
                f"{self.name}: scheduler is down, cancellation lost"
            )
        if request.cluster is not self:
            raise SchedulerError(
                f"request {request.request_id} does not belong to {self.name}"
            )
        if request.state is not _PENDING:
            raise SchedulerError(
                f"cannot cancel request {request.request_id} in state "
                f"{request.state.value}"
            )
        request.state = _CANCELLED
        request.cancelled_at = self.sim.now
        self._q_pending[request.slot] = False
        self._pending_count -= 1
        self.stats.cancelled += 1
        self._maybe_compact()
        self.stats.observe_queue(self.sim.now, self._pending_count)
        if self.tracer is not None:
            self._emit("cancel_applied", request)
        if self._has_on_cancel:
            self._on_cancel(request)
        if self.auditor is not None:
            self.auditor.after_cancel(self, request)
        blk = self._block
        if blk is None:
            self._request_pass()
        elif request is blk[3]:
            # The blocked head is gone: the next pending request defines
            # a new reservation, so the memo is void and a pass is due.
            self._block = None
            self._request_pass()
        # else: the queue stays blocked — removing a non-head pending
        # request changes neither the head reservation nor free nodes,
        # so it cannot make any other request startable.

    # -- outages -----------------------------------------------------------

    def go_down(self, drop_queue: bool = False) -> list[Request]:
        """Take the scheduler daemon down.

        While down, :meth:`submit` and :meth:`cancel` raise
        :class:`SchedulerDownError` and scheduling passes are suspended;
        running requests keep executing and finish normally.  With
        ``drop_queue`` every pending request is lost (the crashed-server
        scenario) and returned so the coordinator can resubmit or
        abandon the affected copies.
        """
        if self.down:
            raise SchedulerError(f"{self.name}: scheduler is already down")
        self.down = True
        self._block = None
        if self.tracer is not None:
            self._emit("outage_down")
        if self.auditor is not None:
            self.auditor.note_outage(self)
        dropped: list[Request] = []
        if drop_queue:
            for request in self.queue:
                if request.is_pending:
                    request.state = RequestState.CANCELLED
                    request.cancelled_at = self.sim.now
                    dropped.append(request)
                    if self.tracer is not None:
                        self._emit("cancel_applied", request)
                    # Route through the cancel hook so subclasses release
                    # per-request state (CBF reservations/profile windows).
                    self._on_cancel(request)
                    if self.auditor is not None:
                        self.auditor.after_cancel(self, request)
            self.queue = []
            self._q_pending[:] = False
            self._pending_count = 0
            self.stats.dropped += len(dropped)
            self.stats.observe_queue(self.sim.now, 0)
        return dropped

    def come_up(self) -> None:
        """Bring the scheduler daemon back; resume scheduling."""
        if not self.down:
            raise SchedulerError(f"{self.name}: scheduler is not down")
        self.down = False
        self._block = None
        if self.tracer is not None:
            self._emit("outage_up")
        self._request_pass()

    # -- subclass hooks ----------------------------------------------------

    def _on_submit(self, request: Request) -> None:
        """Called after a request joins the queue (before the pass)."""

    def _on_cancel(self, request: Request) -> None:
        """Called after a request leaves the queue (before the pass)."""

    def _on_finish(self, request: Request) -> None:
        """Called after a request completes (before the pass)."""

    @abc.abstractmethod
    def _schedule_pass(self) -> None:
        """Start requests according to the algorithm."""

    # -- internal machinery ------------------------------------------------

    def _maybe_compact(self) -> None:
        if self._in_pass:
            # Deferred: see ``_in_pass`` — the next pass entry compacts.
            return
        if len(self.queue) - self._pending_count > _COMPACT_SLACK:
            self._compact_queue()

    def _compact_queue(self) -> None:
        # Direct state check: this comprehension runs over thousands of
        # entries per pass under overload (see the class docstring).
        pending = RequestState.PENDING
        self.queue = [r for r in self.queue if r.state is pending]
        self._sync_queue_arrays()

    def _grow_arrays(self) -> None:
        """Double the struct-of-arrays capacity (amortised O(1) append)."""
        cap = max(len(self._q_nodes) * 2, _SOA_CAPACITY)
        for name in ("_q_nodes", "_q_reqtime", "_q_pending"):
            old = getattr(self, name)
            fresh = np.zeros(cap, dtype=old.dtype)
            fresh[: len(old)] = old
            setattr(self, name, fresh)

    def _sync_queue_arrays(self) -> None:
        """Rebuild the arrays and slots from the current ``queue`` list.

        Called after any operation that reorders or rewrites the queue
        list wholesale (compaction, subclass re-sorting).  O(queue).
        """
        queue = self.queue
        n = len(queue)
        while n > len(self._q_nodes):
            self._grow_arrays()
        nodes = self._q_nodes
        reqtime = self._q_reqtime
        pending = self._q_pending
        pending_state = RequestState.PENDING
        for i, r in enumerate(queue):
            r.slot = i
            nodes[i] = r.nodes
            reqtime[i] = r.requested_time
            pending[i] = r.state is pending_state
        pending[n:] = False

    def _start_possible(self) -> bool:
        """O(1) guard: could the algorithm possibly start anything now?

        All three algorithms only start requests that fit in the free
        nodes right now, so ``free < min pending nodes`` rules a start
        out.  Uses the conservative cached bound (see class docstring).
        """
        if self._pending_count == 0:
            return False
        return self.cluster.free_nodes >= self._min_nodes_lb

    def _tighten_min_nodes(self) -> None:
        """Recompute the exact smallest pending node count (one array min)."""
        n = len(self.queue)
        mask = self._q_pending[:n]
        if mask.any():
            self._min_nodes_lb = int(self._q_nodes[:n][mask].min())
        else:
            self._min_nodes_lb = self.cluster.total_nodes + 1

    def _request_pass(self) -> None:
        """Coalesce all same-instant state changes into one pass.

        The :meth:`_start_possible` guard is evaluated *here*, before an
        event is ever allocated: under the paper's overload most state
        changes (submissions into a full cluster, sibling cancellations)
        cannot enable a start, and in the seed kernel the resulting
        guaranteed-no-op pass events were the single largest event
        population.  Skipping them is invisible to the trajectory — the
        guard is conservative (false implies no algorithm could start
        anything), every enabling transition (finish, submit, come_up,
        reservation timer) re-requests a pass with the guard re-checked,
        and dropping events never reorders the survivors.
        """
        if self._pass_pending:
            return
        if self.down or not self._start_possible():
            # A downed daemon starts nothing (come_up() re-requests, so
            # suppressed passes are never lost), and a guard-false pass
            # would return immediately: don't pay for the event.
            return
        self._pass_pending = True
        self.sim.at(self.sim.now, self._run_pass, EventPriority.SCHEDULE)

    def _run_pass(self) -> None:
        self._pass_pending = False
        if self.down:
            # Re-checked: the daemon may have gone down between the
            # request and the pass instant.
            return
        if not self._start_possible():
            return
        before = self.stats.started
        # Compact *before* entering the pass (the flag suppresses any
        # reentrant compaction while pass-local snapshots are live).
        self._maybe_compact()
        self._in_pass = True
        try:
            self._schedule_pass()
        finally:
            self._in_pass = False
        if self.stats.started == before:
            # Nothing started: tighten the guard so the next no-op
            # instants are skipped in O(1).
            self._tighten_min_nodes()
        if self.auditor is not None:
            self.auditor.after_pass(self)
        self.stats.observe_queue(self.sim.now, self._pending_count)

    def _start(self, request: Request) -> None:
        """Allocate nodes and begin executing ``request`` now.

        The caller must already have removed ``request`` from
        ``self.queue`` (or be iterating with state checks).
        """
        if request.state is not _PENDING:
            raise SchedulerError(
                f"starting request {request.request_id} in state {request.state}"
            )
        now = self.sim.now
        self.cluster.allocate(request.nodes)
        request.state = _RUNNING
        request.start_time = now
        self._q_pending[request.slot] = False
        self._pending_count -= 1
        self.running.append(request)
        self._releases_sorted = None
        self.stats.started += 1
        if self.tracer is not None:
            self._emit("start", request)
        if self.auditor is not None:
            self.auditor.after_start(self, request)
        self.sim.at(
            now + request.runtime,
            partial(self._finish, request),
            EventPriority.FINISH,
        )
        # Notify listeners last: the coordinator's sibling-cancellation
        # may reentrantly mutate *other* schedulers and mark requests in
        # our own queue cancelled (handled by state checks in passes).
        for cb in self._start_callbacks:
            cb(request, now)

    def _finish(self, request: Request) -> None:
        if request.state is not _RUNNING:  # pragma: no cover
            raise SchedulerError(
                f"finishing request {request.request_id} in state {request.state}"
            )
        request.state = _COMPLETED
        request.end_time = self.sim.now
        self.running.remove(request)
        self.cluster.release(request.nodes)
        self._block = None  # free nodes and the release schedule moved
        self._releases_sorted = None
        self.stats.completed += 1
        if self.tracer is not None:
            self._emit("complete", request)
        if self._has_on_finish:
            self._on_finish(request)
        if self.auditor is not None:
            self.auditor.after_finish(self, request)
        # Notify listeners before the backfill pass the release enables:
        # online estimators must observe the completion at its own
        # instant, not after reentrant starts it triggered.
        if self._finish_callbacks:
            now = self.sim.now
            for cb in self._finish_callbacks:
                cb(request, now)
        self._request_pass()

    # -- invariants (exercised heavily by tests) -----------------------------

    def check_invariants(self) -> None:
        """Assert node accounting and state consistency."""
        busy = sum(r.nodes for r in self.running)
        assert busy == self.cluster.busy_nodes, (
            f"{self.name}: running jobs hold {busy} nodes but cluster says "
            f"{self.cluster.busy_nodes}"
        )
        assert all(r.state is RequestState.RUNNING for r in self.running)
        # The queue list may hold stale (started/cancelled) entries
        # awaiting lazy compaction, but never CREATED ones.
        assert all(r.state is not RequestState.CREATED for r in self.queue)
        assert self._pending_count == sum(1 for r in self.queue if r.is_pending)
        pending_nodes = [r.nodes for r in self.queue if r.is_pending]
        if pending_nodes:
            assert self._min_nodes_lb <= min(pending_nodes)
        # Struct-of-arrays mirrors: slots aligned, live mask exact.
        for i, r in enumerate(self.queue):
            assert r.slot == i, f"{self.name}: slot {r.slot} != index {i}"
            assert self._q_pending[i] == r.is_pending
            assert self._q_nodes[i] == r.nodes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}({self.cluster.name}, "
            f"queue={self.queue_length}, running={len(self.running)})"
        )


def expected_releases(running: Iterable[Request]) -> list[tuple[float, int]]:
    """``(expected_end, nodes)`` pairs for profile construction.

    Computed inline rather than through :attr:`Request.expected_end`:
    this runs once per head reservation, i.e. tens of thousands of
    times per simulation, and the property call was visible in
    profiles.  ``start_time`` is always set for running requests.
    """
    return [
        (r.start_time + r.requested_time, r.nodes)  # type: ignore[operator]
        for r in running
    ]
