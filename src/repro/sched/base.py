"""Common machinery for batch schedulers.

Each scheduler manages a single queue with no request priorities
(Section 3.1.1).  The base class owns:

* queue and running-set bookkeeping;
* the submit / cancel / finish event plumbing (finish events fire at
  ``start + actual runtime``, which is <= the requested time — this is
  what creates backfilling opportunities on early completion);
* coalesced scheduling passes: every state change requests a pass, and
  all changes at one simulated instant are served by a single pass that
  runs at :data:`~repro.sim.events.EventPriority.SCHEDULE` priority,
  i.e. after all cancellations/finishes/submissions at that instant;
* start notification callbacks (used by the redundancy coordinator to
  cancel sibling requests) and per-queue statistics;
* optional lifecycle tracing: when a
  :class:`~repro.obs.trace.TraceRecorder` is attached (``tracer``
  attribute), every queue/start/cancel/complete/outage transition is
  emitted as a typed event.  With no recorder attached (the default)
  each hook site costs one attribute check and nothing else;
* optional runtime auditing: an attached
  :class:`~repro.sanitize.auditor.InvariantAuditor` (``auditor``
  attribute) re-derives and checks capacity, ordering and reservation
  invariants after every transition, under the same
  zero-overhead-when-off discipline.

Performance note: the paper's workload is an *overloaded* peak-hour
stream (queues grow by ~700 requests/hour, Section 4.1), so queues reach
thousands of entries and anything O(queue) per event dominates.  The
base class therefore tracks the pending count incrementally, compacts
cancelled entries lazily, and offers subclasses an O(1)
"could anything start?" guard (:meth:`_start_possible`) based on a
conservative lower bound of the smallest pending request.

Subclasses implement :meth:`_schedule_pass` only.
"""

from __future__ import annotations

import abc
from functools import partial
from typing import Callable, Iterable

from ..cluster.cluster import Cluster
from ..sim.engine import Simulator
from ..sim.events import EventPriority
from .job import Request, RequestState

StartCallback = Callable[[Request, float], None]

#: compact the queue list once this many cancelled entries accumulate
_COMPACT_SLACK = 64


class SchedulerError(RuntimeError):
    """Raised on invalid scheduler API usage."""


class SchedulerDownError(SchedulerError):
    """Raised when a submit/cancel reaches a scheduler that is down.

    Models the daemon-level failures of the paper's Section 4: a downed
    batch scheduler rejects new submissions and silently loses
    cancellation messages, while already-running jobs keep their nodes
    (the daemon crashed, not the compute nodes).
    """


class QueueStats:
    """Running statistics about one batch queue."""

    def __init__(self) -> None:
        self.submitted = 0
        self.cancelled = 0
        self.started = 0
        self.completed = 0
        #: starts that jumped the queue order (EASY backfill slots, CBF
        #: early starts) — the "backfill decisions" observability counter
        self.backfilled = 0
        #: pending requests lost when the scheduler crashed with
        #: ``drop_queue`` (distinct from user-issued cancellations)
        self.dropped = 0
        self.max_queue_length = 0
        #: (time, queue_length) samples, recorded when ``trace_enabled``
        self.length_trace: list[tuple[float, int]] = []
        self.trace_enabled = False

    def observe_queue(self, now: float, length: int) -> None:
        if length > self.max_queue_length:
            self.max_queue_length = length
        if self.trace_enabled:
            self.length_trace.append((now, length))


class Scheduler(abc.ABC):
    """Abstract batch scheduler bound to one cluster.

    Parameters
    ----------
    sim:
        The shared simulator.
    cluster:
        The cluster whose nodes this scheduler allocates.
    """

    #: short algorithm name, e.g. ``"easy"``; set by subclasses
    algorithm: str = "abstract"

    def __init__(self, sim: Simulator, cluster: Cluster) -> None:
        self.sim = sim
        self.cluster = cluster
        self.queue: list[Request] = []   # pending requests, submit order
        self.running: list[Request] = []
        self.stats = QueueStats()
        #: scheduler daemon availability (see :meth:`go_down`)
        self.down = False
        #: optional lifecycle-event recorder (``None`` = tracing off;
        #: see :mod:`repro.obs.trace`)
        self.tracer = None
        #: optional invariant auditor (``None`` = auditing off; see
        #: :mod:`repro.sanitize.auditor`) — same zero-overhead hook
        #: discipline as ``tracer``
        self.auditor = None
        self._start_callbacks: list[StartCallback] = []
        self._pass_pending = False
        self._pending_count = 0
        # Conservative lower bound on the smallest pending node count.
        # Starts/cancels can only raise the true minimum, so the cached
        # bound stays valid (it may trigger a useless pass, never skip a
        # useful one).  Tightened whenever a full pass finds nothing.
        self._min_nodes_lb = 1

    # -- callbacks -------------------------------------------------------

    def add_start_callback(self, cb: StartCallback) -> None:
        """Register ``cb(request, time)`` invoked whenever a request starts."""
        self._start_callbacks.append(cb)

    # -- tracing ---------------------------------------------------------

    def _emit(self, etype: str, request: "Request | None" = None) -> None:
        """Record one lifecycle event (callers have checked ``tracer``)."""
        if request is None:
            self.tracer.emit(self.sim.now, etype, self.cluster.index)
        else:
            self.tracer.emit(
                self.sim.now,
                etype,
                self.cluster.index,
                request.request_id,
                getattr(request.group, "job_id", -1),
            )

    # -- public API ------------------------------------------------------

    @property
    def name(self) -> str:
        return f"{self.algorithm}@{self.cluster.name}"

    @property
    def queue_length(self) -> int:
        """Number of pending requests."""
        return self._pending_count

    def pending_requests(self) -> list[Request]:
        """Pending requests in submission order."""
        return [r for r in self.queue if r.is_pending]

    def submit(self, request: Request) -> None:
        """Enqueue ``request`` at the current simulated time."""
        if self.down:
            raise SchedulerDownError(
                f"{self.name}: scheduler is down, submission rejected"
            )
        if request.state is not RequestState.CREATED:
            raise SchedulerError(
                f"request {request.request_id} resubmitted (state={request.state})"
            )
        if not self.cluster.can_ever_fit(request.nodes):
            raise SchedulerError(
                f"{self.name}: request for {request.nodes} nodes can never run "
                f"on {self.cluster.total_nodes} nodes"
            )
        request.state = RequestState.PENDING
        request.cluster = self
        request.submitted_at = self.sim.now
        self.queue.append(request)
        self._pending_count += 1
        self._min_nodes_lb = min(self._min_nodes_lb, request.nodes)
        self.stats.submitted += 1
        self.stats.observe_queue(self.sim.now, self._pending_count)
        if self.tracer is not None:
            self._emit("queue", request)
        self._on_submit(request)
        if self.auditor is not None:
            self.auditor.after_submit(self, request)
        self._request_pass()

    def cancel(self, request: Request, force: bool = False) -> None:
        """Remove a pending request from the queue.

        Only pending requests may be cancelled: the redundancy protocol
        cancels siblings the instant one copy starts, so a running copy
        is never a cancellation target.

        ``force`` bypasses the downed-daemon rejection — used for
        end-of-run bookkeeping (an operator purge outside the measured
        window), never for in-simulation cancellations.
        """
        if self.down and not force:
            raise SchedulerDownError(
                f"{self.name}: scheduler is down, cancellation lost"
            )
        if request.cluster is not self:
            raise SchedulerError(
                f"request {request.request_id} does not belong to {self.name}"
            )
        if request.state is not RequestState.PENDING:
            raise SchedulerError(
                f"cannot cancel request {request.request_id} in state "
                f"{request.state.value}"
            )
        request.state = RequestState.CANCELLED
        request.cancelled_at = self.sim.now
        self._pending_count -= 1
        self.stats.cancelled += 1
        self._maybe_compact()
        self.stats.observe_queue(self.sim.now, self._pending_count)
        if self.tracer is not None:
            self._emit("cancel_applied", request)
        self._on_cancel(request)
        if self.auditor is not None:
            self.auditor.after_cancel(self, request)
        self._request_pass()

    # -- outages -----------------------------------------------------------

    def go_down(self, drop_queue: bool = False) -> list[Request]:
        """Take the scheduler daemon down.

        While down, :meth:`submit` and :meth:`cancel` raise
        :class:`SchedulerDownError` and scheduling passes are suspended;
        running requests keep executing and finish normally.  With
        ``drop_queue`` every pending request is lost (the crashed-server
        scenario) and returned so the coordinator can resubmit or
        abandon the affected copies.
        """
        if self.down:
            raise SchedulerError(f"{self.name}: scheduler is already down")
        self.down = True
        if self.tracer is not None:
            self._emit("outage_down")
        if self.auditor is not None:
            self.auditor.note_outage(self)
        dropped: list[Request] = []
        if drop_queue:
            for request in self.queue:
                if request.is_pending:
                    request.state = RequestState.CANCELLED
                    request.cancelled_at = self.sim.now
                    dropped.append(request)
                    if self.tracer is not None:
                        self._emit("cancel_applied", request)
                    # Route through the cancel hook so subclasses release
                    # per-request state (CBF reservations/profile windows).
                    self._on_cancel(request)
                    if self.auditor is not None:
                        self.auditor.after_cancel(self, request)
            self.queue = []
            self._pending_count = 0
            self.stats.dropped += len(dropped)
            self.stats.observe_queue(self.sim.now, 0)
        return dropped

    def come_up(self) -> None:
        """Bring the scheduler daemon back; resume scheduling."""
        if not self.down:
            raise SchedulerError(f"{self.name}: scheduler is not down")
        self.down = False
        if self.tracer is not None:
            self._emit("outage_up")
        self._request_pass()

    # -- subclass hooks ----------------------------------------------------

    def _on_submit(self, request: Request) -> None:
        """Called after a request joins the queue (before the pass)."""

    def _on_cancel(self, request: Request) -> None:
        """Called after a request leaves the queue (before the pass)."""

    def _on_finish(self, request: Request) -> None:
        """Called after a request completes (before the pass)."""

    @abc.abstractmethod
    def _schedule_pass(self) -> None:
        """Start requests according to the algorithm."""

    # -- internal machinery ------------------------------------------------

    def _maybe_compact(self) -> None:
        if len(self.queue) - self._pending_count > _COMPACT_SLACK:
            self._compact_queue()

    def _compact_queue(self) -> None:
        # Direct state check: this comprehension runs over thousands of
        # entries per pass under overload (see the class docstring).
        pending = RequestState.PENDING
        self.queue = [r for r in self.queue if r.state is pending]

    def _start_possible(self) -> bool:
        """O(1) guard: could the algorithm possibly start anything now?

        All three algorithms only start requests that fit in the free
        nodes right now, so ``free < min pending nodes`` rules a start
        out.  Uses the conservative cached bound (see class docstring).
        """
        if self._pending_count == 0:
            return False
        return self.cluster.free_nodes >= self._min_nodes_lb

    def _tighten_min_nodes(self) -> None:
        """Recompute the exact smallest pending node count (O(queue))."""
        state = RequestState.PENDING
        pending = [r.nodes for r in self.queue if r.state is state]
        self._min_nodes_lb = min(pending) if pending else self.cluster.total_nodes + 1

    def _request_pass(self) -> None:
        """Coalesce all same-instant state changes into one pass."""
        if not self._pass_pending:
            self._pass_pending = True
            self.sim.at(self.sim.now, self._run_pass, EventPriority.SCHEDULE)

    def _run_pass(self) -> None:
        self._pass_pending = False
        if self.down:
            # A downed daemon starts nothing; come_up() requests a
            # fresh pass, so suppressed passes are never lost.
            return
        if not self._start_possible():
            return
        before = self.stats.started
        self._schedule_pass()
        if self.stats.started == before:
            # Nothing started: tighten the guard so the next no-op
            # instants are skipped in O(1).
            self._tighten_min_nodes()
        if self.auditor is not None:
            self.auditor.after_pass(self)
        self.stats.observe_queue(self.sim.now, self._pending_count)

    def _start(self, request: Request) -> None:
        """Allocate nodes and begin executing ``request`` now.

        The caller must already have removed ``request`` from
        ``self.queue`` (or be iterating with state checks).
        """
        if request.state is not RequestState.PENDING:
            raise SchedulerError(
                f"starting request {request.request_id} in state {request.state}"
            )
        self.cluster.allocate(request.nodes)
        request.state = RequestState.RUNNING
        request.start_time = self.sim.now
        self._pending_count -= 1
        self.running.append(request)
        self.stats.started += 1
        if self.tracer is not None:
            self._emit("start", request)
        if self.auditor is not None:
            self.auditor.after_start(self, request)
        self.sim.at(
            self.sim.now + request.runtime,
            partial(self._finish, request),
            EventPriority.FINISH,
        )
        # Notify listeners last: the coordinator's sibling-cancellation
        # may reentrantly mutate *other* schedulers and mark requests in
        # our own queue cancelled (handled by state checks in passes).
        for cb in self._start_callbacks:
            cb(request, self.sim.now)

    def _finish(self, request: Request) -> None:
        if request.state is not RequestState.RUNNING:  # pragma: no cover
            raise SchedulerError(
                f"finishing request {request.request_id} in state {request.state}"
            )
        request.state = RequestState.COMPLETED
        request.end_time = self.sim.now
        self.running.remove(request)
        self.cluster.release(request.nodes)
        self.stats.completed += 1
        if self.tracer is not None:
            self._emit("complete", request)
        self._on_finish(request)
        if self.auditor is not None:
            self.auditor.after_finish(self, request)
        self._request_pass()

    # -- invariants (exercised heavily by tests) -----------------------------

    def check_invariants(self) -> None:
        """Assert node accounting and state consistency."""
        busy = sum(r.nodes for r in self.running)
        assert busy == self.cluster.busy_nodes, (
            f"{self.name}: running jobs hold {busy} nodes but cluster says "
            f"{self.cluster.busy_nodes}"
        )
        assert all(r.state is RequestState.RUNNING for r in self.running)
        # The queue list may hold stale (started/cancelled) entries
        # awaiting lazy compaction, but never CREATED ones.
        assert all(r.state is not RequestState.CREATED for r in self.queue)
        assert self._pending_count == sum(1 for r in self.queue if r.is_pending)
        pending_nodes = [r.nodes for r in self.queue if r.is_pending]
        if pending_nodes:
            assert self._min_nodes_lb <= min(pending_nodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}({self.cluster.name}, "
            f"queue={self.queue_length}, running={len(self.running)})"
        )


def expected_releases(running: Iterable[Request]) -> list[tuple[float, int]]:
    """``(expected_end, nodes)`` pairs for profile construction."""
    return [(r.expected_end, r.nodes) for r in running]
