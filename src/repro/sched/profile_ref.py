"""Pure-Python reference implementation of the availability profile.

This is the original list-plus-``bisect`` :class:`Profile` kept verbatim
as a *differential reference* for the vectorised numpy implementation in
:mod:`repro.sched.profile`.  The property suite in
``tests/sched/test_profile_properties.py`` drives both implementations
through identical operation interleavings and asserts exact agreement —
results, raised errors, and resulting step functions — so any shortcut
taken by the array version is checked against first principles.

Not used on any hot path; schedulers always use
:class:`repro.sched.profile.Profile`.
"""

from __future__ import annotations

import bisect
import math
from typing import Iterable, Optional, Tuple

from .profile import ProfileError

__all__ = ["ReferenceProfile"]


class ReferenceProfile:
    """Step function of free nodes over ``[origin, inf)`` (list-backed).

    Parameters
    ----------
    origin:
        Left edge of the horizon (usually the current simulated time).
    free_now:
        Free nodes at the origin.
    total_nodes:
        Capacity bound; availability must stay within ``[0, total]``.
    """

    __slots__ = ("times", "free", "total_nodes")

    def __init__(self, origin: float, free_now: int, total_nodes: int) -> None:
        if not 0 <= free_now <= total_nodes:
            raise ValueError(f"free_now={free_now} outside [0, {total_nodes}]")
        self.times: list[float] = [float(origin)]
        self.free: list[int] = [int(free_now)]
        self.total_nodes = int(total_nodes)

    # -- construction ----------------------------------------------------

    @classmethod
    def from_running(
        cls,
        now: float,
        total_nodes: int,
        running: Iterable[Tuple[float, int]],
    ) -> "ReferenceProfile":
        """Build the profile implied by running requests."""
        busy = 0
        releases = []
        for end, nodes in running:
            busy += nodes
            releases.append((end, nodes))
        if busy > total_nodes:
            raise ProfileError(f"running jobs hold {busy} > {total_nodes} nodes")
        prof = cls(now, total_nodes - busy, total_nodes)
        for end, nodes in releases:
            prof.adjust(max(end, now), math.inf, nodes)
        return prof

    # -- mutation --------------------------------------------------------

    def adjust(self, start: float, end: float, delta: int) -> None:
        """Add ``delta`` free nodes over ``[start, end)`` (``end`` may be inf)."""
        if end <= start:
            raise ValueError(f"empty window [{start}, {end})")
        if delta == 0:
            return
        times, free = self.times, self.free
        n = len(times)
        i = bisect.bisect_right(times, start) - 1
        if i < 0:
            raise ProfileError(
                f"time {start} precedes profile origin {times[0]}"
            )
        finite = math.isfinite(end)
        if finite:
            # Segment containing ``end``; j >= i because end > start.
            j = bisect.bisect_right(times, end, lo=i) - 1
            split_end = times[j] != end
            hi = j if split_end else j - 1
        else:
            j = n - 1
            split_end = False
            hi = n - 1
        split_start = times[i] != start

        # Validate the whole window first — failure leaves no trace.
        total = self.total_nodes
        for k in range(i, hi + 1):
            nf = free[k] + delta
            if not 0 <= nf <= total:
                raise ProfileError(
                    f"adjust({start}, {end}, {delta:+d}) drives availability "
                    f"to {nf} at t={max(times[k], start)} (capacity {total})"
                )

        if not split_start and not split_end:
            # Fast path: boundaries already exist, adjust in place.
            for k in range(i, hi + 1):
                free[k] += delta
            return

        # One splice covering segments i..hi, inserting the (at most
        # two) new breakpoints along the way.
        new_times: list[float] = []
        new_free: list[int] = []
        if split_start:
            new_times.append(times[i])
            new_free.append(free[i])
            new_times.append(start)
        else:
            new_times.append(times[i])
        new_free.append(free[i] + delta)
        for k in range(i + 1, hi + 1):
            new_times.append(times[k])
            new_free.append(free[k] + delta)
        if split_end:
            new_times.append(end)
            new_free.append(free[j])
        times[i:hi + 1] = new_times
        free[i:hi + 1] = new_free

    def reserve(self, start: float, duration: float, nodes: int) -> None:
        """Subtract ``nodes`` over ``[start, start + duration)``."""
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        if nodes <= 0:
            raise ValueError(f"nodes must be positive, got {nodes}")
        self.adjust(start, start + duration, -nodes)

    def release_window(self, start: float, end: float, nodes: int) -> None:
        """Give back ``nodes`` over ``[start, end)`` (undo part of a hold)."""
        if nodes <= 0:
            raise ValueError(f"nodes must be positive, got {nodes}")
        self.adjust(start, end, nodes)

    def trim(self, t: float) -> None:
        """Drop breakpoints strictly before ``t``; new origin becomes ``t``."""
        i = bisect.bisect_right(self.times, t) - 1
        if i <= 0:
            return
        self.times = [t] + self.times[i + 1:]
        self.free = self.free[i:]

    # -- queries ---------------------------------------------------------

    def free_at(self, t: float) -> int:
        """Free nodes at time ``t`` (t >= origin)."""
        i = bisect.bisect_right(self.times, t) - 1
        if i < 0:
            raise ProfileError(f"time {t} precedes profile origin {self.times[0]}")
        return self.free[i]

    def can_place(
        self,
        start: float,
        duration: float,
        nodes: int,
        bonus: Optional[Tuple[float, float, int]] = None,
    ) -> bool:
        """Whether ``nodes`` nodes are free throughout the window."""
        end = start + duration
        i = bisect.bisect_right(self.times, start) - 1
        if i < 0:
            raise ProfileError(f"time {start} precedes profile origin")
        n = len(self.times)
        j = i
        while j < n and (j == i or self.times[j] < end):
            seg_start = start if j == i else self.times[j]
            seg_end = self.times[j + 1] if j + 1 < n else math.inf
            win_end = seg_end if seg_end < end else end
            if self.free[j] < nodes:
                if bonus is None:
                    return False
                b_start, b_end, b_nodes = bonus
                if b_start > seg_start or b_end < win_end:
                    return False
                if self.free[j] + b_nodes < nodes:
                    return False
            j += 1
        return True

    def find_start(self, nodes: int, duration: float, earliest: float) -> float:
        """Earliest ``t >= earliest`` with ``nodes`` free throughout
        ``[t, t + duration)``.
        """
        if nodes > self.total_nodes:
            raise ProfileError(
                f"request for {nodes} nodes can never fit in {self.total_nodes}"
            )
        if nodes <= 0:
            raise ValueError(f"nodes must be positive, got {nodes}")
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        times, free = self.times, self.free
        earliest = max(earliest, times[0])
        n = len(times)
        start_idx = bisect.bisect_right(times, earliest) - 1
        i = start_idx
        while i < n:
            if free[i] >= nodes:
                t = earliest if i == start_idx else times[i]
                end = t + duration
                ok = True
                j = i + 1
                while j < n and times[j] < end:
                    if free[j] < nodes:
                        ok = False
                        break
                    j += 1
                if ok:
                    return t
                # Restart the search after the blocking segment.
                i = j
            else:
                i += 1
        raise ProfileError(
            f"no feasible start for {nodes} nodes x {duration}s; the profile "
            "tail should always be feasible (capacity leak?)"
        )

    def segments(self) -> list[Tuple[float, int]]:
        """Return ``(time, free)`` breakpoints (copy, for inspection)."""
        return list(zip(self.times, self.free))

    def check_invariants(self) -> None:
        """Verify representation invariants; raise on any breakage."""
        if len(self.times) != len(self.free):
            raise ProfileError(
                f"times/free length mismatch: {len(self.times)} != "
                f"{len(self.free)}"
            )
        for a, b in zip(self.times, self.times[1:]):
            if not a < b:
                raise ProfileError(
                    f"breakpoints not strictly increasing: {a} >= {b}"
                )
        for t, f in zip(self.times, self.free):
            if not 0 <= f <= self.total_nodes:
                raise ProfileError(
                    f"availability {f} at t={t} outside "
                    f"[0, {self.total_nodes}]"
                )

    def __len__(self) -> int:
        return len(self.times)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        segs = ", ".join(f"{t:.1f}:{f}" for t, f in self.segments()[:8])
        return f"ReferenceProfile[{segs}{'...' if len(self.times) > 8 else ''}]"
