"""Benchmark tooling: profiling harness and bench-artifact comparison.

``repro bench`` times the sweep engine; this package adds the two
companion tools the bench *trajectory* workflow needs:

* :mod:`repro.bench.profiling` — run a sweep under :mod:`cProfile` with
  per-phase (generate/simulate/aggregate) wall-clock attribution, so a
  regression can be localised before anyone stares at flamegraphs;
* :mod:`repro.bench.compare` — diff two ``repro bench --json`` payloads
  benchmark-by-benchmark and fail loudly on regressions, which is what
  CI runs against the checked-in ``BENCH_*.json`` trajectory.
"""

from .compare import (
    REGRESSION_THRESHOLD,
    BenchComparison,
    compare_payloads,
    load_bench_payload,
)
from .profiling import ProfileReport, profile_sweep

__all__ = [
    "REGRESSION_THRESHOLD",
    "BenchComparison",
    "ProfileReport",
    "compare_payloads",
    "load_bench_payload",
    "profile_sweep",
]
