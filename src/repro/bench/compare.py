"""Compare two ``repro bench --json`` payloads benchmark-by-benchmark.

The checked-in bench trajectory (``BENCH_*.json`` at the repo root)
records a before/after pair per optimisation PR.  ``repro bench
--compare OLD NEW`` diffs any two payloads — raw ``--json`` output or a
trajectory wrapper (its ``after`` half is used) — and exits non-zero
when any benchmark regressed by more than :data:`REGRESSION_THRESHOLD`,
so CI can hold the line without a human reading timing tables.

Timings are wall-clock and therefore noisy; the 20% default threshold
is deliberately loose enough to absorb machine variance while still
catching the order-of-magnitude mistakes (an accidentally quadratic
queue scan, a cache that stopped hitting).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Union

#: relative slowdown above which a benchmark counts as regressed
REGRESSION_THRESHOLD = 0.20


def load_bench_payload(path: Union[str, Path]) -> dict:
    """Load a bench payload from ``path``.

    Accepts either a raw ``repro bench --json`` payload (has
    ``timings_s``) or a trajectory wrapper with ``before``/``after``
    halves, in which case the ``after`` half is returned.
    """
    data = json.loads(Path(path).read_text())
    if isinstance(data, dict) and "timings_s" in data:
        return data
    if (
        isinstance(data, dict)
        and isinstance(data.get("after"), dict)
        and "timings_s" in data["after"]
    ):
        return data["after"]
    raise ValueError(
        f"{path}: not a bench payload (expected 'timings_s', or a "
        f"trajectory wrapper with an 'after' half)"
    )


@dataclass
class BenchComparison:
    """Per-benchmark deltas between two payloads."""

    threshold: float
    #: rows: name, old_s, new_s, ratio (new/old), regressed
    rows: list[dict] = field(default_factory=list)
    #: benchmarks present in only one payload (compared as nothing)
    missing: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[dict]:
        return [r for r in self.rows if r["regressed"]]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        lines = [
            f"  {'benchmark':<12} {'old':>9} {'new':>9} {'delta':>8}",
        ]
        for r in self.rows:
            delta = 100.0 * (r["ratio"] - 1.0)
            flag = "  << REGRESSION" if r["regressed"] else ""
            lines.append(
                f"  {r['name']:<12} {r['old_s']:8.2f}s {r['new_s']:8.2f}s "
                f"{delta:+7.1f}%{flag}"
            )
        for name in self.missing:
            lines.append(f"  {name:<12} (present in only one payload)")
        if self.ok:
            lines.append(
                f"OK: no benchmark regressed by more than "
                f"{100.0 * self.threshold:.0f}%"
            )
        else:
            names = ", ".join(r["name"] for r in self.regressions)
            lines.append(
                f"FAIL: {len(self.regressions)} benchmark(s) regressed by "
                f"more than {100.0 * self.threshold:.0f}%: {names}"
            )
        return "\n".join(lines)


def compare_payloads(
    old: dict, new: dict, threshold: float = REGRESSION_THRESHOLD
) -> BenchComparison:
    """Diff the ``timings_s`` of two payloads.

    A benchmark regresses when ``new > old * (1 + threshold)``.
    Benchmarks appearing in only one payload are reported but never
    fail the comparison (grids legitimately gain and lose entries).
    """
    old_t = old.get("timings_s", {})
    new_t = new.get("timings_s", {})
    comparison = BenchComparison(threshold=threshold)
    for name in sorted(old_t.keys() | new_t.keys()):
        if name not in old_t or name not in new_t:
            comparison.missing.append(name)
            continue
        old_s, new_s = float(old_t[name]), float(new_t[name])
        ratio = new_s / old_s if old_s > 0 else float("inf")
        comparison.rows.append(
            {
                "name": name,
                "old_s": old_s,
                "new_s": new_s,
                "ratio": ratio,
                "regressed": new_s > old_s * (1.0 + threshold),
            }
        )
    return comparison
