"""Profiling harness: where does a sweep actually spend its time?

Runs a serial sweep under :mod:`cProfile` while accumulating the
per-replication phase timings (``generate_s`` / ``simulate_s`` /
``aggregate_s``) that :func:`repro.core.experiment.run_single` already
stamps on every result.  The combination answers the two questions a
perf investigation starts with:

* **which phase** — the phase attribution table says whether workload
  generation, the event loop, or result aggregation moved;
* **which function** — the cProfile top list (by cumulative time) then
  localises the change inside that phase.

Host timing clocks are used deliberately throughout: this module
measures the *host* cost of simulating, never simulated behaviour, and
none of its outputs feed back into a trajectory.  It is allowlisted for
the DET001 timing-clock ban for exactly that reason (see
``repro.lint.rules.determinism.TIMING_BLESSED_MODULES``).
"""

from __future__ import annotations

import cProfile
import pstats
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..core.config import ExperimentConfig
from ..core.experiment import run_single

#: phase keys stamped by run_single, in pipeline order
PHASE_KEYS = ("generate_s", "simulate_s", "aggregate_s")


@dataclass
class ProfileReport:
    """Phase attribution plus cProfile hot spots for one profiled sweep."""

    total_s: float
    n_simulations: int
    #: summed per-phase wall-clock over every simulation
    phases: dict[str, float] = field(default_factory=dict)
    #: per-scheme summed wall-clock (``wall_time_s`` of each result)
    per_scheme: dict[str, float] = field(default_factory=dict)
    #: cProfile rows sorted by cumulative time, repo-relative paths
    hotspots: list[dict] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "total_s": self.total_s,
            "n_simulations": self.n_simulations,
            "phases_s": dict(self.phases),
            "per_scheme_s": dict(self.per_scheme),
            "hotspots": list(self.hotspots),
        }

    def render(self) -> str:
        lines = [
            f"profiled {self.n_simulations} simulations in {self.total_s:.2f}s",
            "",
            "phase attribution (summed over simulations):",
        ]
        phase_total = sum(self.phases.values()) or 1.0
        for key in PHASE_KEYS:
            v = self.phases.get(key, 0.0)
            lines.append(
                f"  {key:<12} {v:8.3f}s  {100.0 * v / phase_total:5.1f}%"
            )
        lines.append("")
        lines.append("per-scheme wall clock:")
        for scheme, v in self.per_scheme.items():
            lines.append(f"  {scheme:<6} {v:8.3f}s")
        lines.append("")
        lines.append(
            f"hottest functions (cumulative, top {len(self.hotspots)}):"
        )
        lines.append(
            f"  {'cumtime':>8} {'tottime':>8} {'ncalls':>9}  function"
        )
        for row in self.hotspots:
            lines.append(
                f"  {row['cumtime_s']:8.3f} {row['tottime_s']:8.3f} "
                f"{row['ncalls']:9d}  {row['function']} "
                f"({row['file']}:{row['line']})"
            )
        return "\n".join(lines)


def _shorten(path: str) -> str:
    """Strip everything before the package root for readable rows."""
    for marker in ("/repro/", "\\repro\\"):
        if marker in path:
            return "repro/" + path.split(marker, 1)[1]
    return path.rsplit("/", 1)[-1]


def extract_hotspots(
    stats: pstats.Stats, top: int, *, package_only: bool = False
) -> list[dict]:
    """Flatten a :class:`pstats.Stats` into rows sorted by cumulative time.

    ``package_only`` keeps only frames inside the ``repro`` package —
    useful when the builtin/stdlib noise would crowd out the simulator.
    """
    rows = []
    for (path, line, name), (cc, nc, tt, ct, _callers) in stats.stats.items():
        short = _shorten(path)
        if package_only and not short.startswith("repro/"):
            continue
        rows.append(
            {
                "function": name,
                "file": short,
                "line": line,
                "ncalls": int(nc),
                "tottime_s": round(tt, 6),
                "cumtime_s": round(ct, 6),
            }
        )
    rows.sort(key=lambda r: (-r["cumtime_s"], r["file"], r["line"]))
    return rows[:top]


def profile_sweep(
    config: ExperimentConfig,
    schemes: Sequence[str],
    replications: int,
    top: int = 20,
    *,
    package_only: bool = True,
    profiler: Optional[cProfile.Profile] = None,
) -> ProfileReport:
    """Run ``schemes x replications`` serially under cProfile.

    The sweep itself is the plain serial path (no cache, no worker
    processes) so the profile reflects the simulation kernel rather
    than IPC; cProfile overhead inflates absolute numbers roughly
    uniformly, so *relative* attribution stays meaningful.
    """
    prof = profiler if profiler is not None else cProfile.Profile()
    phases = {key: 0.0 for key in PHASE_KEYS}
    per_scheme: dict[str, float] = {}
    n = 0
    t0 = time.perf_counter()
    prof.enable()
    try:
        for scheme in schemes:
            cfg = config.with_(scheme=scheme)
            for rep in range(replications):
                result = run_single(cfg, replication=rep)
                n += 1
                per_scheme[scheme] = (
                    per_scheme.get(scheme, 0.0) + result.wall_time_s
                )
                for key in PHASE_KEYS:
                    phases[key] += result.phase_timings.get(key, 0.0)
    finally:
        prof.disable()
    total = time.perf_counter() - t0
    stats = pstats.Stats(prof)
    return ProfileReport(
        total_s=total,
        n_simulations=n,
        phases=phases,
        per_scheme=per_scheme,
        hotspots=extract_hotspots(stats, top, package_only=package_only),
    )
