"""Binomial-method quantile predictor (Brevik, Nurmi & Wolski, PPoPP'06).

The paper's Section 5/6 points to statistical wait-time forecasting as
the promising alternative to state-based CBF predictions and asks — as
future work — how redundancy-induced churn affects it.  This module
implements the binomial method and the evaluation answering that
question (see ``repro.ext`` benches).

Method: to bound the q-quantile of queue waiting time with confidence
c from the last n observed waits, find the smallest order statistic
index k such that ``P[Binomial(n, q) < k] >= c``; the k-th smallest
observed wait is then an upper bound on the q-quantile with confidence
at least c.  No distributional assumptions are needed beyond
exchangeability of the recent history.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np
from scipy import stats as sps


def binomial_bound_index(n: int, quantile: float, confidence: float) -> Optional[int]:
    """Smallest k (1-based) with ``P[Binomial(n, q) < k] >= c``.

    Returns ``None`` when even the largest order statistic gives
    insufficient confidence (history too short).
    """
    if n < 1:
        return None
    if not 0.0 < quantile < 1.0:
        raise ValueError(f"quantile must be in (0,1), got {quantile}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0,1), got {confidence}")
    # P[Binomial(n, q) < k] = cdf(k - 1); find smallest such k <= n.
    ks = np.arange(1, n + 1)
    cdf = sps.binom.cdf(ks - 1, n, quantile)
    feasible = np.nonzero(cdf >= confidence)[0]
    if feasible.size == 0:
        return None
    return int(ks[feasible[0]])


@dataclass
class BinomialQuantilePredictor:
    """Rolling-history upper-bound predictor for queue waiting times.

    Parameters
    ----------
    quantile:
        The wait-time quantile to bound (e.g. 0.95).
    confidence:
        Desired confidence that the bound covers the true quantile.
    window:
        Number of most recent completed-job waits retained.
    """

    quantile: float = 0.95
    confidence: float = 0.95
    window: int = 200

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        self._history: list[float] = []

    def observe(self, wait: float) -> None:
        """Record a completed job's wait time."""
        if wait < 0:
            raise ValueError(f"wait must be >= 0, got {wait}")
        self._history.append(wait)
        if len(self._history) > self.window:
            del self._history[: len(self._history) - self.window]

    def predict(self) -> Optional[float]:
        """Upper bound on the wait-time quantile, or None if not enough data."""
        n = len(self._history)
        k = binomial_bound_index(n, self.quantile, self.confidence)
        if k is None:
            return None
        return float(np.partition(np.asarray(self._history), k - 1)[k - 1])

    @property
    def history_length(self) -> int:
        return len(self._history)


@dataclass(frozen=True)
class CoverageReport:
    """How well the bound covered subsequent waits."""

    n_predictions: int
    coverage: float            # fraction of waits <= predicted bound
    mean_bound: float
    mean_wait: float

    @property
    def overestimation(self) -> float:
        """Mean bound / mean wait (how loose the bound is)."""
        if self.mean_wait == 0:
            return float("nan")
        return self.mean_bound / self.mean_wait


def evaluate_predictor(
    waits_in_completion_order: Sequence[float],
    quantile: float = 0.95,
    confidence: float = 0.95,
    window: int = 200,
) -> CoverageReport:
    """Feed waits through the predictor, predicting before each observation.

    For a well-calibrated predictor, ``coverage`` should be close to (or
    above) ``quantile``; redundancy-induced churn would show up as a
    coverage drop.
    """
    predictor = BinomialQuantilePredictor(quantile, confidence, window)
    bounds, outcomes = [], []
    for wait in waits_in_completion_order:
        bound = predictor.predict()
        if bound is not None:
            bounds.append(bound)
            outcomes.append(wait)
        predictor.observe(wait)
    if not bounds:
        return CoverageReport(0, float("nan"), float("nan"), float("nan"))
    bounds_arr = np.asarray(bounds)
    waits_arr = np.asarray(outcomes)
    return CoverageReport(
        n_predictions=len(bounds),
        coverage=float((waits_arr <= bounds_arr).mean()),
        mean_bound=float(bounds_arr.mean()),
        mean_wait=float(waits_arr.mean()),
    )
