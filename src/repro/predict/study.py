"""The Table 4 experiment: how redundancy degrades wait-time predictions.

Protocol (paper Section 5): N = 10 clusters, all running CBF, real
(φ-model) runtime estimates.  Left column: no redundant requests at
all.  Right columns: 40 % of jobs use the ALL scheme; jobs not using
redundancy and jobs using it are reported separately, the latter with
the min-over-copies prediction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.config import ExperimentConfig
from ..core.experiment import run_single
from .stats import OverestimationStats, prediction_ratios


@dataclass(frozen=True)
class Table4Row:
    """One measured condition of Table 4."""

    label: str
    stats: OverestimationStats


@dataclass(frozen=True)
class Table4Result:
    """The three populations the paper's Table 4 reports."""

    baseline: Table4Row          # 0 % redundancy, all jobs (local prediction)
    non_redundant: Table4Row     # 40 % ALL, jobs not using redundancy
    redundant: Table4Row         # 40 % ALL, jobs using redundancy (min pred.)
    n_replications: int

    def rows(self) -> list[Table4Row]:
        return [self.baseline, self.non_redundant, self.redundant]

    @property
    def degradation_non_redundant(self) -> float:
        """How much worse over-prediction got for non-redundant users
        (paper: ≈8×)."""
        return self.non_redundant.stats.mean_ratio / self.baseline.stats.mean_ratio

    @property
    def degradation_redundant(self) -> float:
        """Same for redundant users (paper: ≈4×)."""
        return self.redundant.stats.mean_ratio / self.baseline.stats.mean_ratio


def run_table4_study(
    n_clusters: int = 10,
    duration: float = 3600.0,
    offered_load: float = 2.0,
    adoption: float = 0.4,
    scheme: str = "ALL",
    estimates: str = "phi",
    n_replications: int = 5,
    seed: int = 0,
    min_wait: float = 1.0,
) -> Table4Result:
    """Run the two conditions on paired streams and pool ratios over
    replications."""
    base = ExperimentConfig(
        n_clusters=n_clusters,
        duration=duration,
        offered_load=offered_load,
        drain=True,
        algorithm="cbf",
        estimates=estimates,
        seed=seed,
    )
    ratios_baseline, ratios_nr, ratios_r = [], [], []
    for rep in range(n_replications):
        r0 = run_single(base.with_(scheme="NONE"), rep)
        ratios_baseline.append(prediction_ratios(r0.jobs, "local", min_wait))
        r40 = run_single(
            base.with_(scheme=scheme, adoption_probability=adoption), rep
        )
        nr_jobs = [j for j in r40.jobs if not j.uses_redundancy]
        r_jobs = [j for j in r40.jobs if j.uses_redundancy]
        ratios_nr.append(prediction_ratios(nr_jobs, "local", min_wait))
        ratios_r.append(prediction_ratios(r_jobs, "min", min_wait))
    return Table4Result(
        baseline=Table4Row(
            "0% jobs using redundant requests",
            OverestimationStats.of(np.concatenate(ratios_baseline)),
        ),
        non_redundant=Table4Row(
            f"{adoption:.0%} using ({scheme}): jobs not using",
            OverestimationStats.of(np.concatenate(ratios_nr)),
        ),
        redundant=Table4Row(
            f"{adoption:.0%} using ({scheme}): jobs using",
            OverestimationStats.of(np.concatenate(ratios_r)),
        ),
        n_replications=n_replications,
    )
