"""Queue-waiting-time prediction accuracy statistics (Table 4).

The predictor under evaluation is the CBF reservation: at submission,
conservative backfilling assigns every request a guaranteed start time,
and ``predicted wait = reserved start − submit time``.  For a job with
redundant requests, the natural user-side prediction is the *minimum*
over its copies' predictions (the paper, Section 5).

The paper reports the average and coefficient of variation of the
ratio ``predicted wait / effective wait`` across jobs.  Because CBF
plans with requested times that over-estimate actual runtimes ~2.16×
on average, and because cancellations/early completions compress the
schedule after the prediction is made, this ratio lands far above 1.

Jobs that start immediately (effective wait below ``min_wait``) are
excluded: their ratio is 0/0 and they carry no information about
prediction quality.  The paper does not state its handling; this is
the conventional choice and is recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Literal, Optional

import numpy as np

from ..core.results import JobOutcome

PredictionKind = Literal["local", "min"]


@dataclass(frozen=True)
class OverestimationStats:
    """Aggregate prediction-accuracy statistics over a job population."""

    count: int
    mean_ratio: float
    cv_percent: float
    median_ratio: float

    @classmethod
    def of(cls, ratios: np.ndarray) -> "OverestimationStats":
        if ratios.size == 0:
            return cls(0, float("nan"), float("nan"), float("nan"))
        mean = float(ratios.mean())
        cv = 100.0 * float(ratios.std()) / mean if mean else float("nan")
        return cls(
            count=int(ratios.size),
            mean_ratio=mean,
            cv_percent=cv,
            median_ratio=float(np.median(ratios)),
        )


def prediction_ratios(
    jobs: Iterable[JobOutcome],
    kind: PredictionKind = "local",
    min_wait: float = 1.0,
) -> np.ndarray:
    """Per-job ``predicted / effective`` wait ratios.

    ``kind="local"`` uses the local cluster's CBF reservation (the view
    of a user not using redundancy); ``kind="min"`` uses the minimum
    over all copies (the view of a redundant user).  Jobs without a
    prediction (non-CBF runs) or with effective wait < ``min_wait`` are
    skipped.
    """
    ratios = []
    for job in jobs:
        predicted: Optional[float]
        if kind == "local":
            predicted = job.predicted_wait_local
        elif kind == "min":
            predicted = job.predicted_wait_min
        else:
            raise ValueError(f"unknown prediction kind {kind!r}")
        if predicted is None:
            continue
        effective = job.wait_time
        if effective < min_wait:
            continue
        ratios.append(predicted / effective)
    return np.asarray(ratios, dtype=float)


def overestimation_stats(
    jobs: Iterable[JobOutcome],
    kind: PredictionKind = "local",
    min_wait: float = 1.0,
) -> OverestimationStats:
    """Table 4 statistics for one job population."""
    return OverestimationStats.of(prediction_ratios(jobs, kind, min_wait))
