"""Section 5: impact of redundant requests on queue-wait predictability."""

from .binomial import (
    BinomialQuantilePredictor,
    CoverageReport,
    binomial_bound_index,
    evaluate_predictor,
)
from .stats import OverestimationStats, overestimation_stats, prediction_ratios
from .study import Table4Result, Table4Row, run_table4_study

__all__ = [
    "OverestimationStats",
    "overestimation_stats",
    "prediction_ratios",
    "Table4Result",
    "Table4Row",
    "run_table4_study",
    "BinomialQuantilePredictor",
    "CoverageReport",
    "binomial_bound_index",
    "evaluate_predictor",
]
