"""Observability: event tracing, metrics, run manifests, logging.

The simulator's default posture is *silent speed*: nothing is recorded
beyond the final :class:`~repro.core.results.ExperimentResult`.  This
package adds the instrumentation layer on top — strictly opt-in, and a
strict no-op when disabled:

``repro.obs.trace``
    Typed per-request lifecycle events (``submit`` → ``queue`` →
    ``start`` → ``complete``, with the cancellation and outage paths in
    between), recorded by a :class:`TraceRecorder` hooked into the
    scheduler base and the coordinator, written to schema-versioned
    JSONL, bit-identical between serial and parallel sweeps.
``repro.obs.metrics``
    A counters/gauges/timings registry snapshotted per run and
    aggregated across sweeps into the ``repro bench --json`` payload.
``repro.obs.stream``
    O(1)-memory streaming statistics — Welford mean/variance and P²
    quantile estimators for stretch/wait/slowdown/wasted-work — updated
    at request completion inside the coordinator and merged across
    sweep workers with an exactly-associative reduction.
``repro.obs.probes``
    A deterministic sim-time probe sampler emitting schema-versioned
    JSONL time series of system state (queue depths, utilisation,
    outstanding duplicates, wasted node-seconds, kernel occupancy),
    byte-identical across worker counts.
``repro.obs.manifest``
    A run manifest (config fingerprints, RNG seed derivation, package
    version, platform, wall-clock) written alongside every traced
    sweep, so any result is reproducible from its artifact.
``repro.obs.chrome``
    Exporter from the JSONL trace to Chrome ``trace_event`` JSON for
    chrome://tracing / Perfetto visualisation.
``repro.obs.log``
    Structured ``logging`` setup shared by the CLI and the worker
    processes of the parallel sweep engine.
"""

from .chrome import export_chrome, probes_to_counter_trace, to_chrome_trace
from .log import get_logger, setup_logging, worker_log_level
from .manifest import MANIFEST_SCHEMA_VERSION, RunManifest, build_manifest
from .metrics import MetricsRegistry, aggregate_results, run_counters
from .probes import (
    DEFAULT_PROBE_CADENCE,
    PROBE_SCHEMA_VERSION,
    ProbeSampler,
    probe_series,
    read_probes,
    record_probe_sweep,
    run_single_probed,
    summarize_probes,
    write_probes,
)
from .stream import (
    ONLINE_SCHEMA_VERSION,
    MergedOnlineMetrics,
    OnlineMetrics,
    P2Quantile,
    WelfordAccumulator,
    merge_online_payloads,
)
from .trace import (
    EVENT_TYPES,
    TRACE_SCHEMA_VERSION,
    TraceRecorder,
    filter_events,
    read_trace,
    record_sweep,
    run_single_traced,
    summarize_trace,
    write_trace,
)

__all__ = [
    "EVENT_TYPES",
    "TRACE_SCHEMA_VERSION",
    "TraceRecorder",
    "filter_events",
    "read_trace",
    "record_sweep",
    "run_single_traced",
    "summarize_trace",
    "write_trace",
    "MetricsRegistry",
    "aggregate_results",
    "run_counters",
    "RunManifest",
    "build_manifest",
    "MANIFEST_SCHEMA_VERSION",
    "to_chrome_trace",
    "export_chrome",
    "probes_to_counter_trace",
    "ONLINE_SCHEMA_VERSION",
    "OnlineMetrics",
    "MergedOnlineMetrics",
    "P2Quantile",
    "WelfordAccumulator",
    "merge_online_payloads",
    "PROBE_SCHEMA_VERSION",
    "DEFAULT_PROBE_CADENCE",
    "ProbeSampler",
    "probe_series",
    "read_probes",
    "record_probe_sweep",
    "run_single_probed",
    "summarize_probes",
    "write_probes",
    "get_logger",
    "setup_logging",
    "worker_log_level",
]
