"""Export JSONL traces to Chrome ``trace_event`` JSON.

The output loads directly in chrome://tracing or https://ui.perfetto.dev:
each ``(config, replication, cluster)`` becomes a named process row,
each job a thread within it; a request's queued interval
(``queue`` → ``start``/``cancel_applied``) and running interval
(``start`` → ``complete``) become complete-events (``ph: "X"``), and
point-in-time protocol actions (``submit``, ``cancel_sent``,
``cancel_lost``, ``outage_down``, ``outage_up``) become instants
(``ph: "i"``).  Sim-time seconds map to trace microseconds.

The exporter is deterministic — identical input events produce
byte-identical JSON (a golden file in ``tests/obs/test_chrome.py``
locks the format).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Union

from .trace import TRACE_SCHEMA_VERSION

#: event types rendered as instants rather than folded into spans
_INSTANT_TYPES = (
    "submit",
    "cancel_sent",
    "cancel_lost",
    "winner_complete",
    "outage_down",
    "outage_up",
)


def _us(t: float) -> float:
    """Sim-time seconds to trace microseconds."""
    return t * 1_000_000.0


def to_chrome_trace(events: Iterable[dict]) -> dict:
    """Convert event records (see :mod:`repro.obs.trace`) to trace JSON."""
    trace_events: list[dict] = []
    #: (config, rep, cluster) -> pid, assigned in first-seen order
    pids: dict[tuple, int] = {}
    #: (config, rep, request) -> (queue_time, pid, tid, job)
    queued: dict[tuple, tuple] = {}
    #: (config, rep, request) -> (start_time, pid, tid, job)
    running: dict[tuple, tuple] = {}
    t_last = 0.0

    def pid_for(ev: dict) -> int:
        key = (ev.get("config", 0), ev.get("rep", 0), ev.get("cluster", -1))
        pid = pids.get(key)
        if pid is None:
            pid = pids[key] = len(pids) + 1
            trace_events.append({
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {
                    "name": (
                        f"cfg{key[0]} rep{key[1]} cluster{key[2]}"
                        + (f" [{ev['scheme']}]" if ev.get("scheme") else "")
                    )
                },
            })
        return pid

    def span(name: str, t0: float, t1: float, pid: int, tid: int,
             args: dict) -> None:
        trace_events.append({
            "name": name,
            "ph": "X",
            "ts": _us(t0),
            "dur": _us(max(0.0, t1 - t0)),
            "pid": pid,
            "tid": tid,
            "args": args,
        })

    for ev in events:
        etype = ev.get("type", "?")
        t = float(ev.get("t", 0.0))
        t_last = max(t_last, t)
        pid = pid_for(ev)
        job = ev.get("job", -1)
        request = ev.get("request", -1)
        tid = job if job >= 0 else 0
        key = (ev.get("config", 0), ev.get("rep", 0), request)
        args = {"request": request, "job": job}
        if ev.get("scheme"):
            args["scheme"] = ev["scheme"]

        if etype == "queue":
            queued[key] = (t, pid, tid, args)
        elif etype == "start":
            q = queued.pop(key, None)
            if q is not None:
                span(f"queued req {request}", q[0], t, q[1], q[2], q[3])
            running[key] = (t, pid, tid, args)
        elif etype == "cancel_applied":
            q = queued.pop(key, None)
            if q is not None:
                span(
                    f"queued req {request} (cancelled)",
                    q[0], t, q[1], q[2], {**q[3], "cancelled": True},
                )
            trace_events.append({
                "name": etype, "ph": "i", "ts": _us(t), "pid": pid,
                "tid": tid, "s": "t", "args": args,
            })
        elif etype == "complete":
            r = running.pop(key, None)
            if r is not None:
                span(f"running req {request}", r[0], t, r[1], r[2], r[3])
        elif etype in _INSTANT_TYPES:
            trace_events.append({
                "name": etype, "ph": "i", "ts": _us(t), "pid": pid,
                "tid": tid, "s": "t", "args": args,
            })
        # Unknown types are ignored: a newer trace may carry event kinds
        # this exporter predates, and a viewer artifact beats a crash.

    # Requests still queued or running when the trace ends: emit the
    # span up to the last observed instant, marked truncated.
    for key, (t0, pid, tid, args) in sorted(queued.items()):
        span(f"queued req {key[2]}", t0, t_last, pid, tid,
             {**args, "truncated": True})
    for key, (t0, pid, tid, args) in sorted(running.items()):
        span(f"running req {key[2]}", t0, t_last, pid, tid,
             {**args, "truncated": True})

    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs.chrome",
            "trace_schema": TRACE_SCHEMA_VERSION,
        },
    }


def export_chrome(
    events: Iterable[dict], path: Union[str, Path], indent: int = 2
) -> Path:
    """Write the Chrome trace JSON for ``events`` to ``path``."""
    path = Path(path)
    payload = to_chrome_trace(events)
    path.write_text(
        json.dumps(payload, indent=indent, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path
