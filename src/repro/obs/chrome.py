"""Export JSONL traces to Chrome ``trace_event`` JSON.

The output loads directly in chrome://tracing or https://ui.perfetto.dev:
each ``(config, replication, cluster)`` becomes a named process row,
each job a thread within it; a request's queued interval
(``queue`` → ``start``/``cancel_applied``) and running interval
(``start`` → ``complete``) become complete-events (``ph: "X"``), and
point-in-time protocol actions (``submit``, ``cancel_sent``,
``cancel_lost``, ``outage_down``, ``outage_up``) become instants
(``ph: "i"``).  Sim-time seconds map to trace microseconds.

Rows are fully labelled: every process carries ``process_name`` and
``process_sort_index`` metadata and every thread a ``thread_name``
(``job N``, or ``cluster`` for queue-level instants), so multi-cluster
traces render with stable, human-readable rows.  ``pid`` assignment is
*stable*: pids are allocated over the sorted set of
``(config, rep, cluster)`` keys, not in first-seen event order, so
reordering events (or filtering a subset that preserves the key set)
never reshuffles rows.

Probe time series (see :mod:`repro.obs.probes`) export as counter
tracks (``ph: "C"``) via :func:`probes_to_counter_trace`, viewable as
stacked area charts alongside the lifecycle spans.

The exporter is deterministic — identical input events produce
byte-identical JSON (a golden file in ``tests/obs/test_chrome.py``
locks the format).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Optional, Union

from .probes import PROBE_SCHEMA_VERSION
from .trace import TRACE_SCHEMA_VERSION

#: event types rendered as instants rather than folded into spans
_INSTANT_TYPES = (
    "submit",
    "cancel_sent",
    "cancel_lost",
    "winner_complete",
    "outage_down",
    "outage_up",
)


def _us(t: float) -> float:
    """Sim-time seconds to trace microseconds."""
    return t * 1_000_000.0


def _process_key(ev: dict) -> tuple:
    return (ev.get("config", 0), ev.get("rep", 0), ev.get("cluster", -1))


def to_chrome_trace(events: Iterable[dict]) -> dict:
    """Convert event records (see :mod:`repro.obs.trace`) to trace JSON."""
    events = list(events)
    trace_events: list[dict] = []
    #: (config, rep, cluster) -> pid, assigned over the *sorted* key set
    #: so row identity is stable under event reordering/filtering
    pids: dict[tuple, int] = {}
    scheme_of: dict[tuple, str] = {}
    for ev in events:
        key = _process_key(ev)
        if key not in scheme_of:
            scheme_of[key] = ev.get("scheme") or ""
    for pid, key in enumerate(sorted(scheme_of), start=1):
        pids[key] = pid
        scheme = scheme_of[key]
        name = (
            f"cfg{key[0]} rep{key[1]} cluster{key[2]}"
            + (f" [{scheme}]" if scheme else "")
        )
        trace_events.append({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": name},
        })
        trace_events.append({
            "name": "process_sort_index",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"sort_index": pid},
        })
    #: (pid, tid) pairs that carried events — named at the end
    threads_seen: set[tuple[int, int]] = set()
    #: (config, rep, request) -> (queue_time, pid, tid, job)
    queued: dict[tuple, tuple] = {}
    #: (config, rep, request) -> (start_time, pid, tid, job)
    running: dict[tuple, tuple] = {}
    t_last = 0.0

    def pid_for(ev: dict) -> int:
        return pids[_process_key(ev)]

    def span(name: str, t0: float, t1: float, pid: int, tid: int,
             args: dict) -> None:
        threads_seen.add((pid, tid))
        trace_events.append({
            "name": name,
            "ph": "X",
            "ts": _us(t0),
            "dur": _us(max(0.0, t1 - t0)),
            "pid": pid,
            "tid": tid,
            "args": args,
        })

    for ev in events:
        etype = ev.get("type", "?")
        t = float(ev.get("t", 0.0))
        t_last = max(t_last, t)
        pid = pid_for(ev)
        job = ev.get("job", -1)
        request = ev.get("request", -1)
        tid = job if job >= 0 else 0
        key = (ev.get("config", 0), ev.get("rep", 0), request)
        args = {"request": request, "job": job}
        if ev.get("scheme"):
            args["scheme"] = ev["scheme"]

        if etype == "queue":
            queued[key] = (t, pid, tid, args)
        elif etype == "start":
            q = queued.pop(key, None)
            if q is not None:
                span(f"queued req {request}", q[0], t, q[1], q[2], q[3])
            running[key] = (t, pid, tid, args)
        elif etype == "cancel_applied":
            q = queued.pop(key, None)
            if q is not None:
                span(
                    f"queued req {request} (cancelled)",
                    q[0], t, q[1], q[2], {**q[3], "cancelled": True},
                )
            threads_seen.add((pid, tid))
            trace_events.append({
                "name": etype, "ph": "i", "ts": _us(t), "pid": pid,
                "tid": tid, "s": "t", "args": args,
            })
        elif etype == "complete":
            r = running.pop(key, None)
            if r is not None:
                span(f"running req {request}", r[0], t, r[1], r[2], r[3])
        elif etype in _INSTANT_TYPES:
            threads_seen.add((pid, tid))
            trace_events.append({
                "name": etype, "ph": "i", "ts": _us(t), "pid": pid,
                "tid": tid, "s": "t", "args": args,
            })
        # Unknown types are ignored: a newer trace may carry event kinds
        # this exporter predates, and a viewer artifact beats a crash.

    # Requests still queued or running when the trace ends: emit the
    # span up to the last observed instant, marked truncated.
    for key, (t0, pid, tid, args) in sorted(queued.items()):
        span(f"queued req {key[2]}", t0, t_last, pid, tid,
             {**args, "truncated": True})
    for key, (t0, pid, tid, args) in sorted(running.items()):
        span(f"running req {key[2]}", t0, t_last, pid, tid,
             {**args, "truncated": True})

    # Name every thread row that carried events (sorted: determinism).
    for pid, tid in sorted(threads_seen):
        trace_events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "args": {"name": f"job {tid}" if tid > 0 else "cluster"},
        })

    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs.chrome",
            "trace_schema": TRACE_SCHEMA_VERSION,
        },
    }


#: probe record fields rendered as per-cluster counter tracks
_CLUSTER_COUNTER_FIELDS = ("queue_depth", "busy_nodes", "utilisation")

#: probe record fields rendered as kernel/protocol counter tracks
_KERNEL_COUNTER_FIELDS = (
    "outstanding_duplicates",
    "wasted_node_seconds",
    "pending_events",
    "compactions",
)


def probes_to_counter_trace(records: Iterable[dict]) -> dict:
    """Convert probe records (see :mod:`repro.obs.probes`) to counter tracks.

    Every sample becomes a Chrome counter event (``ph: "C"``): cluster
    rows chart queue depth, busy nodes and utilisation on the cluster's
    process row; kernel rows (``cluster == -1``) chart outstanding
    duplicates, cumulative waste and event-queue occupancy on a
    dedicated row.  Uses the same stable sorted-key ``pid`` assignment
    as :func:`to_chrome_trace`, so counters from a probe recording line
    up with spans from a trace recording of the same sweep.
    """
    records = list(records)
    keys = sorted({_process_key(rec) for rec in records})
    pids = {key: pid for pid, key in enumerate(keys, start=1)}
    trace_events: list[dict] = []
    for key in keys:
        pid = pids[key]
        label = (
            f"cfg{key[0]} rep{key[1]} kernel"
            if key[2] == -1
            else f"cfg{key[0]} rep{key[1]} cluster{key[2]}"
        )
        trace_events.append({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": label},
        })
    for rec in records:
        pid = pids[_process_key(rec)]
        fields = (
            _KERNEL_COUNTER_FIELDS
            if rec.get("cluster", -1) == -1
            else _CLUSTER_COUNTER_FIELDS
        )
        ts = _us(float(rec.get("t", 0.0)))
        for field in fields:
            if field not in rec:
                continue
            trace_events.append({
                "name": field,
                "ph": "C",
                "ts": ts,
                "pid": pid,
                "tid": 0,
                "args": {"value": rec[field]},
            })
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs.chrome",
            "probe_schema": PROBE_SCHEMA_VERSION,
        },
    }


def export_chrome(
    events: Iterable[dict], path: Union[str, Path], indent: int = 2,
    probe_records: Optional[Iterable[dict]] = None,
) -> Path:
    """Write the Chrome trace JSON for ``events`` to ``path``.

    ``probe_records`` optionally folds probe counter tracks (see
    :func:`probes_to_counter_trace`) into the same document; counter
    rows are re-based past the span rows' pids so the two families
    never collide.
    """
    path = Path(path)
    payload = to_chrome_trace(events)
    if probe_records is not None:
        counters = probes_to_counter_trace(probe_records)
        base = max(
            (e["pid"] for e in payload["traceEvents"]), default=0
        )
        for entry in counters["traceEvents"]:
            entry["pid"] += base
        payload["traceEvents"].extend(counters["traceEvents"])
        payload["otherData"]["probe_schema"] = PROBE_SCHEMA_VERSION
    path.write_text(
        json.dumps(payload, indent=indent, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path
