"""Counters, gauges and phase timings for runs and sweeps.

A :class:`MetricsRegistry` is a deliberately small, dependency-free
accumulator: integer/float counters (monotonic), gauges (last value
wins) and named wall-clock timings.  One registry is snapshotted per
run or per sweep and folded into the ``repro bench --json`` payload,
which is how "how many cancellations, backfill decisions, heap
compactions, cache hits did this sweep perform?" becomes a
machine-readable artifact instead of a print statement.

:func:`run_counters` maps one :class:`~repro.core.results
.ExperimentResult` onto the standard counter names;
:func:`aggregate_results` sums them across a sweep.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterable, Iterator, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.results import ExperimentResult

Number = Union[int, float]

#: counter names every run contributes (order fixed for stable output)
RUN_COUNTER_NAMES = (
    "jobs_submitted",
    "jobs_completed",
    "submissions",
    "cancellations",
    "lost_cancellations",
    "failed_submissions",
    "resubmissions",
    "backfills",
    "heap_compactions",
    "events_executed",
    "outages",
    "dropped_requests",
    "wasted_node_seconds",
)


class MetricsRegistry:
    """Accumulating counters / gauges / timings with a stable snapshot."""

    def __init__(self) -> None:
        self._counters: dict[str, Number] = {}
        self._gauges: dict[str, Number] = {}
        self._timings: dict[str, float] = {}

    # -- counters --------------------------------------------------------

    def inc(self, name: str, value: Number = 1) -> None:
        """Add ``value`` (default 1) to counter ``name``."""
        self._counters[name] = self._counters.get(name, 0) + value

    def counter(self, name: str) -> Number:
        return self._counters.get(name, 0)

    # -- gauges ----------------------------------------------------------

    def set_gauge(self, name: str, value: Number) -> None:
        self._gauges[name] = value

    def gauge(self, name: str) -> Number:
        return self._gauges.get(name, 0)

    # -- timings ---------------------------------------------------------

    def add_time(self, phase: str, seconds: float) -> None:
        """Accumulate ``seconds`` of wall-clock into phase ``phase``."""
        self._timings[phase] = self._timings.get(phase, 0.0) + float(seconds)

    @contextmanager
    def timer(self, phase: str) -> Iterator[None]:
        """Time a ``with`` block into phase ``phase`` (accumulating)."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(phase, time.perf_counter() - t0)

    def timing(self, phase: str) -> float:
        return self._timings.get(phase, 0.0)

    # -- aggregation -----------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one (counters and timings add,
        gauges take the other's value)."""
        for name, value in other._counters.items():
            self.inc(name, value)
        for name, value in other._timings.items():
            self.add_time(name, value)
        self._gauges.update(other._gauges)

    def snapshot(self) -> dict:
        """Sorted, JSON-ready view of everything recorded so far."""
        return {
            "counters": dict(sorted(self._counters.items())),
            "gauges": dict(sorted(self._gauges.items())),
            "timings_s": dict(sorted(self._timings.items())),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MetricsRegistry({self.snapshot()})"


def run_counters(result: "ExperimentResult") -> dict[str, Number]:
    """The standard per-run counters extracted from one result."""
    return {
        "jobs_submitted": result.n_submitted_jobs,
        "jobs_completed": result.n_jobs,
        "submissions": result.total_requests,
        "cancellations": result.total_cancellations,
        "lost_cancellations": result.lost_cancellations,
        "failed_submissions": result.failed_submissions,
        "resubmissions": result.resubmissions,
        "backfills": result.total_backfills,
        "heap_compactions": result.heap_compactions,
        "events_executed": result.events_executed,
        "outages": result.outages,
        "dropped_requests": result.dropped_requests,
        "wasted_node_seconds": result.wasted_node_seconds,
    }


def aggregate_results(
    results: Iterable["ExperimentResult"],
    registry: MetricsRegistry | None = None,
) -> MetricsRegistry:
    """Sum the per-run counters and phase timings of many results.

    Counts every run it is handed; deduplicating shared baselines is
    the caller's job (``ExperimentResult`` objects may be shared by
    reference across sweep slots).
    """
    registry = registry if registry is not None else MetricsRegistry()
    n = 0
    for result in results:
        n += 1
        for name, value in run_counters(result).items():
            registry.inc(name, value)
        for phase, seconds in result.phase_timings.items():
            registry.add_time(phase, seconds)
    registry.inc("runs", n)
    return registry
