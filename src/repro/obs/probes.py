"""Deterministic sim-time probes: schema-versioned system time series.

Where :mod:`repro.obs.trace` records *per-request lifecycle events*,
this module samples *system state* on a fixed simulated-time cadence —
the time-resolved view needed to watch a run approach the throughput
knee (Anton et al.): per-cluster queue depth, busy nodes and
utilisation, outstanding redundant copies, cumulative wasted
node-seconds, and event-kernel occupancy/compaction counters.

Design rules (the same discipline as tracing):

* **Zero overhead when disabled.**  ``run_single(probe=None)`` — the
  default — schedules nothing, allocates nothing and the trajectory is
  bit-identical to an unprobed run.
* **No trajectory perturbation when enabled.**  Probe events carry the
  dedicated :attr:`~repro.sim.events.EventPriority.PROBE` class, the
  lowest priority, so they run after every same-instant state change;
  they mutate nothing and draw no RNG.  They do consume event sequence
  numbers and are counted by ``events_executed``, which is why probed
  sweeps run with caching off (a probed result must never shadow an
  unprobed one).
* **Determinism.**  A probe series is a pure function of
  ``(config, replication, cadence)``; :func:`record_probe_sweep`
  writes rows in ``(config, replication)`` task order, so the JSONL is
  byte-identical for any worker count (locked in by
  ``tests/obs/test_probes.py`` and the ``probe-smoke`` CI job).

The sampler self-reschedules every ``cadence`` seconds of simulated
time and retires when the event queue holds no further work
(``peek_time() == inf``), so drained runs terminate instead of probing
forever.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from functools import partial
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Callable,
    Iterable,
    Iterator,
    Optional,
    Sequence,
    Union,
)

import math

if TYPE_CHECKING:  # typing-only: core imports nothing from obs at runtime
    from ..cluster.platform import Platform
    from ..core.coordinator import Coordinator
    from ..sim.engine import Simulator

from ..core.cache import config_fingerprint
from ..core.config import ExperimentConfig
from ..core.experiment import run_single
from ..core.parallel import GridStats, run_grid
from ..core.results import ExperimentResult
from ..sched.job import RequestState, reset_request_ids
from ..sim.events import EventPriority
from .manifest import RunManifest, build_manifest
from .stream import ONLINE_ESTIMATORS, ONLINE_QUANTILES, ONLINE_SCHEMA_VERSION

#: bump whenever the row tuple shape or JSONL line schema changes
PROBE_SCHEMA_VERSION = 1

#: default sampling cadence in simulated seconds (the paper's 6-hour
#: window at 60 s cadence is 360 rows per cluster — cheap and legible)
DEFAULT_PROBE_CADENCE = 60.0

#: canonical probe / manifest file names inside a recording directory
PROBES_FILENAME = "probes.jsonl"
MANIFEST_FILENAME = "manifest.json"

#: per-cluster row: (t, cluster, queue_depth, busy_nodes, total_nodes)
ClusterRow = "tuple[float, int, int, int, int]"

#: kernel/protocol row: (t, outstanding_duplicates, wasted_node_seconds,
#: pending_events, events_executed, compactions)
KernelRow = "tuple[float, int, float, int, int, int]"


class ProbeSampler:
    """Samples platform and kernel state every ``cadence`` sim-seconds.

    Construct with a cadence, hand to
    :func:`repro.core.experiment.run_single` via ``probe=``; the driver
    calls :meth:`install` once the simulator, platform and coordinator
    exist.  After the run, ``cluster_rows``/``kernel_rows`` hold the
    series (plain tuples, picklable).
    """

    __slots__ = (
        "cadence", "cluster_rows", "kernel_rows", "samples",
        "_sim", "_platform", "_coordinator",
    )

    def __init__(self, cadence: float = DEFAULT_PROBE_CADENCE) -> None:
        if cadence <= 0:
            raise ValueError(f"probe cadence must be > 0, got {cadence}")
        self.cadence = float(cadence)
        self.cluster_rows: list[tuple[float, int, int, int, int]] = []
        self.kernel_rows: list[tuple[float, int, float, int, int, int]] = []
        self.samples = 0
        self._sim: Optional[Simulator] = None
        self._platform: Optional[Platform] = None
        self._coordinator: Optional[Coordinator] = None

    def install(
        self, sim: "Simulator", platform: "Platform",
        coordinator: "Coordinator",
    ) -> None:
        """Bind to a run and schedule the first sample at t = 0."""
        self._sim = sim
        self._platform = platform
        self._coordinator = coordinator
        sim.at(0.0, self._tick, EventPriority.PROBE)

    def _tick(self) -> None:
        sim = self._sim
        platform = self._platform
        coordinator = self._coordinator
        assert sim is not None and platform is not None
        assert coordinator is not None
        now = sim.now
        self.samples += 1
        for cluster, sched in zip(platform.clusters, platform.schedulers):
            self.cluster_rows.append((
                now,
                cluster.index,
                sched.queue_length,
                cluster.busy_nodes,
                cluster.total_nodes,
            ))
        outstanding = sum(
            1
            for req in coordinator.duplicate_starts
            if req.state is RequestState.RUNNING
        )
        self.kernel_rows.append((
            now,
            outstanding,
            coordinator.wasted_node_seconds(now),
            sim.pending_events,
            sim.events_executed,
            sim.compactions,
        ))
        # Self-reschedule only while the queue holds live work: once no
        # further event exists the run is draining to a stop, and a
        # probe that kept rescheduling itself would hold the simulation
        # open forever.
        if sim.peek_time() != math.inf:
            sim.at(now + self.cadence, self._tick, EventPriority.PROBE)


@dataclass
class ProbedRun:
    """A run's result together with its probe series (picklable)."""

    result: ExperimentResult
    cluster_rows: list[tuple[float, int, int, int, int]]
    kernel_rows: list[tuple[float, int, float, int, int, int]]
    cadence: float


def run_single_probed(
    config: ExperimentConfig,
    replication: int = 0,
    cadence: float = DEFAULT_PROBE_CADENCE,
) -> ProbedRun:
    """Run one replication with probes on; a drop-in ``run_grid`` runner.

    Request ids are reset on entry so the series is a pure function of
    ``(config, replication, cadence)`` — the property that makes
    parallel probe sweeps byte-identical to serial ones.
    """
    reset_request_ids()
    sampler = ProbeSampler(cadence)
    result = run_single(config, replication, probe=sampler)
    return ProbedRun(
        result=result,
        cluster_rows=sampler.cluster_rows,
        kernel_rows=sampler.kernel_rows,
        cadence=sampler.cadence,
    )


# -- JSONL serialisation --------------------------------------------------


def _cluster_record(
    row: tuple[float, int, int, int, int],
    config_index: int, replication: int, scheme: str,
) -> dict:
    t, cluster, depth, busy, total = row
    return {
        "t": t,
        "config": config_index,
        "rep": replication,
        "scheme": scheme,
        "cluster": cluster,
        "queue_depth": depth,
        "busy_nodes": busy,
        "total_nodes": total,
        "utilisation": busy / total if total else 0.0,
    }


def _kernel_record(
    row: tuple[float, int, float, int, int, int],
    config_index: int, replication: int, scheme: str,
) -> dict:
    t, outstanding, wasted, pending, executed, compactions = row
    return {
        "t": t,
        "config": config_index,
        "rep": replication,
        "scheme": scheme,
        "cluster": -1,
        "outstanding_duplicates": outstanding,
        "wasted_node_seconds": wasted,
        "pending_events": pending,
        "events_executed": executed,
        "compactions": compactions,
    }


def _dumps(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def write_probes(
    path: Union[str, Path],
    header: dict,
    records: Iterable[dict],
) -> int:
    """Write a schema-versioned probe JSONL; returns the record count.

    Line 1 is the header (always carrying ``kind``/``schema``); every
    further line is one sample record.  Output is canonical (sorted
    keys, compact separators) so identical samples produce identical
    bytes — the substrate of the worker-count-invariance guarantee.
    """
    header = {"kind": "repro-probes", "schema": PROBE_SCHEMA_VERSION, **header}
    count = 0
    path = Path(path)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(_dumps(header) + "\n")
        for record in records:
            fh.write(_dumps(record) + "\n")
            count += 1
    return count


def read_probes(path: Union[str, Path]) -> tuple[dict, list[dict]]:
    """Load a probe JSONL; returns ``(header, records)``.

    Raises ``ValueError`` on a missing/foreign header or an unsupported
    schema version (interchange artifacts fail loudly).
    """
    path = Path(path)
    with open(path, "r", encoding="utf-8") as fh:
        first = fh.readline()
        if not first.strip():
            raise ValueError(f"{path}: empty probe file")
        header = json.loads(first)
        if not isinstance(header, dict) or header.get("kind") != "repro-probes":
            raise ValueError(f"{path}: not a repro probe series (bad header)")
        if header.get("schema") != PROBE_SCHEMA_VERSION:
            raise ValueError(
                f"{path}: unsupported probe schema {header.get('schema')!r} "
                f"(this build reads {PROBE_SCHEMA_VERSION})"
            )
        records = [json.loads(line) for line in fh if line.strip()]
    return header, records


# -- querying -------------------------------------------------------------


def probe_series(
    records: Iterable[dict],
    field: str,
    cluster: Optional[int] = None,
    config: Optional[int] = None,
    rep: Optional[int] = None,
) -> list[tuple[float, float]]:
    """Extract one ``(t, value)`` series from probe records.

    ``cluster=None`` matches any row carrying ``field`` (kernel rows
    use cluster ``-1``); filters are exact otherwise.
    """
    series: list[tuple[float, float]] = []
    for rec in records:
        if field not in rec:
            continue
        if cluster is not None and rec.get("cluster") != cluster:
            continue
        if config is not None and rec.get("config") != config:
            continue
        if rep is not None and rec.get("rep") != rep:
            continue
        series.append((float(rec["t"]), float(rec[field])))
    return series


def summarize_probes(records: Iterable[dict]) -> dict:
    """Aggregate view of a probe series (the ``probe summary`` payload)."""
    n = 0
    clusters: dict[int, dict] = {}
    t_first: Optional[float] = None
    t_last: Optional[float] = None
    max_outstanding = 0
    final_wasted = 0.0
    final_pending = 0
    final_compactions = 0
    for rec in records:
        n += 1
        t = float(rec.get("t", 0.0))
        t_first = t if t_first is None else min(t_first, t)
        t_last = t if t_last is None else max(t_last, t)
        cluster = int(rec.get("cluster", -1))
        if cluster >= 0:
            agg = clusters.setdefault(cluster, {
                "samples": 0, "max_queue_depth": 0,
                "_depth_sum": 0.0, "_util_sum": 0.0,
            })
            agg["samples"] += 1
            depth = int(rec.get("queue_depth", 0))
            agg["max_queue_depth"] = max(agg["max_queue_depth"], depth)
            agg["_depth_sum"] += depth
            agg["_util_sum"] += float(rec.get("utilisation", 0.0))
        else:
            max_outstanding = max(
                max_outstanding, int(rec.get("outstanding_duplicates", 0))
            )
            final_wasted = max(
                final_wasted, float(rec.get("wasted_node_seconds", 0.0))
            )
            final_pending = int(rec.get("pending_events", final_pending))
            final_compactions = int(rec.get("compactions", final_compactions))
    by_cluster = {}
    for cluster in sorted(clusters):
        agg = clusters[cluster]
        samples = agg["samples"]
        by_cluster[cluster] = {
            "samples": samples,
            "max_queue_depth": agg["max_queue_depth"],
            "mean_queue_depth": agg["_depth_sum"] / samples,
            "mean_utilisation": agg["_util_sum"] / samples,
        }
    return {
        "n_records": n,
        "t_first": t_first,
        "t_last": t_last,
        "by_cluster": by_cluster,
        "max_outstanding_duplicates": max_outstanding,
        "final_wasted_node_seconds": final_wasted,
        "final_pending_events": final_pending,
        "final_compactions": final_compactions,
    }


# -- probed sweeps --------------------------------------------------------


def record_probe_sweep(
    configs: Sequence[ExperimentConfig],
    n_replications: int,
    out_dir: Union[str, Path],
    cadence: float = DEFAULT_PROBE_CADENCE,
    n_workers: int = 1,
    first_replication: int = 0,
    chunksize: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
    stats: Optional[GridStats] = None,
    command: Optional[Sequence[str]] = None,
) -> tuple[list[list[ExperimentResult]], RunManifest]:
    """Run a sweep with probes on; write ``probes.jsonl`` + ``manifest.json``.

    The grid runs through the ordinary sweep engine (chunking, retry,
    crash recovery all apply) with the probed runner substituted and
    caching off — probed runs execute extra (probe) events, so their
    results must never shadow cached unprobed ones.  Rows are written
    in ``(config, replication)`` order regardless of worker scheduling,
    so the JSONL is byte-identical for any ``n_workers``.

    The manifest's ``extra`` block records the probe cadence, the
    enabled estimator families and both observability schema versions,
    making a replayed recording auditable end to end.
    """
    import time as _time

    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    unique: list[ExperimentConfig] = []
    slots: list[int] = []
    index_of: dict[ExperimentConfig, int] = {}
    for cfg in configs:
        ui = index_of.get(cfg)
        if ui is None:
            ui = index_of[cfg] = len(unique)
            unique.append(cfg)
        slots.append(ui)

    stats = stats if stats is not None else GridStats()
    t0 = _time.perf_counter()
    probed = run_grid(
        unique,
        n_replications,
        n_workers=n_workers,
        first_replication=first_replication,
        cache=None,
        chunksize=chunksize,
        progress=progress,
        runner=partial(run_single_probed, cadence=cadence),
        stats=stats,
    )
    wall = _time.perf_counter() - t0

    reps = range(first_replication, first_replication + n_replications)

    def iter_records() -> Iterator[dict]:
        for ui, cfg in enumerate(unique):
            for ri, rep in enumerate(reps):
                run = probed[ui][ri]
                for crow in run.cluster_rows:
                    yield _cluster_record(crow, ui, rep, cfg.scheme)
                for krow in run.kernel_rows:
                    yield _kernel_record(krow, ui, rep, cfg.scheme)

    header = {
        "cadence": cadence,
        "configs": [
            {
                "index": ui,
                "scheme": cfg.scheme,
                "describe": cfg.describe(),
                "fingerprint": config_fingerprint(cfg),
            }
            for ui, cfg in enumerate(unique)
        ],
        "n_replications": n_replications,
        "first_replication": first_replication,
    }
    n_records = write_probes(out_dir / PROBES_FILENAME, header, iter_records())

    manifest = build_manifest(
        unique,
        n_replications=n_replications,
        first_replication=first_replication,
        n_workers=n_workers,
        wall_time_s=wall,
        grid_stats=stats.as_dict(),
        command=list(command) if command is not None else None,
        extra={
            "n_probe_records": n_records,
            "probe_file": PROBES_FILENAME,
            "probe_cadence": cadence,
            "probe_schema": PROBE_SCHEMA_VERSION,
            "online_schema": ONLINE_SCHEMA_VERSION,
            "online_estimators": list(ONLINE_ESTIMATORS),
            "online_quantiles": list(ONLINE_QUANTILES),
        },
    )
    manifest.write(out_dir / MANIFEST_FILENAME)

    per_unique = [[pr.result for pr in probed[ui]] for ui in range(len(unique))]
    return [list(per_unique[ui]) for ui in slots], manifest
