"""Structured logging shared by the CLI and sweep workers.

Everything under the ``repro`` logger namespace flows through one
stderr handler configured by :func:`setup_logging`; machine-readable
program output (reports, JSON payloads) stays on stdout, so piping
``repro bench --json -`` into a file never mixes in diagnostics.

Worker-process safety: the parallel sweep engine's pool initializer
calls :func:`setup_logging` with the level exported through the
``REPRO_LOG_LEVEL`` environment variable (see
:func:`worker_log_level`), so spawned workers — which inherit no
handler state — log with the same format and threshold as the parent,
tagged with their process name.
"""

from __future__ import annotations

import logging
import os
import sys
from typing import Optional, TextIO

#: environment variable that propagates the log level to worker processes
LOG_LEVEL_ENV = "REPRO_LOG_LEVEL"

#: one shared format; ``processName`` distinguishes pool workers
LOG_FORMAT = "%(asctime)s %(levelname)-7s %(processName)s %(name)s: %(message)s"
LOG_DATEFMT = "%H:%M:%S"

_ROOT = "repro"


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the shared ``repro`` namespace.

    ``get_logger("core.parallel")`` returns ``repro.core.parallel``;
    an empty name returns the package root logger.
    """
    return logging.getLogger(f"{_ROOT}.{name}" if name else _ROOT)


def verbosity_to_level(verbosity: int) -> int:
    """Map a CLI verbosity knob to a ``logging`` level.

    ``-1`` (``--quiet``) → WARNING, ``0`` (default) → INFO,
    ``>= 1`` (``--verbose``) → DEBUG.
    """
    if verbosity < 0:
        return logging.WARNING
    if verbosity == 0:
        return logging.INFO
    return logging.DEBUG


def setup_logging(
    verbosity: int = 0,
    stream: Optional[TextIO] = None,
    level: Optional[int] = None,
) -> logging.Logger:
    """Configure the ``repro`` logger; idempotent.

    Repeated calls adjust the level and stream of the one installed
    handler instead of stacking new ones (re-invoking ``main()`` in
    tests must not multiply output).  The resolved level is exported in
    ``REPRO_LOG_LEVEL`` so worker processes can mirror it.
    """
    if level is None:
        level = verbosity_to_level(verbosity)
    logger = logging.getLogger(_ROOT)
    logger.setLevel(level)
    logger.propagate = False
    handler = None
    for existing in logger.handlers:
        if getattr(existing, "_repro_handler", False):
            handler = existing
            break
    if handler is None:
        handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
        handler._repro_handler = True  # type: ignore[attr-defined]
        handler.setFormatter(logging.Formatter(LOG_FORMAT, LOG_DATEFMT))
        logger.addHandler(handler)
    else:
        # Rebind on every call: under pytest's capsys, sys.stderr is a
        # fresh object per test, and a handler holding the previous
        # test's stream would write into a dead capture.  setStream
        # flushes the old stream first, which raises if the old capture
        # is already closed — fall back to swapping it directly.
        target = stream if stream is not None else sys.stderr
        if handler.stream is not target:
            try:
                handler.setStream(target)
            except ValueError:
                handler.stream = target
    handler.setLevel(level)
    os.environ[LOG_LEVEL_ENV] = logging.getLevelName(level)
    return logger


def worker_log_level() -> int:
    """The log level a worker process should adopt (from the environment).

    Falls back to WARNING so an unconfigured pool (library use without
    :func:`setup_logging`) stays quiet.
    """
    name = os.environ.get(LOG_LEVEL_ENV, "").strip().upper()
    if not name:
        return logging.WARNING
    level = logging.getLevelName(name)
    return level if isinstance(level, int) else logging.WARNING


def setup_worker_logging() -> None:
    """Configure logging inside a sweep worker (pool initializer hook)."""
    setup_logging(level=worker_log_level())
