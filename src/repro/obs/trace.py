"""Lifecycle trace recording: typed events, JSONL, deterministic sweeps.

The paper's claims are statements about *per-request lifecycle
orderings* — redundant copies submitted, one started, losers cancelled
(or lost and orphaned under the fault model) — and the trace recorder
makes those orderings a first-class artifact.  Event taxonomy:

========================  ====================================================
``submit``                coordinator hands one copy to a target cluster
``queue``                 the scheduler accepted it into its queue
``start``                 the request was allocated nodes and began running
``cancel_sent``           the coordinator issued a sibling cancellation
``cancel_lost``           that message was dropped (fault draw) or rejected
                          by a downed scheduler — the copy is orphaned
``cancel_applied``        the scheduler removed a pending request (also
                          emitted for queue entries lost in a queue-dropping
                          outage, at the outage instant)
``complete``              a running request finished
``outage_down``           a cluster's scheduler daemon went down
``outage_up``             it came back
========================  ====================================================

Recording is **opt-in and zero-overhead when disabled**: every hook
site guards on ``tracer is not None`` (one attribute load), no recorder
object is allocated, no RNG stream is consumed, and results are
bit-identical to an untraced run.

Determinism: a trace is recorded per ``(config, replication)`` task —
request ids are reset at task entry so they depend only on the task,
never on which worker process ran it or what it ran before — and
:func:`record_sweep` writes tasks in ``(config, replication)`` order.
The JSONL produced with ``--workers 4`` is therefore byte-identical to
``--workers 1`` (locked in by ``tests/obs/test_trace.py``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator, Optional, Sequence, Union

from ..contracts import declared_pure
from ..core.cache import config_fingerprint
from ..core.config import ExperimentConfig
from ..core.experiment import run_single
from ..core.parallel import GridStats, run_grid
from ..core.results import ExperimentResult
from ..sched.job import reset_request_ids
from .manifest import RunManifest, build_manifest

#: bump whenever the event tuple shape or JSONL line schema changes
TRACE_SCHEMA_VERSION = 1

#: the full event taxonomy, in lifecycle order
EVENT_TYPES = (
    "submit",
    "queue",
    "start",
    "cancel_sent",
    "cancel_lost",
    "cancel_applied",
    "complete",
    "winner_complete",
    "outage_down",
    "outage_up",
)

#: canonical trace / manifest file names inside a recording directory
TRACE_FILENAME = "trace.jsonl"
MANIFEST_FILENAME = "manifest.json"

#: one recorded event: (sim_time, type, cluster, request_id, job_id);
#: request/job are -1 for cluster-level events (outages)
RawEvent = "tuple[float, str, int, int, int]"


def format_event(event: "tuple[float, str, int, int, int]") -> str:
    """One aligned, human-readable line for a raw event tuple.

    Shared by trace summaries and the sanitizer's violation reports so
    trace context renders identically everywhere.
    """
    t, etype, cluster, request, job = event
    return (
        f"t={t:<12.3f} {etype:<14} cluster={cluster} "
        f"request={request} job={job}"
    )


class TraceRecorder:
    """Collects lifecycle events for one simulated run.

    The recorder is a bare append sink — interpretation (JSONL, Chrome
    export, summaries) happens after the run.  Hook sites hold a direct
    reference and guard with ``if tracer is not None``, so a run
    without a recorder pays one attribute check per lifecycle event and
    nothing else.
    """

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: list[tuple[float, str, int, int, int]] = []

    def emit(
        self,
        time: float,
        etype: str,
        cluster: int,
        request_id: int = -1,
        job_id: int = -1,
    ) -> None:
        """Record one event at simulated ``time``."""
        self.events.append((time, etype, cluster, request_id, job_id))

    def __len__(self) -> int:
        return len(self.events)

    def clear(self) -> None:
        self.events.clear()


@dataclass
class TracedRun:
    """A run's result together with its recorded events (picklable)."""

    result: ExperimentResult
    events: list[tuple[float, str, int, int, int]]


def run_single_traced(
    config: ExperimentConfig, replication: int = 0
) -> TracedRun:
    """Run one replication with tracing on; a drop-in ``run_grid`` runner.

    Request ids are reset on entry so the recorded ids are a pure
    function of ``(config, replication)`` — the property that makes
    parallel traces byte-identical to serial ones.
    """
    reset_request_ids()
    recorder = TraceRecorder()
    result = run_single(config, replication, tracer=recorder)
    return TracedRun(result=result, events=recorder.events)


# -- JSONL serialisation --------------------------------------------------


def _event_record(
    event: tuple[float, str, int, int, int],
    config_index: int,
    replication: int,
    scheme: str,
) -> dict:
    t, etype, cluster, request_id, job_id = event
    return {
        "t": t,
        "type": etype,
        "cluster": cluster,
        "request": request_id,
        "job": job_id,
        "config": config_index,
        "rep": replication,
        "scheme": scheme,
    }


@declared_pure
def _dumps(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def write_trace(
    path: Union[str, Path],
    header: dict,
    records: Iterable[dict],
) -> int:
    """Write a schema-versioned JSONL trace; returns the event count.

    Line 1 is the header (always carrying ``kind``/``schema``); every
    further line is one event record.  Output is canonical (sorted
    keys, compact separators) so identical events produce identical
    bytes.
    """
    header = {"kind": "repro-trace", "schema": TRACE_SCHEMA_VERSION, **header}
    count = 0
    path = Path(path)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(_dumps(header) + "\n")
        for record in records:
            fh.write(_dumps(record) + "\n")
            count += 1
    return count


def read_trace(path: Union[str, Path]) -> tuple[dict, list[dict]]:
    """Load a JSONL trace; returns ``(header, events)``.

    Raises ``ValueError`` on a missing/foreign header or an unsupported
    schema version — a trace is an interchange artifact, so failing
    loudly beats misinterpreting someone else's JSONL.
    """
    path = Path(path)
    with open(path, "r", encoding="utf-8") as fh:
        first = fh.readline()
        if not first.strip():
            raise ValueError(f"{path}: empty trace file")
        header = json.loads(first)
        if not isinstance(header, dict) or header.get("kind") != "repro-trace":
            raise ValueError(f"{path}: not a repro trace (bad header)")
        if header.get("schema") != TRACE_SCHEMA_VERSION:
            raise ValueError(
                f"{path}: unsupported trace schema {header.get('schema')!r} "
                f"(this build reads {TRACE_SCHEMA_VERSION})"
            )
        events = [json.loads(line) for line in fh if line.strip()]
    return header, events


# -- querying -------------------------------------------------------------


def filter_events(
    events: Iterable[dict],
    types: Optional[Sequence[str]] = None,
    cluster: Optional[int] = None,
    job: Optional[int] = None,
    request: Optional[int] = None,
    config: Optional[int] = None,
    rep: Optional[int] = None,
    t_min: Optional[float] = None,
    t_max: Optional[float] = None,
) -> Iterator[dict]:
    """Lazily filter event records; ``None`` means "don't filter"."""
    wanted = set(types) if types is not None else None
    for ev in events:
        if wanted is not None and ev.get("type") not in wanted:
            continue
        if cluster is not None and ev.get("cluster") != cluster:
            continue
        if job is not None and ev.get("job") != job:
            continue
        if request is not None and ev.get("request") != request:
            continue
        if config is not None and ev.get("config") != config:
            continue
        if rep is not None and ev.get("rep") != rep:
            continue
        t = ev.get("t", 0.0)
        if t_min is not None and t < t_min:
            continue
        if t_max is not None and t > t_max:
            continue
        yield ev


def summarize_trace(events: Iterable[dict]) -> dict:
    """Aggregate view of a trace: counts by type/cluster/scheme, spans."""
    by_type: dict[str, int] = {}
    by_cluster: dict[int, int] = {}
    by_scheme: dict[str, int] = {}
    jobs: set = set()
    requests: set = set()
    t_first: Optional[float] = None
    t_last: Optional[float] = None
    n = 0
    for ev in events:
        n += 1
        etype = ev.get("type", "?")
        by_type[etype] = by_type.get(etype, 0) + 1
        cluster = ev.get("cluster", -1)
        by_cluster[cluster] = by_cluster.get(cluster, 0) + 1
        scheme = ev.get("scheme", "?")
        by_scheme[scheme] = by_scheme.get(scheme, 0) + 1
        if ev.get("job", -1) >= 0:
            jobs.add((ev.get("config"), ev.get("rep"), ev["job"]))
        if ev.get("request", -1) >= 0:
            requests.add((ev.get("config"), ev.get("rep"), ev["request"]))
        t = ev.get("t", 0.0)
        t_first = t if t_first is None else min(t_first, t)
        t_last = t if t_last is None else max(t_last, t)
    return {
        "n_events": n,
        "by_type": dict(sorted(by_type.items())),
        "by_cluster": dict(sorted(by_cluster.items())),
        "by_scheme": dict(sorted(by_scheme.items())),
        "n_jobs": len(jobs),
        "n_requests": len(requests),
        "t_first": t_first,
        "t_last": t_last,
    }


# -- traced sweeps --------------------------------------------------------


def record_sweep(
    configs: Sequence[ExperimentConfig],
    n_replications: int,
    out_dir: Union[str, Path],
    n_workers: int = 1,
    first_replication: int = 0,
    chunksize: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
    stats: Optional[GridStats] = None,
    command: Optional[Sequence[str]] = None,
) -> tuple[list[list[ExperimentResult]], RunManifest]:
    """Run a sweep with tracing on; write ``trace.jsonl`` + ``manifest.json``.

    The grid runs through the ordinary sweep engine (chunking, retry,
    crash recovery all apply) with the traced runner substituted and
    caching off — a cached result has no events to contribute, and a
    trace must reflect work actually performed.  Events are written in
    ``(config, replication)`` order regardless of worker scheduling, so
    the JSONL is byte-identical for any ``n_workers``.

    Returns the unwrapped results (parallel to ``configs``) and the
    manifest.  Duplicate configs are collapsed in the trace (each
    unique config appears once, under its first index).
    """
    import time as _time

    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    unique: list[ExperimentConfig] = []
    slots: list[int] = []
    index_of: dict[ExperimentConfig, int] = {}
    for cfg in configs:
        ui = index_of.get(cfg)
        if ui is None:
            ui = index_of[cfg] = len(unique)
            unique.append(cfg)
        slots.append(ui)

    stats = stats if stats is not None else GridStats()
    t0 = _time.perf_counter()
    traced = run_grid(
        unique,
        n_replications,
        n_workers=n_workers,
        first_replication=first_replication,
        cache=None,
        chunksize=chunksize,
        progress=progress,
        runner=run_single_traced,
        stats=stats,
    )
    wall = _time.perf_counter() - t0

    reps = range(first_replication, first_replication + n_replications)

    def iter_records() -> Iterator[dict]:
        for ui, cfg in enumerate(unique):
            for ri, rep in enumerate(reps):
                for event in traced[ui][ri].events:
                    yield _event_record(event, ui, rep, cfg.scheme)

    header = {
        "configs": [
            {
                "index": ui,
                "scheme": cfg.scheme,
                "describe": cfg.describe(),
                "fingerprint": config_fingerprint(cfg),
            }
            for ui, cfg in enumerate(unique)
        ],
        "n_replications": n_replications,
        "first_replication": first_replication,
    }
    n_events = write_trace(out_dir / TRACE_FILENAME, header, iter_records())

    manifest = build_manifest(
        unique,
        n_replications=n_replications,
        first_replication=first_replication,
        n_workers=n_workers,
        wall_time_s=wall,
        grid_stats=stats.as_dict(),
        command=list(command) if command is not None else None,
        extra={"n_trace_events": n_events, "trace_file": TRACE_FILENAME},
    )
    manifest.write(out_dir / MANIFEST_FILENAME)

    per_unique = [[tr.result for tr in traced[ui]] for ui in range(len(unique))]
    return [list(per_unique[ui]) for ui in slots], manifest
