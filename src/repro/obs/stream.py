"""Streaming (online) statistics: Welford moments and P² quantiles.

The paper's harmfulness verdict rests on distribution-level statistics
— stretch quantiles, waste fractions — that the repo historically
computed post-hoc from fully materialised per-request arrays.  That is
a dead end for multi-million-job streaming replay (ROADMAP item 5) and
for knee detection (item 3), where the interesting signal must be read
*during* the run.  This module provides the O(1)-memory substrate:

* :class:`WelfordAccumulator` — numerically stable online mean and
  variance (Welford's update, Chan's parallel merge), plus min/max and
  a running total.
* :class:`P2Quantile` — the Jain & Chlamtac (1985) P² algorithm: a
  five-marker piecewise-parabolic estimator of one quantile that never
  stores the population.  Exact below five observations.
* :class:`OnlineStat` — one metric's bundle (moments + p50/p90/p99).
* :class:`OnlineMetrics` — the per-run set the coordinator updates at
  request completion (stretch, wait, bounded slowdown, wasted work).
* :class:`MergedOnlineMetrics` — the sweep-level reduction.  Its merge
  is list concatenation of immutable per-run summaries, so it is
  *exactly* associative: ``(a + b) + c`` and ``a + (b + c)`` hold the
  same part list and every derived aggregate — computed by a
  deterministic left fold over that list — is bit-identical.  Workers
  may therefore reduce partial sweeps in any grouping, as long as the
  final part order is the deterministic ``(config, replication)`` task
  order (which :func:`~repro.core.parallel.run_grid` guarantees).

Accuracy contract (verified by ``tests/obs/test_stream.py`` and
``tests/obs/test_probes.py``).  P² error is stated in *CDF space* —
``|F̂(q̂_p) − p|`` where ``F̂`` is the exact empirical CDF — because
value-space error is meaningless for the 4-decade heavy-tailed stretch
distributions this repo produces:

* IID moderate-tailed streams of n ≥ 50 observations
  (uniform/exponential/normal, the hypothesis suite): CDF error
  ≤ 2/√n at every tracked quantile — the same order as the sampling
  noise of the exact quantile itself (empirical worst over 20k
  streams: 0.185 at n ≈ 50, 0.05 at n ≈ 400, margin ≥ 35%
  everywhere).  No bound is claimed for adversarial non-IID
  orderings: P² is an interpolation scheme, not a sketch with
  worst-case rank guarantees;
* the smoke experiment grid (≈180 completed jobs, stretch spanning
  1 to ~2·10⁴): CDF error ≤ 0.15 for the median and ≤ 0.05 for
  p90/p99 — the tails, which carry the paper's verdict, are the
  accurate end;
* streams of fewer than five observations: exact (the warm-up buffer
  interpolates the true empirical quantile).

Merged sweep quantiles are count-weighted means of per-run P²
estimates — an approximation documented here rather than hidden: it is
exact when the runs are identically distributed replications (the
sweep case) and degrades gracefully otherwise.

Everything here is pure Python over plain floats: no numpy arrays to
pickle, no RNG draws, no event-queue interaction — attaching online
statistics to a run cannot perturb its trajectory.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Sequence

#: version of the ``online_metrics`` payload carried by
#: :class:`~repro.core.results.ExperimentResult`, ``repro bench --json``
#: and run manifests; bump when keys change meaning.
ONLINE_SCHEMA_VERSION = 1

#: quantiles every :class:`OnlineStat` tracks by default (the paper's
#: median plus the tail the helpful/harmful crossover lives in).
ONLINE_QUANTILES: tuple[float, ...] = (0.5, 0.9, 0.99)

#: metric names :class:`OnlineMetrics` maintains, in payload order.
ONLINE_METRIC_NAMES: tuple[str, ...] = (
    "stretch", "wait", "slowdown", "wasted_node_seconds",
)

#: estimator families enabled by this implementation (recorded in run
#: manifests so replayed runs are auditable).
ONLINE_ESTIMATORS: tuple[str, ...] = ("welford", "p2")


def quantile_label(p: float) -> str:
    """Canonical payload key for quantile ``p``: 0.5 -> ``"p50"``."""
    return f"p{100 * p:g}".replace(".", "_")


class WelfordAccumulator:
    """Online mean/variance/min/max/total in O(1) memory.

    Uses Welford's recurrence for single observations and Chan et al.'s
    pairwise update for :meth:`merge`, both numerically stable.  The
    running ``total`` is kept separately (not ``count * mean``) so waste
    totals do not pick up mean-rounding drift.
    """

    __slots__ = ("count", "mean", "m2", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self.m2 = 0.0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def observe(self, x: float) -> None:
        self.count += 1
        delta = x - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (x - self.mean)
        self.total += x
        if x < self.minimum:
            self.minimum = x
        if x > self.maximum:
            self.maximum = x

    def merge(self, other: "WelfordAccumulator") -> None:
        """Fold ``other`` into ``self`` (Chan's parallel combination)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self.m2 = other.m2
            self.total = other.total
            self.minimum = other.minimum
            self.maximum = other.maximum
            return
        n = self.count + other.count
        delta = other.mean - self.mean
        self.m2 += other.m2 + delta * delta * self.count * other.count / n
        self.mean += delta * other.count / n
        self.count = n
        self.total += other.total
        if other.minimum < self.minimum:
            self.minimum = other.minimum
        if other.maximum > self.maximum:
            self.maximum = other.maximum

    @property
    def variance(self) -> float:
        """Population variance (the MetricSummary/np.var convention)."""
        if self.count == 0:
            return float("nan")
        return self.m2 / self.count

    @property
    def std(self) -> float:
        v = self.variance
        return math.sqrt(v) if v == v else float("nan")


def _exact_quantile(sorted_values: Sequence[float], p: float) -> float:
    """Linear-interpolation quantile of a small sorted buffer."""
    n = len(sorted_values)
    if n == 0:
        return float("nan")
    pos = p * (n - 1)
    lo = int(math.floor(pos))
    hi = min(lo + 1, n - 1)
    frac = pos - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


class P2Quantile:
    """One-quantile P² estimator (Jain & Chlamtac, CACM 1985).

    Five markers track the minimum, the ``p/2``, ``p`` and
    ``(1 + p)/2`` quantiles and the maximum.  Marker heights move by
    piecewise-parabolic (falling back to linear) interpolation as
    observations arrive, so the ``p`` estimate is available at any time
    without storing the stream.  For fewer than five observations the
    estimate is the exact interpolated empirical quantile.
    """

    __slots__ = ("p", "count", "_heights", "_pos", "_desired", "_inc")

    def __init__(self, p: float) -> None:
        if not 0.0 < p < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {p}")
        self.p = p
        self.count = 0
        self._heights: list[float] = []
        self._pos = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0]
        self._inc = [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0]

    def observe(self, x: float) -> None:
        self.count += 1
        h = self._heights
        if self.count <= 5:
            # Warm-up: collect the first five observations exactly.
            h.append(x)
            h.sort()
            return
        pos = self._pos
        # 1. Find the cell x falls into; adjust the extreme markers.
        if x < h[0]:
            h[0] = x
            k = 0
        elif x >= h[4]:
            h[4] = x
            k = 3
        else:
            k = 0
            while k < 3 and x >= h[k + 1]:
                k += 1
        # 2. Shift actual positions above the cell; advance desired ones.
        for i in range(k + 1, 5):
            pos[i] += 1.0
        for i in range(5):
            self._desired[i] += self._inc[i]
        # 3. Nudge the three interior markers toward their desired
        #    positions, parabolic where monotone, linear otherwise.
        for i in range(1, 4):
            d = self._desired[i] - pos[i]
            if (d >= 1.0 and pos[i + 1] - pos[i] > 1.0) or (
                d <= -1.0 and pos[i - 1] - pos[i] < -1.0
            ):
                step = 1.0 if d >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:
                    h[i] = self._linear(i, step)
                pos[i] += step
        return

    def _parabolic(self, i: int, d: float) -> float:
        h, n = self._heights, self._pos
        return h[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: float) -> float:
        h, n = self._heights, self._pos
        j = i + int(d)
        return h[i] + d * (h[j] - h[i]) / (n[j] - n[i])

    @property
    def value(self) -> float:
        """Current estimate of the ``p`` quantile (NaN before any data)."""
        if self.count == 0:
            return float("nan")
        if self.count <= 5:
            return _exact_quantile(self._heights, self.p)
        return self._heights[2]


class OnlineStat:
    """Moments plus a bank of P² quantile estimators for one metric."""

    __slots__ = ("welford", "quantiles")

    def __init__(self, quantiles: Sequence[float] = ONLINE_QUANTILES) -> None:
        self.welford = WelfordAccumulator()
        self.quantiles = [P2Quantile(p) for p in quantiles]

    def observe(self, x: float) -> None:
        self.welford.observe(x)
        for q in self.quantiles:
            q.observe(x)

    def summary(self) -> dict:
        """Immutable plain-dict snapshot (the mergeable part payload).

        Undefined statistics (empty stream) serialise as ``None``, not
        NaN: NaN is not strict JSON and ``nan != nan`` would break the
        bit-equality contracts cached results rely on.
        """
        w = self.welford
        quantiles = {}
        for q in self.quantiles:
            value = q.value
            quantiles[quantile_label(q.p)] = value if value == value else None
        return {
            "count": w.count,
            "mean": w.mean if w.count else None,
            "m2": w.m2,
            "total": w.total,
            "min": w.minimum if w.count else None,
            "max": w.maximum if w.count else None,
            "quantiles": quantiles,
        }


class OnlineMetrics:
    """Per-run streaming metrics, updated inside the coordinator.

    ``observe_completion`` fires once per completed job (at the winning
    request's finish event); ``observe_waste`` fires once per duplicate
    copy as its node-seconds become attributable — at the duplicate's
    own completion, or at :meth:`~repro.core.coordinator.Coordinator.
    finalize` for duplicates still running at the horizon.  The
    population therefore matches the post-hoc arrays exactly: the
    ``stretch`` count equals ``len(result.jobs)`` and the wasted-work
    total equals ``result.wasted_node_seconds`` up to float-summation
    order.
    """

    __slots__ = ("stats",)

    def __init__(self, quantiles: Sequence[float] = ONLINE_QUANTILES) -> None:
        self.stats = {name: OnlineStat(quantiles) for name in ONLINE_METRIC_NAMES}

    def observe_completion(
        self, wait: float, stretch: float, slowdown: float
    ) -> None:
        self.stats["stretch"].observe(stretch)
        self.stats["wait"].observe(wait)
        self.stats["slowdown"].observe(slowdown)

    def observe_waste(self, node_seconds: float) -> None:
        self.stats["wasted_node_seconds"].observe(node_seconds)

    def to_dict(self) -> dict:
        """The ``ExperimentResult.online_metrics`` payload."""
        return {
            "schema": ONLINE_SCHEMA_VERSION,
            "metrics": {
                name: self.stats[name].summary() for name in ONLINE_METRIC_NAMES
            },
        }


# -- sweep-level reduction ----------------------------------------------


class MergedOnlineMetrics:
    """Exactly-associative reduction of per-run online payloads.

    Holds the flat tuple-of-parts (one part per run, in insertion
    order); every aggregate is a pure left fold over that tuple.  Merge
    of two reductions is concatenation, so any grouping of the same
    ordered part sequence produces bit-identical aggregates.
    """

    __slots__ = ("parts",)

    def __init__(self) -> None:
        #: per-run payloads (the ``to_dict`` dicts), in insertion order
        self.parts: list[dict] = []

    def add(self, payload: Optional[dict]) -> None:
        """Fold one run's ``online_metrics`` payload in (None = no-op)."""
        if payload is None:
            return
        if payload.get("schema") != ONLINE_SCHEMA_VERSION:
            raise ValueError(
                f"online-metrics schema mismatch: expected "
                f"{ONLINE_SCHEMA_VERSION}, got {payload.get('schema')!r}"
            )
        self.parts.append(payload)

    def merge(self, other: "MergedOnlineMetrics") -> None:
        """Concatenate another reduction's parts after this one's."""
        self.parts.extend(other.parts)

    @property
    def n_runs(self) -> int:
        return len(self.parts)

    def _metric_parts(self, name: str) -> list[dict]:
        return [p["metrics"][name] for p in self.parts]

    def count(self, name: str) -> int:
        return sum(p["count"] for p in self._metric_parts(name))

    def total(self, name: str) -> float:
        total = 0.0
        for p in self._metric_parts(name):
            total += p["total"]
        return total

    def mean_variance(self, name: str) -> tuple[float, float]:
        """Chan-fold mean and population variance across all parts."""
        acc = WelfordAccumulator()
        for p in self._metric_parts(name):
            if p["count"] == 0:
                continue
            part = WelfordAccumulator()
            part.count = p["count"]
            part.mean = p["mean"]
            part.m2 = p["m2"]
            part.total = p["total"]
            part.minimum = p["min"]
            part.maximum = p["max"]
            acc.merge(part)
        if acc.count == 0:
            return float("nan"), float("nan")
        return acc.mean, acc.variance

    def quantile(self, name: str, p: float) -> float:
        """Count-weighted mean of per-run P² estimates for quantile ``p``.

        Exact when parts are IID replications of one distribution (the
        sweep case); an approximation otherwise — see the module
        docstring's accuracy contract.
        """
        label = quantile_label(p)
        weight = 0.0
        weighted = 0.0
        for part in self._metric_parts(name):
            n = part["count"]
            if n == 0:
                continue
            value = part["quantiles"].get(label)
            if value is None or value != value:
                continue
            weight += n
            weighted += n * value
        if weight == 0.0:
            return float("nan")
        return weighted / weight

    def summary(self) -> Optional[dict]:
        """Aggregate payload for bench/knee surfacing (None when empty)."""
        if not self.parts:
            return None
        metrics = {}
        for name in ONLINE_METRIC_NAMES:
            count = self.count(name)
            mean, variance = self.mean_variance(name)
            parts = self._metric_parts(name)
            mins = [p["min"] for p in parts if p["count"]]
            maxs = [p["max"] for p in parts if p["count"]]
            quantiles = {}
            for p in ONLINE_QUANTILES:
                value = self.quantile(name, p)
                quantiles[quantile_label(p)] = value if value == value else None
            metrics[name] = {
                "count": count,
                "mean": mean if count else None,
                "variance": variance if count else None,
                "total": self.total(name),
                "min": min(mins) if mins else None,
                "max": max(maxs) if maxs else None,
                "quantiles": quantiles,
            }
        return {
            "schema": ONLINE_SCHEMA_VERSION,
            "n_runs": self.n_runs,
            "metrics": metrics,
        }


def merge_online_payloads(
    payloads: Iterable[Optional[dict]],
) -> Optional[dict]:
    """One-shot reduction of per-run payloads in iteration order."""
    merged = MergedOnlineMetrics()
    for payload in payloads:
        merged.add(payload)
    return merged.summary()
