"""Run manifests: everything needed to reproduce a sweep from its artifact.

A manifest answers, months later, "what exactly produced this trace /
bench payload?": the content-addressed fingerprint of every config, the
master seed and the RNG derivation rule, the package and cache schema
versions, the platform it ran on, and how long it took.  Together with
the determinism guarantees of the sweep engine (results and traces are
pure functions of ``(config, replication)``), a manifest plus the repo
at the recorded version regenerates the artifact bit-for-bit.
"""

from __future__ import annotations

import json
import os
import platform as _platform
import sys
import threading
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Optional, Sequence, Union

from ..core.cache import CACHE_SCHEMA_VERSION, config_fingerprint
from ..core.config import ExperimentConfig
from .stream import ONLINE_SCHEMA_VERSION

#: bump when the manifest layout changes incompatibly
#: (2: online_schema_version field — every result now carries streaming
#:  Welford/P² statistics, and an auditable replay must know which
#:  payload layout was in force)
MANIFEST_SCHEMA_VERSION = 2

#: one-line statement of how every random stream is derived; recorded
#: verbatim so an artifact is interpretable without reading the code
RNG_DERIVATION = (
    "numpy SeedSequence([master_seed, *sha256(key)]) per component key; "
    "replication r of a config uses keys ('rep', r, <component>) only"
)


@dataclass(frozen=True)
class RunManifest:
    """Reproducibility record written alongside every traced sweep."""

    schema: int
    created_unix: float
    created_iso: str
    repro_version: str
    python: str
    platform: str
    cpu_count: Optional[int]
    cache_schema_version: int
    #: layout version of the online-metrics payloads riding the results
    #: (:data:`repro.obs.stream.ONLINE_SCHEMA_VERSION` at record time)
    online_schema_version: int
    rng_derivation: str
    configs: list[dict]
    n_replications: int
    first_replication: int
    n_workers: int
    wall_time_s: float
    grid_stats: dict = field(default_factory=dict)
    command: Optional[list[str]] = None
    extra: dict = field(default_factory=dict)

    # -- serialisation ---------------------------------------------------

    def to_dict(self) -> dict:
        return {"kind": "repro-manifest", **asdict(self)}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def write(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(self.to_json() + "\n", encoding="utf-8")
        return path

    @classmethod
    def from_dict(cls, payload: dict) -> "RunManifest":
        if payload.get("kind") != "repro-manifest":
            raise ValueError("not a repro manifest (bad 'kind')")
        if payload.get("schema") != MANIFEST_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported manifest schema {payload.get('schema')!r} "
                f"(this build reads {MANIFEST_SCHEMA_VERSION})"
            )
        fields = {k: v for k, v in payload.items() if k != "kind"}
        return cls(**fields)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "RunManifest":
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))


class RunJournal:
    """Append-only JSONL progress journal for resumable sweeps.

    The orchestrator appends one entry per lifecycle event (grid
    prepared, executor attached, chunk completed); ``repro serve``
    keeps one journal per job next to its manifest.  Together with the
    disk result cache the journal is what makes a killed server or
    worker resumable: completed work is *recovered* through the cache,
    while the journal records — auditable after the fact — which chunks
    completed when, so tests and operators can verify a resume really
    did re-run only the incomplete remainder.

    Entries are flushed and fsynced per append (events are chunk-, not
    task-grained, so durability costs little) and a torn final line
    from a crash mid-write is skipped on read.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        self._seq = len(self.entries()) if self.path.exists() else 0

    def append(self, entry: dict) -> dict:
        """Durably append one event; returns the record as written."""
        with self._lock:
            record = {
                "seq": self._seq,
                # repro-lint: disable=DET001 -- journal timestamps are
                # provenance metadata (when did this chunk land), never
                # simulation input
                "unix": time.time(),
                **entry,
            }
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a", encoding="utf-8") as fh:
                fh.write(json.dumps(record, sort_keys=True) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            self._seq += 1
        return record

    def entries(self) -> list[dict]:
        """Every intact record, in append order."""
        try:
            text = self.path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return []
        out: list[dict] = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                out.append(json.loads(line))
            except ValueError:
                # Torn tail from a crash mid-append: ignore it; the
                # cache, not the journal, is the source of truth.
                continue
        return out


def describe_config(config: ExperimentConfig, index: int = 0) -> dict:
    """The manifest entry for one config: identity plus content address."""
    return {
        "index": index,
        "scheme": config.scheme,
        "algorithm": config.algorithm,
        "seed": config.seed,
        "describe": config.describe(),
        "fingerprint": config_fingerprint(config),
    }


def build_manifest(
    configs: Sequence[ExperimentConfig],
    n_replications: int,
    first_replication: int = 0,
    n_workers: int = 1,
    wall_time_s: float = 0.0,
    grid_stats: Optional[dict] = None,
    command: Optional[list[str]] = None,
    extra: Optional[dict] = None,
) -> RunManifest:
    """Assemble a manifest for a sweep over ``configs``."""
    from .. import __version__

    # repro-lint: disable=DET001 -- the manifest's entire job is to
    # record when/where a run happened; host timestamps are provenance
    # metadata, never simulation input
    now = time.time()
    return RunManifest(
        schema=MANIFEST_SCHEMA_VERSION,
        created_unix=now,
        # repro-lint: disable=DET001 -- provenance timestamp, see above
        created_iso=time.strftime("%Y-%m-%dT%H:%M:%S%z", time.localtime(now)),
        repro_version=__version__,
        python=sys.version.split()[0],
        platform=_platform.platform(),
        cpu_count=os.cpu_count(),
        cache_schema_version=CACHE_SCHEMA_VERSION,
        online_schema_version=ONLINE_SCHEMA_VERSION,
        rng_derivation=RNG_DERIVATION,
        configs=[describe_config(cfg, i) for i, cfg in enumerate(configs)],
        n_replications=n_replications,
        first_replication=first_replication,
        n_workers=n_workers,
        wall_time_s=wall_time_s,
        grid_stats=dict(grid_stats) if grid_stats is not None else {},
        command=command,
        extra=dict(extra) if extra is not None else {},
    )
