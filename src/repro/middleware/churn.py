"""The Figure 5 churn experiment: saturate a scheduler with submits+cancels.

Protocol (paper Section 4.1):

1. a long job monopolises all compute nodes so pending jobs never run;
2. the queue is pre-filled to a target size;
3. client processes then continuously submit new jobs and delete the job
   at the *head* of the queue ("the maximum amount of churn");
4. the measured quantity is sustained submissions (= cancellations) per
   second versus queue size.

Here the daemon is a :class:`~repro.middleware.pbs.PBSDaemonModel`
served by a single-server queue in simulated time, so the experiment
regenerates the paper's curve from its calibrated cost model — and the
same driver can saturate our *actual* scheduler implementations in wall
time (see :func:`measure_real_scheduler_throughput`) as a genuine
measured analogue.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..cluster.cluster import Cluster
from ..sched import make_scheduler
from ..sched.job import Request
from ..sim.engine import Simulator
from ..sim.rng import RngFactory
from .pbs import PBSDaemonModel


@dataclass(frozen=True)
class ChurnSample:
    """One measurement: sustained churn rate at a given queue size."""

    queue_size: int
    submissions_per_sec: float
    cancellations_per_sec: float
    duration_s: float
    truncated_by_oom: bool = False

    @property
    def ops_per_sec(self) -> float:
        return self.submissions_per_sec + self.cancellations_per_sec


def run_churn_experiment(
    model: PBSDaemonModel,
    queue_size: int,
    duration_s: float = 12 * 3600.0,
    rng: Optional[np.random.Generator] = None,
    sample_noise: bool = True,
) -> ChurnSample:
    """Simulate the saturation protocol against the daemon cost model.

    The daemon serves operations back-to-back (the clients keep it
    saturated, as in the paper), alternating one submission and one
    cancellation so the queue size stays at ``queue_size``.  Returns the
    sustained rates over ``duration_s`` of simulated time; the run may
    be cut short by the modelled memory leak.
    """
    if queue_size < 0:
        raise ValueError(f"queue size must be >= 0, got {queue_size}")
    if duration_s <= 0:
        raise ValueError(f"duration must be positive, got {duration_s}")
    rng = rng or RngFactory(0).generator("churn", "single")
    truncated = False
    effective_duration = duration_s
    oom_p = model.oom_probability(queue_size, duration_s / 3600.0)
    if oom_p > 0 and rng.random() < oom_p:
        truncated = True
        effective_duration = duration_s * float(rng.uniform(0.3, 0.9))

    # Saturated single server: ops completed = time / mean service time.
    # Draw in batches for speed rather than event-by-event.
    t = 0.0
    ops = 0
    batch = 4096
    while t < effective_duration:
        if sample_noise:
            svc = np.array(
                [model.noisy_op_service_time(queue_size, rng) for _ in range(batch)]
            )
        else:
            svc = np.full(batch, model.op_service_time(queue_size))
        csum = np.cumsum(svc) + t
        done = int(np.searchsorted(csum, effective_duration, side="right"))
        if done < batch:
            ops += done
            t = effective_duration
        else:
            ops += batch
            t = float(csum[-1])
    per_sec = ops / effective_duration / 2.0  # half are submissions
    return ChurnSample(
        queue_size=queue_size,
        submissions_per_sec=per_sec,
        cancellations_per_sec=per_sec,
        duration_s=effective_duration,
        truncated_by_oom=truncated,
    )


def churn_curve(
    model: PBSDaemonModel,
    queue_sizes: Sequence[int] = (0, 1000, 2500, 5000, 7500, 10000, 12500,
                                  15000, 17500, 20000),
    duration_s: float = 12 * 3600.0,
    n_repetitions: int = 4,
    seed: int = 0,
) -> list[list[ChurnSample]]:
    """Figure 5: one churn experiment per (queue size, repetition).

    Returns ``curves[rep][i]`` matching the paper's four 12-hour
    experiment curves plus their average (compute the average from the
    returned samples).
    """
    factory = RngFactory(seed)
    curves = []
    for rep in range(n_repetitions):
        rng = factory.generator("churn", rep)
        curves.append(
            [run_churn_experiment(model, q, duration_s, rng) for q in queue_sizes]
        )
    return curves


def average_curve(curves: list[list[ChurnSample]]) -> list[ChurnSample]:
    """Average the non-truncated samples per queue size (the thick line)."""
    if not curves:
        raise ValueError("no curves to average")
    n_points = len(curves[0])
    out = []
    for i in range(n_points):
        samples = [c[i] for c in curves if not c[i].truncated_by_oom]
        if not samples:
            samples = [c[i] for c in curves]
        out.append(
            ChurnSample(
                queue_size=samples[0].queue_size,
                submissions_per_sec=float(
                    np.mean([s.submissions_per_sec for s in samples])
                ),
                cancellations_per_sec=float(
                    np.mean([s.cancellations_per_sec for s in samples])
                ),
                duration_s=float(np.mean([s.duration_s for s in samples])),
            )
        )
    return out


def measure_real_scheduler_throughput(
    algorithm: str = "easy",
    queue_size: int = 1000,
    n_ops: int = 2000,
    nodes: int = 128,
) -> float:
    """Wall-clock submit+cancel throughput of *our* scheduler implementations.

    The measured analogue of Figure 5 for this codebase: a blocked
    cluster (one request holds all nodes), a pre-filled queue, then
    ``n_ops`` alternating submissions and head-of-queue cancellations.
    Returns operation pairs per wall-clock second.
    """
    sim = Simulator()
    cluster = Cluster(0, nodes)
    sched = make_scheduler(algorithm, sim, cluster)
    blocker = Request(nodes=nodes, runtime=1e12, requested_time=1e12)
    sched.submit(blocker)
    sim.run(until=0.0)
    assert cluster.free_nodes == 0, "blocker must monopolise the cluster"

    def make_request() -> Request:
        return Request(nodes=1, runtime=100.0, requested_time=100.0)

    for _ in range(queue_size):
        sched.submit(make_request())
    sim.run(until=0.0)

    t0 = time.perf_counter()
    for _ in range(n_ops):
        sched.submit(make_request())
        head = next(r for r in sched.queue if r.is_pending)
        sched.cancel(head)
        sim.run(until=0.0)
    elapsed = time.perf_counter() - t0
    return n_ops / elapsed
