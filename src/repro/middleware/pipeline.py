"""End-to-end submission pipeline: user → middleware → scheduler daemon.

Section 4 of the paper argues analytically that the middleware is the
bottleneck (r < 3) long before the batch scheduler (r < 30).  This
module backs that argument with simulation: a two-stage tandem queue in
simulated time,

    submissions (rate N·r/iat, Poisson-ish) ──► GRAM service (1/tx_rate)
    ──► PBS daemon (queue-size-dependent service) ──► batch queue

plus the return path of cancellations.  The measured quantities are
per-stage utilisation, end-to-end submission latency, and backlog
growth — all as functions of the redundancy level r, which reproduces
the saturation cliff at the middleware's capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..sim.engine import Simulator
from ..sim.events import EventPriority
from ..sim.rng import RngFactory
from .gram import MiddlewareModel, gt4_wsgram_model
from .pbs import PBSDaemonModel, paper_calibrated_model


@dataclass
class StageStats:
    """Throughput/latency accounting for one pipeline stage."""

    name: str
    arrived: int = 0
    served: int = 0
    busy_time: float = 0.0
    latencies: list[float] = field(default_factory=list)

    def utilization(self, horizon: float) -> float:
        return self.busy_time / horizon if horizon > 0 else float("nan")

    @property
    def mean_latency(self) -> float:
        return float(np.mean(self.latencies)) if self.latencies else float("nan")

    @property
    def backlog(self) -> int:
        return self.arrived - self.served


class _Server:
    """Single FIFO server with a pluggable service-time function."""

    def __init__(self, sim: Simulator, stats: StageStats, service_time) -> None:
        self.sim = sim
        self.stats = stats
        self.service_time = service_time
        self.queue: list[tuple[float, object]] = []
        self.busy = False
        self.downstream = None  # callable(item) | None

    def arrive(self, item: object) -> None:
        self.stats.arrived += 1
        self.queue.append((self.sim.now, item))
        if not self.busy:
            self._start_next()

    def _start_next(self) -> None:
        if not self.queue:
            self.busy = False
            return
        self.busy = True
        arrived_at, item = self.queue.pop(0)
        svc = self.service_time()
        self.stats.busy_time += svc
        def done() -> None:
            self.stats.served += 1
            self.stats.latencies.append(self.sim.now - arrived_at)
            if self.downstream is not None:
                self.downstream(item)
            self._start_next()
        self.sim.after(svc, done, EventPriority.CONTROL)


@dataclass(frozen=True)
class PipelineResult:
    """Outcome of one pipeline simulation."""

    redundancy: int
    iat: float
    n_clusters: int
    horizon: float
    middleware_utilization: float
    scheduler_utilization: float
    middleware_backlog: int
    scheduler_backlog: int
    mean_end_to_end_latency: float
    submissions_offered: int
    submissions_completed: int

    @property
    def middleware_saturated(self) -> bool:
        """Backlog growing roughly linearly → the stage cannot keep up."""
        return self.middleware_backlog > max(20, 0.05 * self.submissions_offered)

    @property
    def completion_fraction(self) -> float:
        if self.submissions_offered == 0:
            return float("nan")
        return self.submissions_completed / self.submissions_offered


def simulate_submission_pipeline(
    redundancy: int,
    iat: float = 5.0,
    n_clusters: int = 10,
    horizon: float = 1800.0,
    middleware: Optional[MiddlewareModel] = None,
    daemon: Optional[PBSDaemonModel] = None,
    queue_depth: int = 10_000,
    seed: int = 0,
) -> PipelineResult:
    """Drive the user→GRAM→PBS pipeline at redundancy level ``r``.

    Jobs arrive with exponential gaps of mean ``iat`` per cluster; each
    job emits ``r`` submission transactions and, once one copy starts,
    ``r − 1`` cancellation transactions (modelled here as an equal
    follow-on load, the paper's steady-state assumption).  The daemon
    serves at the queue-depth-dependent rate of the Figure 5 model.
    """
    if redundancy < 1:
        raise ValueError(f"redundancy must be >= 1, got {redundancy}")
    if horizon <= 0:
        raise ValueError(f"horizon must be positive, got {horizon}")
    middleware = middleware or gt4_wsgram_model()
    daemon = daemon or paper_calibrated_model()
    # One keyed stream per seed, shared across redundancy levels: the
    # r=2 vs r=4 comparison rides on common random numbers.
    rng = RngFactory(seed).generator("pipeline")
    sim = Simulator()

    mw_stats = StageStats("middleware")
    pbs_stats = StageStats("scheduler")
    mw = _Server(sim, mw_stats, lambda: middleware.service_time)
    pbs = _Server(
        sim, pbs_stats,
        lambda: daemon.noisy_op_service_time(queue_depth, rng),
    )
    mw.downstream = pbs.arrive

    end_to_end: list[float] = []

    class _Tx:
        __slots__ = ("born",)
        def __init__(self, born: float) -> None:
            self.born = born

    def pbs_done(tx: "_Tx") -> None:
        end_to_end.append(sim.now - tx.born)

    pbs.downstream = pbs_done

    offered = 0
    # One aggregate arrival process: platform-wide job rate N/iat, each
    # job contributing r submissions and r-1 cancellations = 2r-1 tx.
    job_rate = n_clusters / iat
    t = float(rng.exponential(1.0 / job_rate))
    while t < horizon:
        tx_count = 2 * redundancy - 1
        offered += redundancy

        def emit(when: float, count: int) -> None:
            def fire() -> None:
                for _ in range(count):
                    mw.arrive(_Tx(sim.now))
            sim.at(when, fire, EventPriority.SUBMIT)

        emit(t, tx_count)
        t += float(rng.exponential(1.0 / job_rate))

    sim.run(until=horizon)
    completed = min(pbs_stats.served, offered)
    return PipelineResult(
        redundancy=redundancy,
        iat=iat,
        n_clusters=n_clusters,
        horizon=horizon,
        middleware_utilization=mw_stats.utilization(horizon),
        scheduler_utilization=pbs_stats.utilization(horizon),
        middleware_backlog=mw_stats.backlog,
        scheduler_backlog=pbs_stats.backlog,
        mean_end_to_end_latency=float(np.mean(end_to_end))
        if end_to_end else float("nan"),
        submissions_offered=offered,
        submissions_completed=completed,
    )


def redundancy_sweep(
    levels=(1, 2, 3, 4, 6, 10),
    per_cluster: bool = True,
    **kwargs,
) -> list[PipelineResult]:
    """Pipeline results across redundancy levels.

    With the defaults this reproduces Section 4.2's cliff: the
    middleware saturates between r = 2 and r = 3 while the scheduler
    stage stays comfortably below capacity.

    ``per_cluster=True`` divides the platform-wide transaction stream by
    the number of clusters — the paper's per-scheduler/per-GRAM view
    (each cluster runs its own GRAM service in front of its scheduler).
    """
    results = []
    for r in levels:
        kw = dict(kwargs)
        if per_cluster:
            kw.setdefault("n_clusters", 1)
        results.append(simulate_submission_pipeline(int(r), **kw))
    return results
