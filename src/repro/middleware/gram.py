"""Grid-middleware (GRAM-like) service model (Section 4.2).

The paper cites DiPerf measurements of Globus GT4 WS-GRAM on a 2.16 GHz
AMD K7: "a throughput of slightly under 60 transactions per minute can
be sustained, or under one transaction per second", and reasons that if
a cancellation costs about as much as a submission, 0.5 submissions +
0.5 cancellations per second is the middleware's capacity.

The model is a deterministic-service single server (M/D/1): a fixed
per-transaction cost plus standard saturation behaviour, which is all
Section 4.2's capacity argument uses.  A lighter-weight gSOAP-style
serialisation cost is also modelled to reproduce the paper's point that
SOAP marshalling itself is *not* the bottleneck.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: paper figure: GT4 WS-GRAM sustains just under 60 transactions/minute
GT4_WSGRAM_TX_PER_MIN = 58.0
#: gSOAP benchmark cited by the paper: >>12/s for 450 KB payloads; a
#: conservative stand-in rate used to show SOAP is not the bottleneck
GSOAP_TX_PER_SEC = 100.0


@dataclass(frozen=True)
class MiddlewareModel:
    """A middleware service with a fixed per-transaction cost.

    Parameters
    ----------
    tx_per_sec:
        Sustainable transactions (submissions or cancellations) per
        second.
    name:
        Label for reports.
    """

    tx_per_sec: float
    name: str = "middleware"

    def __post_init__(self) -> None:
        if self.tx_per_sec <= 0:
            raise ValueError(f"throughput must be positive, got {self.tx_per_sec}")

    @property
    def service_time(self) -> float:
        """Seconds per transaction."""
        return 1.0 / self.tx_per_sec

    def utilization(self, arrival_rate: float) -> float:
        """Offered utilisation ρ for a given transaction arrival rate."""
        if arrival_rate < 0:
            raise ValueError(f"arrival rate must be >= 0, got {arrival_rate}")
        return arrival_rate * self.service_time

    def is_saturated(self, arrival_rate: float) -> bool:
        return self.utilization(arrival_rate) >= 1.0

    def mean_wait(self, arrival_rate: float) -> float:
        """Mean queueing delay (M/D/1): ρ·s / (2·(1−ρ)); inf if saturated."""
        rho = self.utilization(arrival_rate)
        if rho >= 1.0:
            return math.inf
        return rho * self.service_time / (2.0 * (1.0 - rho))

    def max_submission_rate(self) -> float:
        """Max job submissions/second if each job also costs one cancel.

        "If a job cancellation causes roughly the same overhead as a job
        submission ... then .5 job submissions and .5 job cancellations
        can be processed per second."
        """
        return self.tx_per_sec / 2.0


def gt4_wsgram_model() -> MiddlewareModel:
    """The paper's GT4 WS-GRAM figure as a model (≈0.97 tx/s)."""
    return MiddlewareModel(tx_per_sec=GT4_WSGRAM_TX_PER_MIN / 60.0, name="GT4 WS-GRAM")


def gsoap_model() -> MiddlewareModel:
    """SOAP-serialisation-only cost model (shows SOAP is not the bottleneck)."""
    return MiddlewareModel(tx_per_sec=GSOAP_TX_PER_SEC, name="gSOAP")


@dataclass(frozen=True)
class NetworkModel:
    """Link between users/middleware and the batch scheduler (Section 4.2).

    The paper: even if a submission were hundreds of KB (large SOAP
    messages), "most networks connecting a batch scheduler to the
    Internet can easily support tens of such interactions per second".
    """

    bandwidth_bytes_per_sec: float = 12.5e6  # 100 Mbit/s
    payload_bytes: float = 200e3             # generous SOAP request

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_sec <= 0 or self.payload_bytes <= 0:
            raise ValueError("bandwidth and payload must be positive")

    @property
    def max_tx_per_sec(self) -> float:
        return self.bandwidth_bytes_per_sec / self.payload_bytes

    def supports(self, tx_per_sec: float) -> bool:
        return tx_per_sec <= self.max_tx_per_sec
