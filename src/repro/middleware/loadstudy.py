"""Simulation-backed load studies from Section 4.1.

Two claims the paper supports with simulation rather than measurement:

* under the peak-hour model, a batch queue grows by ≈700 requests per
  hour, *independently of the cluster size* (the cluster drains a
  negligible share of the arrival stream);
* redundant requests do not inflate steady-state queue sizes much: over
  a 24-hour, 10-cluster simulation the average maximum queue size under
  ALL exceeds the no-redundancy baseline "by less than 2 %" — because
  every start removes the job's r-1 siblings from the other queues.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.config import ExperimentConfig
from ..core.experiment import run_single


@dataclass(frozen=True)
class QueueGrowth:
    """Linear queue-growth measurement on a single cluster."""

    nodes: int
    duration_h: float
    arrivals_per_hour: float
    growth_per_hour: float
    final_queue_length: int

    @property
    def start_fraction(self) -> float:
        """Fraction of arrivals the cluster actually started."""
        if self.arrivals_per_hour == 0:
            return float("nan")
        return 1.0 - self.growth_per_hour / self.arrivals_per_hour


def measure_queue_growth(
    nodes: int = 128,
    duration: float = 6 * 3600.0,
    seed: int = 0,
    replication: int = 0,
) -> QueueGrowth:
    """Queue growth of one cluster under the authentic peak-hour model.

    Uses the uncalibrated workload (offered load ≈ 100): the paper's
    ≈700 jobs/hour claim lives in this regime.
    """
    cfg = ExperimentConfig(
        n_clusters=1,
        nodes_per_cluster=nodes,
        scheme="NONE",
        duration=duration,
        drain=False,
        seed=seed,
    )
    result = run_single(cfg, replication)
    cluster = result.clusters[0]
    pending_at_end = cluster.submitted - cluster.cancelled - cluster.started
    hours = duration / 3600.0
    return QueueGrowth(
        nodes=nodes,
        duration_h=hours,
        arrivals_per_hour=cluster.submitted / hours,
        growth_per_hour=pending_at_end / hours,
        final_queue_length=pending_at_end,
    )


def queue_growth_vs_cluster_size(
    node_counts: Sequence[int] = (32, 64, 128, 256),
    duration: float = 6 * 3600.0,
    seed: int = 0,
) -> list[QueueGrowth]:
    """The "independently of the size of the cluster" sweep."""
    return [measure_queue_growth(n, duration, seed) for n in node_counts]


@dataclass(frozen=True)
class QueueSizeComparison:
    """ALL vs NONE maximum queue sizes (paper: ALL larger by < 2 %)."""

    n_clusters: int
    duration_h: float
    avg_max_queue_none: float
    avg_max_queue_all: float

    @property
    def relative_increase(self) -> float:
        if self.avg_max_queue_none == 0:
            return float("nan")
        return self.avg_max_queue_all / self.avg_max_queue_none - 1.0


def compare_max_queue_sizes(
    n_clusters: int = 10,
    duration: float = 24 * 3600.0,
    offered_load: float = 0.85,
    drain: bool = True,
    n_replications: int = 3,
    seed: int = 0,
) -> QueueSizeComparison:
    """Average maximum queue size, ALL vs NONE, on paired streams.

    The paper's claim ("larger by less than 2 %") concerns *steady
    state*: requests are cancelled "upon the start of job execution",
    so in steady state redundancy keeps roughly one live request per
    job.  Steady state exists only when clusters keep up with arrivals,
    hence the default offered load below 1 here; under sustained
    overload queues are growing, jobs rarely start, cancellations lag
    arbitrarily, and ALL inflates queues by roughly the platform size —
    we measure both regimes in the sec4 bench and record the contrast
    in EXPERIMENTS.md.
    """
    base = ExperimentConfig(
        n_clusters=n_clusters,
        duration=duration,
        offered_load=offered_load,
        drain=drain,
        seed=seed,
    )
    none_sizes, all_sizes = [], []
    for rep in range(n_replications):
        r_none = run_single(base.with_(scheme="NONE"), rep)
        r_all = run_single(base.with_(scheme="ALL"), rep)
        none_sizes.append(r_none.avg_max_queue_length)
        all_sizes.append(r_all.avg_max_queue_length)
    return QueueSizeComparison(
        n_clusters=n_clusters,
        duration_h=duration / 3600.0,
        avg_max_queue_none=float(np.mean(none_sizes)),
        avg_max_queue_all=float(np.mean(all_sizes)),
    )
