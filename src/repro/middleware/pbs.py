"""PBS-like batch-scheduler daemon cost model (Figure 5 substitute).

The paper measured a real OpenPBS 2.3.16 + Maui 3.2.6 installation on a
1 GHz Pentium III: with an empty queue the daemon sustains ≈11 job
submissions plus ≈11 cancellations per second; with 20 000 pending
requests it drops to ≈5+5 per second, decaying "sharply at first and
then slower, in a somewhat exponential manner".

We model the daemon's per-operation service time as a function of the
current queue size with exactly that shape::

    throughput(q) = T_inf + (T_0 - T_inf) · exp(-q / q_scale)

calibrated to the paper's two anchor points (and a mid-curve reading of
Figure 5), and drive it through the same saturation churn protocol the
paper used (see :mod:`repro.middleware.churn`).  The model also carries
the measurement noise ("non-deterministic load on the front-end node")
and the memory-leak failure the paper reports (runs at the largest
queue sizes died when the scheduler process ran out of memory).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np
from scipy.optimize import curve_fit

#: paper anchor: submissions/second (and cancellations/second) at q=0
PAPER_THROUGHPUT_EMPTY = 11.0
#: paper anchor: same at q=20 000
PAPER_THROUGHPUT_20K = 5.0
#: queue size at which Figure 5's sharp initial drop has mostly played out
PAPER_DECAY_SCALE = 6000.0


def throughput_model(q, t_inf, t_0, q_scale):
    """Sustainable submission (= cancellation) rate at queue size ``q``."""
    q = np.asarray(q, dtype=float)
    return t_inf + (t_0 - t_inf) * np.exp(-q / q_scale)


@dataclass(frozen=True)
class PBSDaemonModel:
    """Queue-size-dependent service-time model of a PBS/Maui daemon.

    Parameters
    ----------
    t_0:
        Submission throughput (per second) with an empty queue.  The
        daemon handles one cancellation per submission in the churn
        protocol, so the raw operation rate is ``2·t_0``.
    t_inf:
        Asymptotic throughput as the queue grows without bound.
    q_scale:
        Exponential decay scale of the throughput in queue entries.
    noise_cv:
        Coefficient of variation of multiplicative measurement noise
        (models the paper's "mostly quiescent" front-end).
    oom_queue_size:
        If set, experiments at queue sizes above this may be cut short
        by the daemon leaking memory (the missing points on some of the
        paper's curves); see :meth:`oom_probability`.
    """

    t_0: float = PAPER_THROUGHPUT_EMPTY
    t_inf: float = 4.6
    q_scale: float = PAPER_DECAY_SCALE
    noise_cv: float = 0.04
    oom_queue_size: Optional[float] = 15000.0

    def __post_init__(self) -> None:
        if self.t_0 <= 0 or self.t_inf <= 0:
            raise ValueError("throughputs must be positive")
        if self.t_inf > self.t_0:
            raise ValueError(
                f"t_inf {self.t_inf} exceeds empty-queue throughput {self.t_0}"
            )
        if self.q_scale <= 0:
            raise ValueError(f"q_scale must be positive, got {self.q_scale}")

    def throughput(self, queue_size: float) -> float:
        """Sustainable submissions/second (= cancellations/second)."""
        if queue_size < 0:
            raise ValueError(f"queue size must be >= 0, got {queue_size}")
        return float(throughput_model(queue_size, self.t_inf, self.t_0, self.q_scale))

    def op_service_time(self, queue_size: float) -> float:
        """Seconds the daemon spends on one submit or one cancel.

        A throughput of T submission+cancellation *pairs* per second
        means 2·T individual operations per second.
        """
        return 1.0 / (2.0 * self.throughput(queue_size))

    def noisy_op_service_time(
        self, queue_size: float, rng: np.random.Generator
    ) -> float:
        """Service time with multiplicative front-end noise."""
        base = self.op_service_time(queue_size)
        if self.noise_cv <= 0:
            return base
        factor = max(rng.normal(1.0, self.noise_cv), 0.1)
        return base * factor

    def oom_probability(self, queue_size: float, hours: float) -> float:
        """Chance a ``hours``-long run at ``queue_size`` dies of the leak.

        Zero below ``oom_queue_size``; above it, grows with both queue
        size and experiment duration (the paper lost the high-queue
        points of some 12-hour runs).
        """
        if self.oom_queue_size is None or queue_size <= self.oom_queue_size:
            return 0.0
        excess = (queue_size - self.oom_queue_size) / self.oom_queue_size
        p = min(1.0, 0.15 * excess * (hours / 12.0))
        return float(p)


def fit_throughput_curve(
    queue_sizes: Sequence[float], throughputs: Sequence[float]
) -> PBSDaemonModel:
    """Recover model parameters from (queue size, throughput) samples.

    This is the calibration path: digitise a measured curve (e.g. the
    paper's Figure 5, or a fresh measurement of a local PBS install) and
    fit the three-parameter exponential.
    """
    q = np.asarray(queue_sizes, dtype=float)
    t = np.asarray(throughputs, dtype=float)
    if q.size != t.size or q.size < 3:
        raise ValueError("need >= 3 matching samples to fit 3 parameters")
    p0 = (float(t.min()), float(t.max()), float(max(q.max() / 3.0, 1.0)))
    bounds = ([0.1, 0.1, 1.0], [1000.0, 1000.0, 1e7])
    (t_inf, t_0, q_scale), _ = curve_fit(
        throughput_model, q, t, p0=p0, bounds=bounds, maxfev=20000
    )
    return PBSDaemonModel(t_0=float(t_0), t_inf=float(t_inf), q_scale=float(q_scale))


#: Anchor points read off the paper's Figure 5 (average curve).
PAPER_FIGURE5_ANCHORS: tuple[tuple[float, float], ...] = (
    (0.0, 11.0),
    (1000.0, 9.8),
    (2500.0, 8.6),
    (5000.0, 7.3),
    (10000.0, 6.0),
    (15000.0, 5.4),
    (20000.0, 5.0),
)


def paper_calibrated_model(**overrides) -> PBSDaemonModel:
    """The daemon model fit to the paper's Figure 5 anchor points."""
    q, t = zip(*PAPER_FIGURE5_ANCHORS)
    fitted = fit_throughput_curve(q, t)
    if overrides:
        import dataclasses

        fitted = dataclasses.replace(fitted, **overrides)
    return fitted
