"""Section 4: impact of redundant requests on system load.

Scheduler-daemon throughput under churn (Figure 5), middleware and
network capacity models, and the r < 30 / r < 3 capacity analysis.
"""

from .capacity import (
    ASSUMED_QUEUE_DEPTH,
    PEAK_IAT,
    CapacityReport,
    capacity_report,
    max_redundancy,
    per_cluster_cancellation_rate,
    per_cluster_submission_rate,
)
from .churn import (
    ChurnSample,
    average_curve,
    churn_curve,
    measure_real_scheduler_throughput,
    run_churn_experiment,
)
from .gram import (
    GSOAP_TX_PER_SEC,
    GT4_WSGRAM_TX_PER_MIN,
    MiddlewareModel,
    NetworkModel,
    gsoap_model,
    gt4_wsgram_model,
)
from .loadstudy import (
    QueueGrowth,
    QueueSizeComparison,
    compare_max_queue_sizes,
    measure_queue_growth,
    queue_growth_vs_cluster_size,
)
from .pbs import (
    PAPER_FIGURE5_ANCHORS,
    PBSDaemonModel,
    fit_throughput_curve,
    paper_calibrated_model,
    throughput_model,
)
from .pipeline import (
    PipelineResult,
    StageStats,
    redundancy_sweep,
    simulate_submission_pipeline,
)

__all__ = [
    "PBSDaemonModel",
    "fit_throughput_curve",
    "paper_calibrated_model",
    "throughput_model",
    "PAPER_FIGURE5_ANCHORS",
    "ChurnSample",
    "run_churn_experiment",
    "churn_curve",
    "average_curve",
    "measure_real_scheduler_throughput",
    "MiddlewareModel",
    "NetworkModel",
    "gt4_wsgram_model",
    "gsoap_model",
    "GT4_WSGRAM_TX_PER_MIN",
    "GSOAP_TX_PER_SEC",
    "CapacityReport",
    "capacity_report",
    "max_redundancy",
    "per_cluster_submission_rate",
    "per_cluster_cancellation_rate",
    "PEAK_IAT",
    "ASSUMED_QUEUE_DEPTH",
    "QueueGrowth",
    "measure_queue_growth",
    "queue_growth_vs_cluster_size",
    "QueueSizeComparison",
    "compare_max_queue_sizes",
    "PipelineResult",
    "StageStats",
    "simulate_submission_pipeline",
    "redundancy_sweep",
]
