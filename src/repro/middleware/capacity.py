"""Section 4's back-of-the-envelope capacity analysis, as code.

Setting: N clusters, mean job inter-arrival time ``iat`` at each
cluster, every job using ``r`` redundant requests.  In steady state
each cluster receives ``r/iat`` submissions and ``(r-1)/iat``
cancellations per second.  A component sustaining S submissions (and S
cancellations) per second therefore tolerates redundancy up to
``r <= S · iat``.

The paper's two headline numbers fall straight out:

* batch scheduler with a 10 000-deep queue → ≈6 submissions/s →
  **r < 30** at the 5-second peak-hour inter-arrival;
* GT4 WS-GRAM → 0.5 submissions/s → **r < 3**: the middleware, not the
  scheduler, is the bottleneck.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .gram import MiddlewareModel, NetworkModel, gt4_wsgram_model
from .pbs import PBSDaemonModel, paper_calibrated_model

#: the paper's peak-hour mean inter-arrival time (seconds)
PEAK_IAT = 5.0
#: the conservatively assumed queue depth for the scheduler bound
ASSUMED_QUEUE_DEPTH = 10_000


def per_cluster_submission_rate(redundancy: int, iat: float) -> float:
    """Submissions per second arriving at each cluster: r / iat."""
    if redundancy < 1:
        raise ValueError(f"redundancy must be >= 1, got {redundancy}")
    if iat <= 0:
        raise ValueError(f"iat must be positive, got {iat}")
    return redundancy / iat


def per_cluster_cancellation_rate(redundancy: int, iat: float) -> float:
    """Cancellations per second at each cluster: (r - 1) / iat."""
    if redundancy < 1:
        raise ValueError(f"redundancy must be >= 1, got {redundancy}")
    if iat <= 0:
        raise ValueError(f"iat must be positive, got {iat}")
    return (redundancy - 1) / iat


def max_redundancy(submission_throughput: float, iat: float) -> int:
    """Largest r with r/iat <= sustainable submissions/second.

    Note the paper states the constraint on the submission stream
    (r/iat) and reads the bound as a strict "r < bound"; we return the
    largest tolerable integer r.
    """
    if submission_throughput <= 0:
        raise ValueError(
            f"throughput must be positive, got {submission_throughput}"
        )
    if iat <= 0:
        raise ValueError(f"iat must be positive, got {iat}")
    return int(math.floor(submission_throughput * iat))


@dataclass(frozen=True)
class CapacityReport:
    """Who is the bottleneck, and at what redundancy each layer saturates."""

    iat: float
    queue_depth: int
    scheduler_throughput: float
    scheduler_max_redundancy: int
    middleware_throughput: float
    middleware_max_redundancy: int
    network_max_tx_per_sec: float

    @property
    def bottleneck(self) -> str:
        """The layer that saturates first as redundancy grows."""
        layers = {
            "scheduler": self.scheduler_max_redundancy,
            "middleware": self.middleware_max_redundancy,
        }
        return min(layers, key=layers.get)

    def lines(self) -> list[str]:
        return [
            f"mean inter-arrival time:        {self.iat:.2f} s",
            f"assumed queue depth:            {self.queue_depth}",
            f"scheduler submissions/s:        {self.scheduler_throughput:.2f}"
            f"  -> r < {self.scheduler_max_redundancy + 1}",
            f"middleware submissions/s:       {self.middleware_throughput:.2f}"
            f"  -> r < {self.middleware_max_redundancy + 1}",
            f"network capacity (tx/s):        {self.network_max_tx_per_sec:.0f}",
            f"bottleneck:                     {self.bottleneck}",
        ]


def capacity_report(
    scheduler: PBSDaemonModel | None = None,
    middleware: MiddlewareModel | None = None,
    network: NetworkModel | None = None,
    iat: float = PEAK_IAT,
    queue_depth: int = ASSUMED_QUEUE_DEPTH,
) -> CapacityReport:
    """Reproduce Section 4's capacity analysis end to end.

    With all defaults this returns the paper's numbers: the scheduler
    tolerates r < 30 while the middleware tolerates r < 3, making the
    middleware the system bottleneck.
    """
    scheduler = scheduler or paper_calibrated_model()
    middleware = middleware or gt4_wsgram_model()
    network = network or NetworkModel()
    sched_rate = scheduler.throughput(queue_depth)
    mw_rate = middleware.max_submission_rate()
    return CapacityReport(
        iat=iat,
        queue_depth=queue_depth,
        scheduler_throughput=sched_rate,
        scheduler_max_redundancy=max_redundancy(sched_rate, iat),
        middleware_throughput=mw_rate,
        middleware_max_redundancy=max_redundancy(mw_rate, iat),
        network_max_tx_per_sec=network.max_tx_per_sec,
    )
