"""Single-experiment driver: build the platform, run one replication.

The protocol follows Section 3.3 of the paper exactly:

1. generate one Lublin job stream per cluster (common random numbers:
   the stream depends only on the replication and cluster indices);
2. each job submits one request to its local cluster and, if its user
   employs redundancy, copies to scheme-chosen remote clusters;
3. the first copy to start wins, the rest are cancelled;
4. the simulation runs until every job completes (the 6-hour window
   bounds *submissions*, not executions);
5. per-job outcomes and per-queue statistics are extracted.
"""

from __future__ import annotations

# repro-lint: disable-file=DET001 -- perf_counter here only stamps the
# generate/simulate/aggregate phase timings (wall_time_s metrics); no
# host time ever reaches the simulated trajectory
import time
from typing import TYPE_CHECKING, Optional

import numpy as np

if TYPE_CHECKING:  # typing-only: obs/sanitize import core at runtime
    from ..obs.probes import ProbeSampler
    from ..obs.trace import TraceRecorder
    from ..sanitize.auditor import InvariantAuditor

from ..cluster.platform import HETEROGENEOUS_NODE_CHOICES, Platform
from ..contracts import declared_pure
from ..faults import FaultInjector
from ..sim.engine import Simulator
from ..sim.rng import RngFactory
from functools import lru_cache

from ..workload.estimates import make_estimate_model
from ..workload.lublin import LublinParams, scaled_for_load
from ..workload.regimes import (
    ServiceRegime,
    make_service_regime,
    regime_scaled_for_load,
)


@lru_cache(maxsize=128)
def _calibrated_params(
    base: LublinParams, reference_nodes: int, rho: float
) -> LublinParams:
    """Memoised load calibration (the Monte-Carlo fit is deterministic)."""
    return scaled_for_load(rho, reference_nodes, base)
from ..workload.stream import StreamJob, generate_platform_streams, merge_streams


@lru_cache(maxsize=32)
def _cached_streams(
    seed: int,
    replication: int,
    node_counts: "tuple[int, ...]",
    duration: float,
    params: "tuple[LublinParams, ...]",
    estimates: str,
    adoption_probability: float,
    regime: Optional[ServiceRegime] = None,
) -> "tuple[list[StreamJob], ...]":
    """Memoised per-replication workload streams.

    The streams implement common random numbers: they depend only on the
    seed, the replication and the workload knobs listed here — never on
    the redundancy scheme, targets, faults or latencies.  A scheme
    comparison therefore re-simulates the *same* stream once per scheme,
    and regenerating it (Lublin sampling is a per-job Python loop) used
    to be ~10%% of every simulation.  Safe to share because
    :class:`~repro.workload.stream.StreamJob` is frozen and consumers
    only read the lists.
    """
    return tuple(
        generate_platform_streams(
            RngFactory(seed),
            replication,
            list(node_counts),
            duration,
            params_per_cluster=list(params),
            estimate_model=make_estimate_model(estimates),
            adoption_probability=adoption_probability,
            regime=regime,
        )
    )
from .config import ExperimentConfig
from .coordinator import Coordinator, RedundantJob
from .results import ClusterOutcome, ExperimentResult, JobOutcome
from .schemes import TargetSelector, geometric_bias_weights, get_scheme


def _resolve_node_counts(
    config: ExperimentConfig, factory: RngFactory, replication: int
) -> list[int]:
    if config.heterogeneous:
        rng = factory.generator("rep", replication, "platform")
        return [
            int(rng.choice(HETEROGENEOUS_NODE_CHOICES))
            for _ in range(config.n_clusters)
        ]
    if isinstance(config.nodes_per_cluster, int):
        return [config.nodes_per_cluster] * config.n_clusters
    return list(config.nodes_per_cluster)


def _resolve_regime(
    config: ExperimentConfig, node_counts: list[int]
) -> Optional[ServiceRegime]:
    """Resolve and load-calibrate the config's service regime (if any).

    Calibration targets the homogeneous reference cluster (the mean
    node count, matching the Lublin calibration's reference); on
    heterogeneous platforms per-cluster arrival rates still vary, so —
    as with Lublin — ``offered_load`` is the *reference* load there.
    """
    regime = make_service_regime(config.service_regime)
    if regime is None or config.offered_load is None:
        return regime
    base = LublinParams()
    if config.mean_interarrival is not None:
        base = base.with_mean_interarrival(config.mean_interarrival)
    reference_nodes = int(round(np.mean(node_counts)))
    return regime_scaled_for_load(
        regime, config.offered_load, reference_nodes, base
    )


def _resolve_workload_params(
    config: ExperimentConfig,
    factory: RngFactory,
    replication: int,
    node_counts: list[int],
    calibrate_load: bool = True,
) -> list[LublinParams]:
    base = LublinParams()
    if config.mean_interarrival is not None:
        base = base.with_mean_interarrival(config.mean_interarrival)
    if config.offered_load is not None and calibrate_load:
        # Skipped when a service regime is active: the regime replaces
        # the runtime marginal, so Lublin's runtime_scale is inert and
        # the regime carries its own calibration (_resolve_regime).
        reference_nodes = int(round(np.mean(node_counts)))
        base = _calibrated_params(base, reference_nodes, config.offered_load)
    if not config.heterogeneous:
        return [base] * config.n_clusters
    rng = factory.generator("rep", replication, "iat")
    lo, hi = config.interarrival_range
    return [
        base.with_mean_interarrival(float(rng.uniform(lo, hi)))
        for _ in range(config.n_clusters)
    ]


def _job_outcome(job: RedundantJob) -> JobOutcome:
    winner = job.winner
    assert winner is not None and winner.end_time is not None, (
        f"job {job.job_id} did not complete"
    )
    local = job.requests[0]
    predicted_local = None
    if local.predicted_start_at_submit is not None:
        predicted_local = local.predicted_start_at_submit - job.spec.arrival
    predictions = [
        r.predicted_start_at_submit - job.spec.arrival
        for r in job.requests
        if r.predicted_start_at_submit is not None
    ]
    predicted_min = min(predictions) if predictions else None
    return JobOutcome(
        job_id=job.job_id,
        origin=job.spec.origin,
        winner_cluster=winner.cluster.cluster.index,
        nodes=job.spec.nodes,
        runtime=job.spec.runtime,
        requested_time=job.spec.requested_time,
        submit_time=job.spec.arrival,
        start_time=winner.start_time,
        end_time=winner.end_time,
        uses_redundancy=job.uses_redundancy,
        n_copies=job.n_copies,
        predicted_wait_local=predicted_local,
        predicted_wait_min=predicted_min,
    )


@declared_pure
def run_single(
    config: ExperimentConfig,
    replication: int = 0,
    check_invariants: bool = False,
    tracer: Optional[TraceRecorder] = None,
    auditor: Optional[InvariantAuditor] = None,
    online: bool = True,
    probe: "Optional[ProbeSampler]" = None,
) -> ExperimentResult:
    """Run one replication of ``config`` and return its outcomes.

    ``check_invariants`` additionally audits node accounting and the
    first-start-wins protocol after the run (used by tests).

    ``tracer`` optionally attaches a lifecycle-event recorder (see
    :class:`repro.obs.trace.TraceRecorder`) to every scheduler and the
    coordinator.  The default ``None`` keeps tracing a strict no-op:
    no recorder is allocated, no RNG draws are added, and the simulated
    trajectory is bit-identical to an untraced run.

    ``auditor`` optionally attaches a runtime invariant auditor (see
    :class:`repro.sanitize.auditor.InvariantAuditor`) to the kernel,
    every scheduler and the coordinator, and runs its end-of-run audit
    after :meth:`~repro.core.coordinator.Coordinator.finalize`.  Same
    strict-no-op discipline as ``tracer`` when ``None``.

    ``online`` (default on) attaches the O(1)-memory streaming
    estimators of :mod:`repro.obs.stream` to the coordinator and stores
    their snapshot as ``result.online_metrics``.  The estimators add no
    events and draw no RNG, so the trajectory — every other result
    field — is bit-identical either way; ``online=False`` registers no
    hooks at all and leaves ``online_metrics`` as ``None``.

    ``probe`` optionally attaches a sim-time state sampler (see
    :class:`repro.obs.probes.ProbeSampler`); the sampler's rows are the
    caller's to collect.  ``None`` (the default) schedules nothing.
    """
    t0 = time.perf_counter()
    factory = RngFactory(config.seed)
    sim = Simulator()
    node_counts = _resolve_node_counts(config, factory, replication)
    platform = Platform(
        sim, node_counts, config.algorithm, config.scheduler_kwargs
    )
    if tracer is not None:
        platform.attach_tracer(tracer)
    if auditor is not None:
        sim.auditor = auditor
        platform.attach_auditor(auditor)
    regime = _resolve_regime(config, node_counts)
    params = _resolve_workload_params(
        config, factory, replication, node_counts,
        calibrate_load=regime is None,
    )
    streams = _cached_streams(
        config.seed,
        replication,
        tuple(node_counts),
        config.duration,
        tuple(params),
        config.estimates,
        config.adoption_probability,
        regime,
    )
    scheme = get_scheme(config.scheme)
    weights = (
        geometric_bias_weights(config.n_clusters, config.target_bias_ratio)
        if config.target_bias_ratio is not None
        else None
    )
    selector = TargetSelector(
        scheme,
        node_counts,
        rng=factory.generator("rep", replication, "targets"),
        cluster_weights=weights,
        placement=config.placement,
    )
    injector = None
    if config.faults is not None and config.faults.enabled:
        injector = FaultInjector(
            config.faults, factory.generator("rep", replication, "faults")
        )
    online_metrics = None
    if online:
        # Runtime import: obs.stream is dependency-free, while this
        # module is imported *by* repro.obs — a top-level import either
        # way would be circular.
        from ..obs.stream import OnlineMetrics

        online_metrics = OnlineMetrics()
    coordinator = Coordinator(
        sim,
        platform,
        cancellation_latency=config.cancellation_latency,
        remote_inflation=config.remote_inflation,
        fault_injector=injector,
        tracer=tracer,
        auditor=auditor,
        policy=config.cancellation_policy,
        online=online_metrics,
    )
    if probe is not None:
        probe.install(sim, platform, coordinator)
    if injector is not None:
        # Outages can only *begin* inside the submission window; an
        # outage near the edge may extend past it (and resolve during a
        # drain).
        injector.install(sim, platform, coordinator, horizon=config.duration)
    t_generated = time.perf_counter()
    for spec in merge_streams(streams):
        targets = selector.choose(spec.origin, spec.nodes, spec.uses_redundancy)
        coordinator.schedule_job(spec, targets)
    if config.drain:
        sim.run()
    else:
        sim.run(until=config.duration)
    # Purge losers whose delayed cancellation was scheduled past the
    # horizon (a no-op at zero latency without faults).
    coordinator.finalize()
    t_simulated = time.perf_counter()

    if auditor is not None:
        auditor.final_check(platform, coordinator)
    if check_invariants:
        platform.check_invariants()
        coordinator.check_invariants()
    if config.drain:
        # A job abandoned to faults (every copy lost, none started) can
        # legitimately never finish; only jobs still holding scheduler
        # state indicate a deadlock.  Without faults the two sets are
        # identical, preserving the original check exactly.
        stuck = [
            j
            for j in coordinator.unfinished_jobs()
            if any(r.is_active for r in j.requests)
        ]
        if stuck:
            raise RuntimeError(
                f"{len(stuck)} jobs never completed — simulation deadlock "
                f"(first: job {stuck[0].job_id})"
            )

    completed = [j for j in coordinator.jobs if j.completed]
    result = ExperimentResult(
        scheme=config.scheme,
        algorithm=config.algorithm,
        n_clusters=config.n_clusters,
        replication=replication,
        jobs=[_job_outcome(j) for j in completed],
        n_submitted_jobs=len(coordinator.jobs),
        clusters=[
            ClusterOutcome(
                cluster=c.index,
                total_nodes=c.total_nodes,
                submitted=s.stats.submitted,
                cancelled=s.stats.cancelled,
                started=s.stats.started,
                completed=s.stats.completed,
                max_queue_length=s.stats.max_queue_length,
                dropped=s.stats.dropped,
                backfilled=s.stats.backfilled,
            )
            for c, s in zip(platform.clusters, platform.schedulers)
        ],
        total_requests=coordinator.total_requests,
        total_cancellations=coordinator.total_cancellations,
        lost_cancellations=coordinator.lost_cancellations,
        failed_submissions=coordinator.failed_submissions,
        resubmissions=coordinator.resubmissions,
        abandoned_jobs=coordinator.abandoned_jobs(),
        outages=injector.outages_started if injector is not None else 0,
        wasted_node_seconds=coordinator.wasted_node_seconds(sim.now),
        wall_time_s=time.perf_counter() - t0,
        events_executed=sim.events_executed,
        heap_compactions=sim.compactions,
        phase_timings={
            "generate_s": t_generated - t0,
            "simulate_s": t_simulated - t_generated,
            "aggregate_s": time.perf_counter() - t_simulated,
        },
        online_metrics=(
            online_metrics.to_dict() if online_metrics is not None else None
        ),
    )
    return result
