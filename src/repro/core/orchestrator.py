"""Sweep orchestrator: owns the task grid; executors own the running.

The engine in :mod:`repro.core.parallel` used to be one function that
both *planned* a sweep (dedup, cache resolution, chunking, reassembly)
and *executed* it (serial loop or process pool).  This module extracts
the planning half into an :class:`Orchestrator` so execution becomes a
pluggable strategy (:mod:`repro.core.executors`): the same orchestrator
state drives the in-process path, the process pool, and the HTTP
work-queue behind ``repro serve`` — and, because every completed task
is recorded through one :meth:`Orchestrator.record` path, progress,
caching, journaling and deterministic reassembly behave identically no
matter who did the computing.

Responsibilities, in execution order:

1. **dedup** — duplicate configs collapse to one unique-config table
   (configs are frozen dataclasses; equality is exact);
2. **cache resolution** — every ``(config, replication)`` is looked up
   before any work is scheduled; hits are recorded immediately;
3. **chunk planning** — remaining tasks are grouped into contiguous
   chunks (amortising per-task dispatch cost) that executors lease or
   submit as units;
4. **recording** — executors hand results back; the orchestrator
   stores them into the cache, feeds the heartbeat, appends to the run
   journal, and emits progress lines;
5. **reassembly** — results are reassembled by ``(config_index,
   replication)`` key, so output order never depends on executor
   scheduling.

``run_single`` being a pure function of ``(config, replication)`` is
the invariant that makes 2, 4 and 5 sound; a sweep interrupted at any
point can therefore be *resumed* by building a fresh orchestrator over
the same configs with the same (disk) cache — completed work resolves
in step 2 and only incomplete chunks reach an executor again.
"""

from __future__ import annotations

# repro-lint: disable-file=DET001 -- perf_counter here only feeds the
# cache_resolve_s/cache_store_s engine metrics and the display-only
# heartbeat ETA; task results are keyed and reassembled by
# (config, replication), never by host time

import logging
import math
import threading
import time
from typing import TYPE_CHECKING, Callable, Optional, Sequence

if TYPE_CHECKING:  # typing-only: obs imports core at runtime
    from ..obs.manifest import RunJournal
    from ..obs.metrics import MetricsRegistry
    from .executors import Executor

from .cache import ResultCache, config_fingerprint
from .config import ExperimentConfig
from .results import ExperimentResult

_log = logging.getLogger("repro.core.orchestrator")

#: one grid task: (index into the unique-config table, replication)
Task = tuple[int, int]

ProgressFn = Callable[[str], None]
RunnerFn = Callable[[ExperimentConfig, int], ExperimentResult]


class TaskError(RuntimeError):
    """A grid task failed, identified by its ``(config, replication)``.

    All constructor arguments flow through ``RuntimeError.__init__`` so
    the exception survives the pickle round-trip from worker processes.
    """

    def __init__(self, description: str, replication: int, cause: str) -> None:
        super().__init__(description, replication, cause)
        self.description = description
        self.replication = replication
        self.cause = cause

    def __str__(self) -> str:
        return (
            f"task ({self.description}, rep {self.replication}) "
            f"failed: {self.cause}"
        )


class SweepCancelled(RuntimeError):
    """The sweep was cancelled before completion (service cancel path)."""


class GridStats:
    """Failure/retry accounting for grid runs (surfaces in bench JSON)."""

    def __init__(self) -> None:
        #: failure counts keyed by ``"<config.describe()> rep <r>"``
        self.failures: dict[str, int] = {}
        self.retries = 0

    def record_failure(self, key: str) -> None:
        self.failures[key] = self.failures.get(key, 0) + 1

    @property
    def total_failures(self) -> int:
        return sum(self.failures.values())

    def as_dict(self) -> dict:
        return {
            "task_failures": dict(self.failures),
            "task_retries": self.retries,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GridStats({self.as_dict()})"


def fmt_eta(seconds: float) -> str:
    """Compact ETA rendering: ``42s``, ``3m10s``, ``2h05m``."""
    seconds = max(0.0, seconds)
    if seconds < 60.0:
        return f"{seconds:.0f}s"
    minutes, secs = divmod(int(round(seconds)), 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


def default_chunksize(n_tasks: int, n_workers: int) -> int:
    """Chunk so each worker sees a few chunks (load balance vs IPC cost)."""
    if n_tasks <= 0:
        return 1
    return max(1, math.ceil(n_tasks / (max(1, n_workers) * 4)))


class Heartbeat:
    """Live telemetry folded into progress lines and service status.

    Tracks wall-clock throughput (for the ETA), the evolving cache
    hit-rate, and a count-weighted running estimate of the online
    p50/p99 stretch read from each result's streaming-estimator payload
    (see :mod:`repro.obs.stream`).  Arrival order varies with executor
    scheduling, so the heartbeat is display-only — the authoritative
    merged statistics are computed from the deterministically ordered
    results after reassembly.

    ``pending`` is the number of tasks that will actually be *computed*
    (everything the cache could not serve).  The ETA multiplies the
    observed per-computation rate by the computed work still
    outstanding — never by *all* remaining tasks: on a warm-cache or
    resumed run most remaining tasks are satisfied instantly, and
    scaling the simulation rate across them overestimated the ETA by
    the inverse cache-hit-rate.
    """

    def __init__(
        self, total: int, cache_hits: int = 0, pending: Optional[int] = None
    ) -> None:
        self.total = total
        self.cache_hits = cache_hits
        self.pending = (total - cache_hits) if pending is None else pending
        self.computed = 0
        self._t0 = time.perf_counter()
        self._weight = 0.0
        self._p50_sum = 0.0
        self._p99_sum = 0.0

    @property
    def done(self) -> int:
        return self.cache_hits + self.computed

    def observe(self, result: object, computed: bool) -> None:
        """Fold one finished task in (``computed=False`` = cache hit).

        Tolerates every shape the NaN-free online-payload contract
        allows (undefined serialises as ``None``, at any level): a
        stretch bank with a positive count but ``None`` quantiles — or
        a ``None`` metrics/quantiles mapping altogether — skips the
        sample instead of raising mid-progress-line.
        """
        if computed:
            self.computed += 1
        else:
            self.cache_hits += 1
        # Custom runners return wrapper payloads (TracedRun/ProbedRun
        # hold the ExperimentResult one level down); anything without
        # online metrics simply doesn't feed the stretch estimate.
        payload = getattr(result, "online_metrics", None)
        if payload is None:
            inner = getattr(result, "result", None)
            payload = getattr(inner, "online_metrics", None)
        if not isinstance(payload, dict):
            return
        metrics = payload.get("metrics")
        if not isinstance(metrics, dict):
            return
        stretch = metrics.get("stretch")
        if not isinstance(stretch, dict) or not stretch.get("count"):
            return
        n = stretch["count"]
        quantiles = stretch.get("quantiles")
        if not isinstance(quantiles, dict):
            return
        p50, p99 = quantiles.get("p50"), quantiles.get("p99")
        if p50 is None or p99 is None or p50 != p50 or p99 != p99:
            return
        self._weight += n
        self._p50_sum += n * p50
        self._p99_sum += n * p99

    def eta_seconds(self) -> Optional[float]:
        """Projected seconds until the grid completes, if estimable.

        Based on computed work only: ``rate`` is wall-clock per
        *simulated* task, and it multiplies the simulations still
        outstanding (``pending - computed``), not every remaining task.
        """
        remaining = self.pending - self.computed
        if self.computed <= 0 or remaining <= 0:
            return None
        rate = (time.perf_counter() - self._t0) / self.computed
        return rate * remaining

    def suffix(self) -> str:
        done = self.done
        fields: list[str] = []
        eta = self.eta_seconds()
        if eta is not None and done < self.total:
            fields.append(f"eta {fmt_eta(eta)}")
        if self.cache_hits > 0 and done > 0:
            fields.append(f"cache {100.0 * self.cache_hits / done:.0f}%")
        if self._weight > 0.0:
            fields.append(
                f"stretch p50 {self._p50_sum / self._weight:.3g} "
                f"p99 {self._p99_sum / self._weight:.3g}"
            )
        return " | " + " | ".join(fields) if fields else ""

    def snapshot(self) -> dict:
        """JSON-able status view (the service's job-status payload)."""
        done = self.done
        return {
            "total": self.total,
            "done": done,
            "computed": self.computed,
            "cache_hits": self.cache_hits,
            "pending_computed": max(0, self.pending - self.computed),
            "cache_hit_rate": (self.cache_hits / done) if done else None,
            "eta_s": self.eta_seconds(),
            "stretch_p50": (
                self._p50_sum / self._weight if self._weight > 0 else None
            ),
            "stretch_p99": (
                self._p99_sum / self._weight if self._weight > 0 else None
            ),
        }


class Orchestrator:
    """One sweep grid: plan it, hand chunks to an executor, reassemble.

    The orchestrator is executor-agnostic and thread-safe on its
    recording surface: :meth:`record`/:meth:`complete_chunk` may be
    called from executor threads while :meth:`status` is read from a
    service thread.  Executors read :attr:`unique`, :attr:`runner` and
    :attr:`stats`, pull work via :meth:`pending_chunks`, and report
    through :meth:`complete_chunk` (or :meth:`record` per task).
    """

    def __init__(
        self,
        configs: Sequence[ExperimentConfig],
        n_replications: int,
        first_replication: int = 0,
        cache: Optional[ResultCache] = None,
        chunksize: Optional[int] = None,
        n_workers: int = 1,
        progress: Optional[ProgressFn] = None,
        runner: Optional[RunnerFn] = None,
        stats: Optional[GridStats] = None,
        metrics: Optional[MetricsRegistry] = None,
        journal: Optional[RunJournal] = None,
    ) -> None:
        if n_replications < 1:
            raise ValueError(f"need >= 1 replication, got {n_replications}")
        self.n_replications = n_replications
        self.first_replication = first_replication
        self.cache = cache
        self.chunksize = chunksize
        self.n_workers = max(1, int(n_workers))
        self.progress = progress
        self.runner = runner
        self.stats = stats
        self.metrics = metrics
        self.journal = journal
        #: cooperative cancellation flag; executors poll it between
        #: tasks/chunks and raise :class:`SweepCancelled`
        self.abort = threading.Event()

        # Deduplicate the grid (frozen dataclasses hash by content).
        self.unique: list[ExperimentConfig] = []
        self._slots: list[int] = []
        index_of: dict[ExperimentConfig, int] = {}
        for cfg in configs:
            ui = index_of.get(cfg)
            if ui is None:
                ui = index_of[cfg] = len(self.unique)
                self.unique.append(cfg)
            self._slots.append(ui)

        self.reps = range(
            first_replication, first_replication + n_replications
        )
        self._grid: list[dict[int, ExperimentResult]] = [
            {} for _ in self.unique
        ]
        self.fingerprints: list[str] = []
        self._chunks: dict[int, list[Task]] = {}
        self._open_chunks: dict[int, set[Task]] = {}
        self._lock = threading.Lock()
        self.heartbeat = Heartbeat(0)
        self._prepared = False

    # -- planning --------------------------------------------------------

    @property
    def total(self) -> int:
        """Grid size after dedup: unique configs x replications."""
        return len(self.unique) * self.n_replications

    @property
    def done(self) -> int:
        with self._lock:
            return sum(len(per) for per in self._grid)

    @property
    def n_pending(self) -> int:
        return self.total - self.done

    def prepare(self) -> "Orchestrator":
        """Resolve the cache, seed the heartbeat, plan the chunks.

        Idempotent; every execution path calls it before pulling work.
        Cache resolution and chunk planning run on locals; the shared
        grid/heartbeat/chunk state is installed under the lock in one
        step at the end, so concurrent readers (``status()``, the
        ``done`` property) never observe a half-prepared orchestrator.
        """
        with self._lock:
            if self._prepared:
                return self
            self._prepared = True
        t_resolve = time.perf_counter()
        fingerprints = [config_fingerprint(cfg) for cfg in self.unique]
        tasks: list[Task] = []
        hits: list[tuple[Task, ExperimentResult]] = []
        for ui, fp in enumerate(fingerprints):
            for rep in self.reps:
                hit = (
                    self.cache.get(self.unique[ui], rep, fingerprint=fp)
                    if self.cache is not None else None
                )
                if hit is not None:
                    hits.append(((ui, rep), hit))
                else:
                    tasks.append((ui, rep))

        done = self.total - len(tasks)
        heartbeat = Heartbeat(self.total, pending=len(tasks))
        for _, hit in hits:
            # Seed the live stretch estimate with what the cache
            # already knows, so the first heartbeat line reflects the
            # whole sweep (each observe also counts the cache hit).
            heartbeat.observe(hit, computed=False)
        if self.metrics is not None:
            self.metrics.add_time(
                "cache_resolve_s", time.perf_counter() - t_resolve
            )
            if self.cache is not None:
                self.metrics.inc("cache_hits", done)
                self.metrics.inc("cache_misses", len(tasks))
            self.metrics.inc("tasks_executed", len(tasks))
        _log.debug(
            "grid: %d config(s) x %d rep(s) = %d task(s), %d from cache",
            len(self.unique), self.n_replications, self.total, done,
        )
        if self.progress is not None and done > 0:
            # Without this line a fully warm rerun would print nothing
            # at all — per-task notes only cover freshly simulated work.
            self.progress(
                f"[{done}/{self.total}] {done} task(s) resolved from cache"
            )

        # Plan contiguous chunks over what is left.
        size = self.chunksize
        if size is None:
            size = default_chunksize(
                len(tasks), min(self.n_workers, max(1, len(tasks)))
            )
        chunks = {
            cid: tasks[k:k + size]
            for cid, k in enumerate(range(0, len(tasks), size))
        }
        with self._lock:
            for (ui, rep), hit in hits:
                self._grid[ui][rep] = hit
            self.fingerprints = fingerprints
            self.heartbeat = heartbeat
            self._chunks = chunks
            self._open_chunks = {
                cid: set(chunk) for cid, chunk in chunks.items()
            }
        if self.journal is not None:
            self.journal.append({
                "event": "prepared",
                "total": self.total,
                "from_cache": done,
                "pending": len(tasks),
                "chunks": len(chunks),
                "chunksize": size,
            })
        return self

    def pending_chunks(self) -> dict[int, list[Task]]:
        """Incomplete chunks, keyed by chunk id (a fresh copy)."""
        self.prepare()
        with self._lock:
            return {
                cid: list(self._chunks[cid])
                for cid in sorted(self._open_chunks)
            }

    # -- recording -------------------------------------------------------

    def record(
        self, ci: int, rep: int, result: ExperimentResult,
        computed: bool = True,
    ) -> None:
        """Accept one task result: grid, cache, heartbeat, progress.

        Idempotent: a duplicate completion (a lease that expired and
        was recomputed elsewhere — ``run_single`` is pure, so both
        copies are identical) is dropped without recounting.
        """
        with self._lock:
            if rep in self._grid[ci]:
                return
            self._grid[ci][rep] = result
            self.heartbeat.observe(result, computed=computed)
            finished: list[tuple[int, list[Task]]] = []
            for cid in list(self._open_chunks):
                tasks = self._open_chunks[cid]
                tasks.discard((ci, rep))
                if not tasks:
                    del self._open_chunks[cid]
                    finished.append((cid, list(self._chunks[cid])))
            done = self.heartbeat.done
            suffix = self.heartbeat.suffix()
            fingerprint = self.fingerprints[ci]
        # cache store, progress and journal I/O stay outside the lock:
        # only the snapshot above needs mutual exclusion
        if computed and self.cache is not None:
            t_store = time.perf_counter()
            self.cache.put(
                self.unique[ci], rep, result, fingerprint=fingerprint,
            )
            if self.metrics is not None:
                self.metrics.add_time(
                    "cache_store_s", time.perf_counter() - t_store
                )
        if self.progress is not None:
            self.progress(
                f"[{done}/{self.total}] {self.unique[ci].describe()} "
                f"rep {rep}{suffix}"
            )
        if self.journal is not None:
            for cid, chunk_tasks in finished:
                self.journal.append({
                    "event": "chunk_done",
                    "chunk": cid,
                    "tasks": [[a, b] for a, b in chunk_tasks],
                    "done": done,
                    "total": self.total,
                })

    def complete_chunk(
        self, cid: int, results: Sequence[tuple[int, int, ExperimentResult]],
    ) -> None:
        """Accept a whole chunk's results (journaled as they empty)."""
        for ci, rep, result in results:
            self.record(ci, rep, result)

    # -- execution & assembly --------------------------------------------

    def execute(self, executor: "Executor") -> list[list[ExperimentResult]]:
        """Run every pending chunk on ``executor``; return the grid."""
        self.prepare()
        with self._lock:
            has_pending = bool(self._open_chunks)
        if has_pending:
            if self.journal is not None:
                self.journal.append({
                    "event": "execute", "executor": executor.name,
                })
            executor.execute(self)
        return self.assemble()

    def assemble(self) -> list[list[ExperimentResult]]:
        """Deterministic reassembly in (config, replication) order.

        The returned list is parallel to the constructor's ``configs``;
        duplicate configs receive equal-by-value, independent lists.
        """
        with self._lock:
            missing = [
                (ui, rep)
                for ui in range(len(self.unique))
                for rep in self.reps
                if rep not in self._grid[ui]
            ]
            if missing:
                ui, rep = missing[0]
                raise TaskError(
                    self.unique[ui].describe(), rep,
                    f"result never recorded ({len(missing)} task(s) "
                    f"missing at assembly)",
                )
            per_unique = [
                [self._grid[ui][rep] for rep in self.reps]
                for ui in range(len(self.unique))
            ]
        return [list(per_unique[ui]) for ui in self._slots]

    # -- introspection ---------------------------------------------------

    def status(self) -> dict:
        """JSON-able progress snapshot (drives ``repro serve`` status)."""
        with self._lock:
            snap = self.heartbeat.snapshot()
            snap["chunks_total"] = len(self._chunks)
            snap["chunks_open"] = len(self._open_chunks)
            snap["cancelled"] = self.abort.is_set()
        return snap

    def cancel(self) -> None:
        """Request cooperative cancellation (executors poll the flag)."""
        self.abort.set()

    def check_cancelled(self) -> None:
        """Raise :class:`SweepCancelled` if cancellation was requested."""
        if self.abort.is_set():
            raise SweepCancelled("sweep cancelled")
