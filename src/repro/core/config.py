"""Experiment configuration.

One :class:`ExperimentConfig` captures everything that defines a run in
the paper's Section 3: the platform, the scheduling algorithm, the
workload parameters, the estimate regime, and the redundancy scheme in
force.  Configurations are immutable; use :meth:`ExperimentConfig.with_`
(dataclass ``replace``) to derive variants, which is how the sweeps in
:mod:`repro.analysis.registry` are expressed.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Mapping, Optional, Tuple, Union

from ..core.schemes import PLACEMENTS, get_scheme
from ..faults import FaultConfig
from ..policies.cancellation import get_cancellation_policy
from ..workload.estimates import make_estimate_model
from ..workload.regimes import make_service_regime

#: paper defaults (Section 3.3)
DEFAULT_NODES = 128
DEFAULT_DURATION = 6 * 3600.0


@dataclass(frozen=True)
class ExperimentConfig:
    """Full description of one simulated experiment.

    Attributes
    ----------
    n_clusters:
        Number of sites N (the paper sweeps 2, 3, 4, 5, 10, 20).
    nodes_per_cluster:
        Either an int (homogeneous platform) or an explicit sequence of
        per-cluster node counts.  Ignored when ``heterogeneous`` is set.
    heterogeneous:
        Sample node counts per replication from
        {16, 32, 64, 128, 256} and per-cluster mean inter-arrival times
        from ``interarrival_range`` (Table 3's setup).
    algorithm:
        ``"easy"`` (default), ``"cbf"`` or ``"fcfs"``.
    scheme:
        Redundancy scheme name: NONE, R2, R3, R4, HALF or ALL, or a
        generalised redundancy-d form (``R<k>`` for any copy count,
        ``F<fraction>`` for any platform fraction).
    cancellation_policy:
        When sibling cancellations are dispatched:
        ``"cancel-on-start"`` (default, the paper's protocol) or
        ``"cancel-on-complete"`` (losers run beside the winner until it
        finishes; see :mod:`repro.policies.cancellation`).
    placement:
        Remote-target placement: ``"uniform"`` random draws (default,
        the paper's users) or ``"balanced"`` nonadaptive least-loaded
        placement (no randomness; incompatible with
        ``target_bias_ratio``).
    service_regime:
        Runtime marginal: ``"lublin"`` (default, the paper's model),
        ``"bernoulli"`` (scaled-Bernoulli rare giants) or ``"bimodal"``
        (short/long two-point law); see :mod:`repro.workload.regimes`.
    adoption_probability:
        Fraction p of jobs whose users employ redundant requests
        (Figure 4 sweeps p; Sections 3.3's main experiments use 1.0).
    duration:
        Length of the submission window in seconds.
    drain:
        If False (default), the simulation stops at ``duration`` and
        metrics cover the jobs that completed by then — the only viable
        reading of the paper's protocol: its peak-hour workload
        overloads every cluster so heavily (queues grow ≈700
        requests/hour, Section 4.1) that draining would take simulated
        weeks and produce stretches orders of magnitude above the 4-24
        range of Figure 4.  If True, the simulation runs until every
        job completes.
    mean_interarrival:
        Mean job inter-arrival time per cluster in seconds; ``None``
        uses the peak-hour default (≈5.01 s).  Figure 3 sweeps this.
    offered_load:
        If set, runtimes are rescaled (authentic Lublin shapes, smaller
        scale) so a reference cluster sees this offered load ρ at the
        configured inter-arrival time.  ``None`` keeps authentic
        runtimes, which at the paper's 5 s inter-arrival oversubscribes
        clusters ~100× — the regime of the Section 4 queue-growth
        anchor, but one where load balancing (and hence every
        redundancy benefit the paper reports) is impossible.  The
        registry experiments use ρ = 2.0 (see DESIGN.md, "load
        calibration").  Figure 3's inter-arrival sweep then maps onto a
        proportional ρ sweep, preserving its meaning as a load sweep.
    interarrival_range:
        For heterogeneous platforms, per-cluster means are drawn
        uniformly from this range (the paper uses [2 s, 20 s]).
    estimates:
        ``"exact"`` or ``"phi"`` (Table 1's Real Estimates).
    remote_inflation:
        Extra requested time on *remote* copies, as a fraction (the
        Section 3.1.2 late-data-binding robustness check: 0.10, 0.50).
    target_bias_ratio:
        ``None`` for uniform remote-cluster choice; ``0.5`` reproduces
        Table 2's geometric account bias.
    cancellation_latency:
        Seconds between a copy starting and sibling cancellation
        (default 0 = the paper's assumption; ablation knob).
    faults:
        Optional :class:`~repro.faults.FaultConfig` describing the
        failure regime (lost/delayed cancellations, scheduler outages).
        ``None``, or a config whose knobs are all zero, is a strict
        no-op: the fault layer is never constructed and results are
        bit-identical to the fault-free simulator.
    cbf_compress_interval:
        Forwarded to :class:`~repro.sched.cbf.CBFScheduler` when
        ``algorithm="cbf"``.
    seed:
        Master seed; replication r of a config is fully determined by
        (seed, r) and shared across schemes (common random numbers).
    """

    n_clusters: int = 10
    nodes_per_cluster: Union[int, Tuple[int, ...]] = DEFAULT_NODES
    heterogeneous: bool = False
    algorithm: str = "easy"
    scheme: str = "NONE"
    adoption_probability: float = 1.0
    duration: float = DEFAULT_DURATION
    drain: bool = False
    mean_interarrival: Optional[float] = None
    offered_load: Optional[float] = None
    interarrival_range: Tuple[float, float] = (2.0, 20.0)
    estimates: str = "exact"
    remote_inflation: float = 0.0
    target_bias_ratio: Optional[float] = None
    cancellation_latency: float = 0.0
    faults: Optional[FaultConfig] = None
    cbf_compress_interval: Optional[float] = None
    cancellation_policy: str = "cancel-on-start"
    placement: str = "uniform"
    service_regime: str = "lublin"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_clusters < 1:
            raise ValueError(f"n_clusters must be >= 1, got {self.n_clusters}")
        if self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")
        if not 0.0 <= self.adoption_probability <= 1.0:
            raise ValueError(
                f"adoption_probability must be in [0,1], got "
                f"{self.adoption_probability}"
            )
        if self.remote_inflation < 0:
            raise ValueError(
                f"remote_inflation must be >= 0, got {self.remote_inflation}"
            )
        lo, hi = self.interarrival_range
        if not 0 < lo <= hi:
            raise ValueError(f"bad interarrival_range {self.interarrival_range}")
        # Fail fast on unknown names.
        get_scheme(self.scheme)
        make_estimate_model(self.estimates)
        get_cancellation_policy(self.cancellation_policy)
        make_service_regime(self.service_regime)
        if self.placement not in PLACEMENTS:
            raise ValueError(
                f"unknown placement {self.placement!r}; choose from {PLACEMENTS}"
            )
        if self.placement == "balanced" and self.target_bias_ratio is not None:
            raise ValueError(
                "balanced placement ignores account weights; "
                "unset target_bias_ratio or use uniform placement"
            )
        if self.algorithm.lower() not in ("easy", "cbf", "fcfs"):
            raise ValueError(f"unknown algorithm {self.algorithm!r}")
        if isinstance(self.nodes_per_cluster, int):
            if self.nodes_per_cluster < 1:
                raise ValueError("nodes_per_cluster must be >= 1")
        else:
            counts = tuple(self.nodes_per_cluster)
            if len(counts) != self.n_clusters:
                raise ValueError(
                    f"{len(counts)} node counts for {self.n_clusters} clusters"
                )
            object.__setattr__(self, "nodes_per_cluster", counts)

    def with_(self, **changes: object) -> "ExperimentConfig":
        """Derive a modified configuration (dataclass replace)."""
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> dict:
        """JSON-ready field mapping; :func:`config_from_dict` inverts it.

        Tuples survive ``dataclasses.asdict`` but not a JSON
        round-trip; the inverse converts list-valued fields back.
        """
        return dataclasses.asdict(self)

    @property
    def scheduler_kwargs(self) -> dict:
        if self.algorithm.lower() == "cbf":
            return {"compress_interval": self.cbf_compress_interval}
        return {}

    def describe(self) -> str:
        """One-line human-readable summary."""
        nodes = (
            "hetero"
            if self.heterogeneous
            else self.nodes_per_cluster
        )
        iat = self.mean_interarrival if self.mean_interarrival else "peak"
        extras = ""
        if self.cancellation_policy != "cancel-on-start":
            extras += f", {self.cancellation_policy}"
        if self.placement != "uniform":
            extras += f", {self.placement} placement"
        if self.service_regime != "lublin":
            extras += f", {self.service_regime} runtimes"
        faults = ""
        if self.faults is not None and self.faults.enabled:
            faults = (
                f", faults(p_loss={self.faults.p_cancel_loss:g}, "
                f"outage={self.faults.outage_rate:g}/h)"
            )
        return (
            f"{self.scheme} on N={self.n_clusters} ({nodes} nodes, "
            f"{self.algorithm.upper()}, iat={iat}, est={self.estimates}, "
            f"p={self.adoption_probability:.0%}, {self.duration / 3600:.2g}h"
            f"{extras}{faults})"
        )


def config_from_dict(payload: Mapping[str, Any]) -> ExperimentConfig:
    """Rebuild an :class:`ExperimentConfig` from :meth:`~ExperimentConfig.to_dict` output.

    Accepts the JSON round-tripped form: list-valued
    ``nodes_per_cluster``/``interarrival_range`` are restored to tuples
    and a ``faults`` mapping to a :class:`~repro.faults.FaultConfig`.
    Unknown keys raise ``ValueError`` (a config from a newer build must
    not be silently truncated into a different experiment).
    """
    data: dict[str, Any] = dict(payload)
    known = {f.name for f in dataclasses.fields(ExperimentConfig)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ValueError(f"unknown ExperimentConfig field(s): {unknown}")
    npc = data.get("nodes_per_cluster")
    if isinstance(npc, list):
        data["nodes_per_cluster"] = tuple(npc)
    iar = data.get("interarrival_range")
    if isinstance(iar, list):
        data["interarrival_range"] = tuple(iar)
    faults = data.get("faults")
    if isinstance(faults, dict):
        data["faults"] = FaultConfig(**faults)
    return ExperimentConfig(**data)
