"""The redundant-request protocol: fan out, first-start wins, cancel the rest.

This is the user-side mechanism the paper studies (Section 2): a job's
request is submitted to several batch queues simultaneously; the
application sends a callback when it starts executing, at which point
the user (here, the coordinator) cancels the sibling requests.

The coordinator is scheduler-agnostic — it only uses the public
``submit``/``cancel`` API plus the start-notification callback, exactly
the interface a real user script has via ``qsub``/``qdel`` and a
placeholder callback.  Cancellation is instantaneous by default (the
paper's Section 3 assumption of zero network/middleware overhead); a
``cancellation_latency`` can be injected for the ablation study of that
assumption.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Optional, Sequence

from ..cluster.platform import Platform
from ..sched.job import Request, RequestState
from ..sim.engine import Simulator
from ..sim.events import EventPriority
from ..workload.stream import StreamJob


@dataclass
class RedundantJob:
    """One user job together with all of its requests.

    The *winner* is the first request to start; its timings define the
    job's wait, turnaround and stretch.
    """

    job_id: int
    spec: StreamJob
    requests: list[Request] = field(default_factory=list)
    target_clusters: list[int] = field(default_factory=list)
    winner: Optional[Request] = None

    @property
    def started(self) -> bool:
        return self.winner is not None

    @property
    def completed(self) -> bool:
        return self.winner is not None and self.winner.state is RequestState.COMPLETED

    @property
    def n_copies(self) -> int:
        return len(self.requests)

    @property
    def uses_redundancy(self) -> bool:
        return self.spec.uses_redundancy and self.n_copies > 1


class Coordinator:
    """Submits redundant requests and cancels losers on first start.

    Parameters
    ----------
    sim, platform:
        The shared simulator and the multi-cluster platform.
    cancellation_latency:
        Delay between a copy starting and the sibling cancellations
        taking effect (default 0, the paper's assumption).  During the
        latency window a sibling may start too; the late copy is then
        detected and killed immediately at start (its node-seconds are
        wasted — the cost the ablation measures).
    remote_inflation:
        Extra requested time on remote copies, as a fraction.  Models
        the Section 3.1.2 late-data-binding padding (users request 10 %
        or 50 % more time on remote clusters to upload input data after
        the allocation is granted).
    """

    def __init__(
        self,
        sim: Simulator,
        platform: Platform,
        cancellation_latency: float = 0.0,
        remote_inflation: float = 0.0,
    ) -> None:
        if cancellation_latency < 0:
            raise ValueError(
                f"cancellation latency must be >= 0, got {cancellation_latency}"
            )
        if remote_inflation < 0:
            raise ValueError(
                f"remote inflation must be >= 0, got {remote_inflation}"
            )
        self.sim = sim
        self.platform = platform
        self.cancellation_latency = cancellation_latency
        self.remote_inflation = remote_inflation
        self.jobs: list[RedundantJob] = []
        #: requests that started after their sibling (only possible with
        #: a positive cancellation latency); their work is wasted
        self.duplicate_starts: list[Request] = []
        self._total_requests = 0
        self._total_cancellations = 0
        for sched in platform.schedulers:
            sched.add_start_callback(self._on_request_start)

    # -- submission ------------------------------------------------------

    def submit_job(self, spec: StreamJob, targets: Sequence[int]) -> RedundantJob:
        """Create one request per target cluster, all at ``spec.arrival``.

        Must be called at simulation time ``spec.arrival`` (use
        :meth:`schedule_job` to arrange that from time 0).
        """
        if not targets:
            raise ValueError("job needs at least one target cluster")
        if targets[0] != spec.origin:
            raise ValueError(
                f"first target must be the origin cluster {spec.origin}, "
                f"got {targets[0]}"
            )
        job = RedundantJob(
            job_id=len(self.jobs), spec=spec, target_clusters=list(targets)
        )
        self.jobs.append(job)
        for target in targets:
            requested = spec.requested_time
            if target != spec.origin and self.remote_inflation > 0:
                requested *= 1.0 + self.remote_inflation
            req = Request(
                nodes=spec.nodes,
                runtime=spec.runtime,
                requested_time=requested,
                submit_time=spec.arrival,
                group=job,
                name=f"job{job.job_id}@{target}",
            )
            job.requests.append(req)
            self._total_requests += 1
            self.platform.scheduler_at(target).submit(req)
        return job

    def schedule_job(self, spec: StreamJob, targets: Sequence[int]) -> None:
        """Arrange for :meth:`submit_job` to run at the job's arrival time."""
        self.sim.at(
            spec.arrival,
            partial(self.submit_job, spec, targets),
            EventPriority.SUBMIT,
        )

    # -- the first-start-wins protocol ------------------------------------

    def _on_request_start(self, request: Request, now: float) -> None:
        job = request.group
        if not isinstance(job, RedundantJob):
            return  # request not managed by this coordinator
        if job.winner is not None:
            # Only reachable with a positive cancellation latency: a
            # sibling started during the window.  Count the waste; the
            # duplicate run completes (we cannot cancel running jobs),
            # but it contributes nothing to the job's metrics.
            self.duplicate_starts.append(request)
            return
        job.winner = request
        if self.cancellation_latency == 0.0:
            self._cancel_losers(job)
        else:
            self.sim.after(
                self.cancellation_latency,
                partial(self._cancel_losers, job),
                EventPriority.CANCEL,
            )

    def _cancel_losers(self, job: RedundantJob) -> None:
        for req in job.requests:
            if req is job.winner:
                continue
            if req.state is RequestState.PENDING:
                req.cluster.cancel(req)
                self._total_cancellations += 1

    # -- accounting --------------------------------------------------------

    @property
    def total_requests(self) -> int:
        """Requests submitted across all queues."""
        return self._total_requests

    @property
    def total_cancellations(self) -> int:
        """Sibling cancellations issued (the churn the paper studies)."""
        return self._total_cancellations

    def unfinished_jobs(self) -> list[RedundantJob]:
        """Jobs that have not completed (diagnostics; empty after a full run)."""
        return [j for j in self.jobs if not j.completed]

    def check_invariants(self) -> None:
        """Every job has exactly one winner once started; losers ended pending."""
        for job in self.jobs:
            if job.winner is None:
                continue
            for req in job.requests:
                if req is job.winner:
                    assert req.state in (RequestState.RUNNING, RequestState.COMPLETED)
                elif req in self.duplicate_starts:
                    assert req.state in (RequestState.RUNNING, RequestState.COMPLETED)
                else:
                    assert req.state in (RequestState.PENDING, RequestState.CANCELLED)
