"""The redundant-request protocol: fan out, first-start wins, cancel the rest.

This is the user-side mechanism the paper studies (Section 2): a job's
request is submitted to several batch queues simultaneously; the
application sends a callback when it starts executing, at which point
the user (here, the coordinator) cancels the sibling requests.

The coordinator is scheduler-agnostic — it only uses the public
``submit``/``cancel`` API plus the start-notification callback, exactly
the interface a real user script has via ``qsub``/``qdel`` and a
placeholder callback.  Cancellation is instantaneous by default (the
paper's Section 3 assumption of zero network/middleware overhead); a
``cancellation_latency`` can be injected for the ablation study of that
assumption.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import TYPE_CHECKING, Optional, Sequence

if TYPE_CHECKING:  # typing-only: obs/sanitize import core at runtime
    from ..obs.stream import OnlineMetrics
    from ..obs.trace import TraceRecorder
    from ..sanitize.auditor import InvariantAuditor

from ..cluster.platform import Platform
from ..faults import FaultInjector
from ..policies.cancellation import (
    DEFAULT_CANCELLATION_POLICY,
    CancellationPolicy,
    get_cancellation_policy,
)
from ..sched.base import SchedulerDownError
from ..sched.job import Request, RequestState
from .metrics import bounded_slowdown, stretch
from ..sim.engine import Simulator
from ..sim.events import EventPriority
from ..workload.stream import StreamJob


class InvariantError(AssertionError):
    """A first-start-wins protocol invariant was violated.

    Subclasses ``AssertionError`` for drop-in compatibility with callers
    that treated invariant checks as assertions, but is raised
    explicitly so ``python -O`` cannot strip the checks.
    """


@dataclass
class RedundantJob:
    """One user job together with all of its requests.

    The *winner* is the first request to start; its timings define the
    job's wait, turnaround and stretch.
    """

    job_id: int
    spec: StreamJob
    requests: list[Request] = field(default_factory=list)
    target_clusters: list[int] = field(default_factory=list)
    winner: Optional[Request] = None

    @property
    def started(self) -> bool:
        return self.winner is not None

    @property
    def completed(self) -> bool:
        return self.winner is not None and self.winner.state is RequestState.COMPLETED

    @property
    def n_copies(self) -> int:
        return len(self.requests)

    @property
    def uses_redundancy(self) -> bool:
        return self.spec.uses_redundancy and self.n_copies > 1


class Coordinator:
    """Submits redundant requests and cancels losers on first start.

    Parameters
    ----------
    sim, platform:
        The shared simulator and the multi-cluster platform.
    cancellation_latency:
        Delay between a copy starting and the sibling cancellations
        taking effect (default 0, the paper's assumption).  During the
        latency window a sibling may start too; the late copy is then
        detected and killed immediately at start (its node-seconds are
        wasted — the cost the ablation measures).
    remote_inflation:
        Extra requested time on remote copies, as a fraction.  Models
        the Section 3.1.2 late-data-binding padding (users request 10 %
        or 50 % more time on remote clusters to upload input data after
        the allocation is granted).
    fault_injector:
        Optional :class:`~repro.faults.FaultInjector`.  When present,
        sibling cancellations may be lost or delayed per its config,
        and submissions rejected by a downed scheduler are retried or
        abandoned per its policy.  ``None`` (the default) keeps the
        perfect-world protocol bit-identical to the fault-free code.
    tracer:
        Optional :class:`~repro.obs.trace.TraceRecorder`.  When
        attached, the coordinator emits the protocol-side lifecycle
        events (``submit``, ``cancel_sent``, ``cancel_lost``,
        ``winner_complete``); the schedulers emit the queue-side ones.
        ``None`` (the default) records nothing and costs one attribute
        check per event site.
    policy:
        The :class:`~repro.policies.cancellation.CancellationPolicy`
        deciding *when* sibling cancellations are dispatched (a policy
        name is also accepted).  The default, ``cancel-on-start``, is
        the paper's protocol and is byte-identical to the pre-policy
        coordinator; ``cancel-on-complete`` defers the sweep until the
        winner finishes, so losers may legally run beside it as waste.
    online:
        Optional :class:`~repro.obs.stream.OnlineMetrics`.  When
        attached, the coordinator registers one finish callback per
        scheduler and feeds the streaming estimators at each winning
        completion (stretch/wait/slowdown) and each duplicate
        completion (wasted node-seconds) — including cancel-on-complete
        runs, whose waste becomes attributable only as the losers
        finish.  ``None`` (the default) registers *no* hooks: the
        disabled path allocates nothing and the run is bit-identical to
        an uninstrumented one.
    """

    def __init__(
        self,
        sim: Simulator,
        platform: Platform,
        cancellation_latency: float = 0.0,
        remote_inflation: float = 0.0,
        fault_injector: Optional[FaultInjector] = None,
        tracer: Optional[TraceRecorder] = None,
        auditor: Optional[InvariantAuditor] = None,
        policy: CancellationPolicy | str = DEFAULT_CANCELLATION_POLICY,
        online: Optional[OnlineMetrics] = None,
    ) -> None:
        if cancellation_latency < 0:
            raise ValueError(
                f"cancellation latency must be >= 0, got {cancellation_latency}"
            )
        if remote_inflation < 0:
            raise ValueError(
                f"remote inflation must be >= 0, got {remote_inflation}"
            )
        self.sim = sim
        self.platform = platform
        self.cancellation_latency = cancellation_latency
        self.remote_inflation = remote_inflation
        self.fault_injector = fault_injector
        self.tracer = tracer
        if isinstance(policy, str):
            policy = get_cancellation_policy(policy)
        self.policy = policy
        #: optional :class:`~repro.sanitize.auditor.InvariantAuditor`;
        #: fed the protocol-side facts (lost cancellations, duplicate
        #: starts) it needs to judge cancellation consistency.  ``None``
        #: (the default) costs one attribute check per site.
        self.auditor = auditor
        self.jobs: list[RedundantJob] = []
        #: requests that started despite a sibling winning first (late
        #: or lost cancellations); their node-seconds are pure waste
        self.duplicate_starts: list[Request] = []
        #: cancellation messages dropped (probability draw) or rejected
        #: by a downed scheduler — each leaves an orphaned copy queued
        self.lost_cancellations = 0
        #: submissions rejected because the target scheduler was down
        self.failed_submissions = 0
        #: copies successfully submitted again after an outage
        self.resubmissions = 0
        self._total_requests = 0
        self._total_cancellations = 0
        self._finalized = False
        self.online = online
        for sched in platform.schedulers:
            sched.add_start_callback(self._on_request_start)
        if online is not None:
            for sched in platform.schedulers:
                sched.add_finish_callback(self._on_request_finish)

    # -- submission ------------------------------------------------------

    def submit_job(self, spec: StreamJob, targets: Sequence[int]) -> RedundantJob:
        """Create one request per target cluster, all at ``spec.arrival``.

        Must be called at simulation time ``spec.arrival`` (use
        :meth:`schedule_job` to arrange that from time 0).
        """
        if not targets:
            raise ValueError("job needs at least one target cluster")
        if targets[0] != spec.origin:
            raise ValueError(
                f"first target must be the origin cluster {spec.origin}, "
                f"got {targets[0]}"
            )
        job = RedundantJob(
            job_id=len(self.jobs), spec=spec, target_clusters=list(targets)
        )
        self.jobs.append(job)
        for target in targets:
            requested = spec.requested_time
            if target != spec.origin and self.remote_inflation > 0:
                requested *= 1.0 + self.remote_inflation
            req = Request(
                nodes=spec.nodes,
                runtime=spec.runtime,
                requested_time=requested,
                submit_time=spec.arrival,
                group=job,
                name=f"job{job.job_id}@{target}",
            )
            if self.tracer is not None:
                self.tracer.emit(
                    self.sim.now, "submit", target, req.request_id, job.job_id
                )
            try:
                self.platform.scheduler_at(target).submit(req)
            except SchedulerDownError:
                # A subset of targets being down must not sink the whole
                # job: the remaining copies proceed, and this one is
                # retried at recovery or abandoned per policy.
                self.failed_submissions += 1
                self._handle_unsubmittable(job, req, target)
                continue
            job.requests.append(req)
            self._total_requests += 1
        return job

    def schedule_job(self, spec: StreamJob, targets: Sequence[int]) -> None:
        """Arrange for :meth:`submit_job` to run at the job's arrival time."""
        self.sim.at(
            spec.arrival,
            partial(self.submit_job, spec, targets),
            EventPriority.SUBMIT,
        )

    # -- the first-start-wins protocol ------------------------------------

    def _on_request_start(self, request: Request, now: float) -> None:
        job = request.group
        if not isinstance(job, RedundantJob):
            return  # request not managed by this coordinator
        if job.winner is not None:
            # A sibling started despite the winner: its cancellation was
            # in flight (positive latency), lost, or swallowed by a
            # downed scheduler.  Count the waste; the duplicate run
            # completes (we cannot cancel running jobs), but it
            # contributes nothing to the job's metrics.
            self.duplicate_starts.append(request)
            if self.auditor is not None:
                self.auditor.on_duplicate_start(self, job, request)
            return
        job.winner = request
        self.policy.on_winner_start(self, job)

    def _on_request_finish(self, request: Request, now: float) -> None:
        """Feed the online estimators (registered only when enabled).

        A finishing winner defines its job's metrics, so stretch, wait
        and bounded slowdown are observed here — the same instant the
        post-hoc :class:`~repro.core.results.JobOutcome` would record.
        A finishing non-winner is a duplicate start: its node-seconds
        became fully attributable just now, which is the waste timeline
        cancel-on-complete needs (losers run beside the winner and are
        only charged as they end).
        """
        job = request.group
        if not isinstance(job, RedundantJob):
            return  # request not managed by this coordinator
        online = self.online
        assert online is not None  # callback registered iff enabled
        if request is job.winner:
            assert request.start_time is not None
            turnaround = now - job.spec.arrival
            online.observe_completion(
                wait=request.start_time - job.spec.arrival,
                stretch=stretch(turnaround, job.spec.runtime),
                slowdown=bounded_slowdown(turnaround, job.spec.runtime),
            )
        else:
            assert request.start_time is not None
            online.observe_waste((now - request.start_time) * request.nodes)

    def dispatch_cancellations(self, job: RedundantJob) -> None:
        """Dispatch the sibling-cancellation sweep for ``job`` now.

        The one entry point policies use: applies the configured scalar
        latency or per-loser fault-injected delays, draws them in
        request order (determinism), and skips requests that are no
        longer PENDING.  Under ``cancel-on-start`` this runs at the
        winner's start instant — structurally the pre-policy code.
        """
        injector = self.fault_injector
        if injector is not None and injector.has_cancel_delay:
            # Per-loser delays from the configured distribution replace
            # the scalar latency.  Draw in request order (determinism).
            for req in job.requests:
                if req is job.winner or req.state is not RequestState.PENDING:
                    continue
                self.sim.after(
                    injector.draw_cancel_delay(),
                    partial(self._cancel_one, job, req),
                    EventPriority.CANCEL,
                )
        elif self.cancellation_latency == 0.0:
            self._cancel_losers(job)
        else:
            self.sim.after(
                self.cancellation_latency,
                partial(self._cancel_losers, job),
                EventPriority.CANCEL,
            )

    def on_winner_complete(self, job: RedundantJob) -> None:
        """Cancel-on-complete's deferred sweep, at the winner's finish.

        Scheduled by
        :class:`~repro.policies.cancellation.CancelOnComplete` at
        ``start + runtime`` with CANCEL priority, so it fires before the
        winner's FINISH event releases its nodes: still-pending losers
        are withdrawn before they could start on the freed capacity.
        Losers that already started are skipped by the PENDING check in
        the dispatch path and run to completion as tracked waste.
        """
        winner = job.winner
        if winner is None:  # pragma: no cover - defensive
            return
        if self.tracer is not None:
            self.tracer.emit(
                self.sim.now, "winner_complete",
                winner.cluster.cluster.index,
                winner.request_id, job.job_id,
            )
        self.dispatch_cancellations(job)

    def _cancel_losers(self, job: RedundantJob) -> None:
        for req in job.requests:
            if req is not job.winner:
                self._cancel_one(job, req)

    def _cancel_one(
        self, job: RedundantJob, request: Request, force: bool = False
    ) -> None:
        """Issue one sibling cancellation, subject to fault draws.

        ``force`` bypasses loss draws and downed daemons — reserved for
        :meth:`finalize`'s end-of-run bookkeeping.
        """
        if request.state is not RequestState.PENDING:
            return  # already started (duplicate), dropped, or cancelled
        tracer = self.tracer
        if tracer is not None:
            tracer.emit(
                self.sim.now, "cancel_sent",
                request.cluster.cluster.index,
                request.request_id, job.job_id,
            )
        injector = self.fault_injector
        if not force and injector is not None and injector.cancel_lost():
            # The qdel never arrives; the orphan stays queued and will
            # run to completion as pure waste if it ever starts.
            self.lost_cancellations += 1
            if tracer is not None:
                tracer.emit(
                    self.sim.now, "cancel_lost",
                    request.cluster.cluster.index,
                    request.request_id, job.job_id,
                )
            if self.auditor is not None:
                self.auditor.note_cancel_lost(request)
            return
        try:
            request.cluster.cancel(request, force=force)
        except SchedulerDownError:
            self.lost_cancellations += 1
            if tracer is not None:
                tracer.emit(
                    self.sim.now, "cancel_lost",
                    request.cluster.cluster.index,
                    request.request_id, job.job_id,
                )
            if self.auditor is not None:
                self.auditor.note_cancel_lost(request)
            return
        self._total_cancellations += 1

    # -- outage recovery ---------------------------------------------------

    def _handle_unsubmittable(
        self, job: RedundantJob, request: Request, target: int
    ) -> None:
        """Decide what to do with a copy rejected by a downed scheduler."""
        injector = self.fault_injector
        if injector is None or injector.config.resubmit_policy != "resubmit":
            return  # abandon this copy; any sibling copies carry the job
        recovery = injector.earliest_recovery([target], self.sim.now)
        if recovery is None:
            return  # downed out-of-band (no known window): nothing to await
        self.sim.at(
            recovery,
            partial(self._try_resubmit, job, request, target),
            EventPriority.SUBMIT,
        )

    def _try_resubmit(
        self, job: RedundantJob, request: Request, target: int
    ) -> None:
        if self._finalized:
            # A recovery scheduled past the horizon can fire while the
            # queue drains after finalize(); injecting a fresh copy into
            # a finalized run would corrupt the accounting.
            return
        if job.winner is not None:
            return  # a sibling already started; don't add churn
        if self.tracer is not None:
            self.tracer.emit(
                self.sim.now, "submit", target, request.request_id, job.job_id
            )
        try:
            self.platform.scheduler_at(target).submit(request)
        except SchedulerDownError:
            # Back-to-back outage: route through the policy again.
            self.failed_submissions += 1
            self._handle_unsubmittable(job, request, target)
            return
        job.requests.append(request)
        self._total_requests += 1
        self.resubmissions += 1

    def on_requests_dropped(
        self, dropped: Sequence[Request], resume_time: float
    ) -> None:
        """React to an outage that lost a scheduler's pending queue.

        Dropped copies of already-started jobs need nothing — the drop
        did the cancellation's work for free.  For jobs still waiting,
        the policy either resubmits a fresh copy once the scheduler
        recovers (at ``resume_time``) or abandons it.
        """
        injector = self.fault_injector
        resubmit = (
            injector is not None
            and injector.config.resubmit_policy == "resubmit"
        )
        for request in dropped:
            job = request.group
            if not isinstance(job, RedundantJob):
                continue
            if job.winner is not None or not resubmit:
                continue
            self.sim.at(
                resume_time,
                partial(self._resubmit_copy, job, request),
                EventPriority.SUBMIT,
            )

    def _resubmit_copy(self, job: RedundantJob, lost: Request) -> None:
        """Submit a fresh copy replacing one lost in a queue drop."""
        if self._finalized or job.winner is not None:
            return
        scheduler = lost.cluster
        fresh = lost.copy_spec()
        if self.tracer is not None:
            self.tracer.emit(
                self.sim.now, "submit",
                scheduler.cluster.index, fresh.request_id, job.job_id,
            )
        try:
            scheduler.submit(fresh)
        except SchedulerDownError:
            self.failed_submissions += 1
            self._handle_unsubmittable(job, fresh, scheduler.cluster.index)
            return
        job.requests.append(fresh)
        self._total_requests += 1
        self.resubmissions += 1

    def finalize(self) -> None:
        """End-of-run bookkeeping; call once the simulation has stopped.

        A job whose winner starts inside the final cancellation-latency
        window has its sibling-cancellation event scheduled past the
        horizon, so without this pass those losers would be left PENDING
        forever.  Forced cancellation bypasses fault draws and downed
        daemons: this models the operator purge after the measurement
        window, not simulated middleware traffic.  Also latches the
        finalized flag so stray recovery callbacks draining after the
        horizon cannot resubmit copies into the closed run.
        """
        self._finalized = True
        for job in self.jobs:
            if job.winner is None:
                continue
            for req in job.requests:
                if req is not job.winner and req.state is RequestState.PENDING:
                    self._cancel_one(job, req, force=True)
        if self.online is not None:
            # Duplicates still running at the horizon never reach the
            # finish callback; charge their partial node-seconds now so
            # the online waste total matches wasted_node_seconds(now).
            now = self.sim.now
            for req in self.duplicate_starts:
                if req.end_time is None and req.start_time is not None:
                    self.online.observe_waste(
                        max(0.0, now - req.start_time) * req.nodes
                    )

    # -- accounting --------------------------------------------------------

    @property
    def total_requests(self) -> int:
        """Requests submitted across all queues."""
        return self._total_requests

    @property
    def total_cancellations(self) -> int:
        """Sibling cancellations issued (the churn the paper studies)."""
        return self._total_cancellations

    def unfinished_jobs(self) -> list[RedundantJob]:
        """Jobs that have not completed (diagnostics; empty after a full run)."""
        return [j for j in self.jobs if not j.completed]

    def abandoned_jobs(self) -> int:
        """Jobs that lost every copy to faults before any could start.

        Zero in a fault-free run: a job without a winner always keeps at
        least one pending copy, because losers are only cancelled after
        a sibling wins.
        """
        return sum(
            1
            for job in self.jobs
            if job.winner is None
            and not any(r.is_active for r in job.requests)
        )

    def wasted_node_seconds(self, now: float) -> float:
        """Node-seconds burned by non-winning copies that ran anyway.

        Covers both late starts (cancellation in flight) and orphans
        from lost cancellations.  A duplicate still running at ``now``
        is charged up to ``now``.
        """
        total = 0.0
        for req in self.duplicate_starts:
            if req.start_time is None:  # pragma: no cover - defensive
                continue
            end = req.end_time if req.end_time is not None else now
            total += max(0.0, min(end, now) - req.start_time) * req.nodes
        return total

    def check_invariants(self) -> None:
        """Every job has exactly one winner once started; losers never run.

        Raises :class:`InvariantError` explicitly (bare ``assert`` would
        be stripped under ``python -O``), identifying the offending job
        and request.
        """
        duplicate_ids = {id(r) for r in self.duplicate_starts}
        ran = (RequestState.RUNNING, RequestState.COMPLETED)
        ended = (RequestState.PENDING, RequestState.CANCELLED)
        for job in self.jobs:
            if job.winner is None:
                continue
            for req in job.requests:
                if req is job.winner:
                    role, allowed = "winner", ran
                elif id(req) in duplicate_ids:
                    role, allowed = "duplicate start", ran
                else:
                    role, allowed = "loser", ended
                if req.state not in allowed:
                    raise InvariantError(
                        f"job {job.job_id}: {role} request "
                        f"{req.request_id} is {req.state.value}, expected "
                        f"one of ({', '.join(s.value for s in allowed)})"
                    )
