"""Parallel sweep engine: one flattened (config x replication) grid.

This module is the stable façade over the orchestrator/executor split:

* :class:`~repro.core.orchestrator.Orchestrator` owns the grid — dedup
  of duplicate configs, cache resolution before any work is scheduled,
  chunk planning, progress/heartbeat, the run journal, and
  deterministic reassembly by ``(config_index, replication)`` key;
* :mod:`repro.core.executors` owns the running — the in-process serial
  path, the single persistent process pool, and the HTTP work queue
  behind ``repro serve``.

:func:`run_grid` keeps the original contract exactly: the whole grid —
every config (including the NONE baseline) times every replication —
is flattened into one task list, deduplicated, cache-resolved, chunked
onto one executor, and reassembled bit-identically to a serial run
regardless of worker scheduling.  ``run_single`` being a pure function
of ``(config, replication)`` is the invariant that makes all of that
sound.

Legacy private names (``_Heartbeat``, ``_fmt_eta``, ``_init_worker``,
``_run_chunk``, ``_INFLIGHT_PER_WORKER``) are re-exported for
callers and tests that grew against the single-module engine.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence, Union

if TYPE_CHECKING:  # typing-only: obs imports core at runtime
    from ..obs.metrics import MetricsRegistry

from .cache import ResultCache
from .config import ExperimentConfig
from .executors import InProcessExecutor, PoolExecutor
from .executors.pool import _INFLIGHT_PER_WORKER  # noqa: F401  (re-export)
from .executors.pool import _init_worker, _PoolBroken, _run_chunk  # noqa: F401
from .experiment import run_single  # noqa: F401  (re-export; tests patch it)
from .orchestrator import (  # noqa: F401  (re-exports)
    GridStats,
    Heartbeat,
    Orchestrator,
    ProgressFn,
    RunnerFn,
    SweepCancelled,
    TaskError,
    default_chunksize,
    fmt_eta,
)
from .results import ExperimentResult

# Legacy aliases from the pre-split engine.
_Heartbeat = Heartbeat
_fmt_eta = fmt_eta


def resolve_workers(
    value: Union[str, int, None], source: str = "workers"
) -> int:
    """Normalise a worker-count setting from the CLI or environment.

    ``None`` and empty/whitespace strings mean 1 (serial).  Anything
    else must parse as an integer >= 1; garbage and non-positive counts
    raise ``ValueError`` naming ``source`` instead of being silently
    clamped (``REPRO_WORKERS=0`` used to mean serial by accident).
    """
    if value is None:
        return 1
    if isinstance(value, str):
        value = value.strip()
        if not value:
            return 1
    try:
        n = int(value)
    except (TypeError, ValueError):
        raise ValueError(
            f"{source} must be an integer >= 1, got {value!r}"
        ) from None
    if n < 1:
        raise ValueError(f"{source} must be >= 1, got {n}")
    return n


def run_grid(
    configs: Sequence[ExperimentConfig],
    n_replications: int,
    n_workers: int = 1,
    first_replication: int = 0,
    cache: Optional[ResultCache] = None,
    chunksize: Optional[int] = None,
    progress: Optional[ProgressFn] = None,
    runner: Optional[RunnerFn] = None,
    stats: Optional[GridStats] = None,
    metrics: Optional["MetricsRegistry"] = None,
) -> list[list[ExperimentResult]]:
    """Run every config for every replication; return results per config.

    The returned list is parallel to ``configs``; each inner list holds
    ``n_replications`` results ordered by replication index.  Duplicate
    configs are simulated once and their result lists shared by value.

    A failing task is retried once (transient failures, crashed
    workers); a second failure raises :class:`TaskError` naming the
    ``(config, replication)``.  ``stats`` collects failure/retry
    counts.  ``runner`` substitutes the per-task function (it must be a
    picklable top-level callable; used by tests and benchmarks).

    ``metrics`` optionally receives engine accounting — an
    :class:`~repro.obs.metrics.MetricsRegistry` (or anything with its
    ``inc``/``add_time``): cache hit/miss counters, tasks executed, and
    wall-clock spent resolving/storing cache entries.
    """
    if not configs:
        if n_replications < 1:
            raise ValueError(f"need >= 1 replication, got {n_replications}")
        return []
    orchestrator = Orchestrator(
        configs,
        n_replications,
        first_replication=first_replication,
        cache=cache,
        chunksize=chunksize,
        n_workers=n_workers,
        progress=progress,
        runner=runner,
        stats=stats,
        metrics=metrics,
    )
    orchestrator.prepare()
    pending = orchestrator.n_pending
    if pending == 0:
        return orchestrator.assemble()
    if n_workers <= 1 or pending == 1:
        executor: InProcessExecutor | PoolExecutor = InProcessExecutor()
    else:
        executor = PoolExecutor(n_workers=n_workers)
    return orchestrator.execute(executor)


class SweepEngine:
    """Bound defaults for a sequence of grid runs.

    A convenience wrapper the registry and CLI use so that worker count,
    cache and progress reporting are decided once::

        engine = SweepEngine(n_workers=8, cache=shared_cache())
        baseline, r2 = engine.run_grid([cfg_none, cfg_r2], 50)
    """

    def __init__(
        self,
        n_workers: int = 1,
        cache: Optional[ResultCache] = None,
        chunksize: Optional[int] = None,
        progress: Optional[ProgressFn] = None,
        stats: Optional[GridStats] = None,
        metrics: Optional["MetricsRegistry"] = None,
    ) -> None:
        self.n_workers = max(1, int(n_workers))
        self.cache = cache
        self.chunksize = chunksize
        self.progress = progress
        self.stats = stats
        self.metrics = metrics

    def run_grid(
        self,
        configs: Sequence[ExperimentConfig],
        n_replications: int,
        first_replication: int = 0,
    ) -> list[list[ExperimentResult]]:
        return run_grid(
            configs,
            n_replications,
            n_workers=self.n_workers,
            first_replication=first_replication,
            cache=self.cache,
            chunksize=self.chunksize,
            progress=self.progress,
            stats=self.stats,
            metrics=self.metrics,
        )

    def run_replications(
        self,
        config: ExperimentConfig,
        n_replications: int,
        first_replication: int = 0,
    ) -> list[ExperimentResult]:
        [results] = self.run_grid([config], n_replications, first_replication)
        return results
