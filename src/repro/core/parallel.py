"""Parallel sweep engine: one flattened (config x replication) grid.

The seed runner parallelised each scheme's replications separately: one
process pool per ``run_replications`` call, re-pickling the config for
every task and synchronising at every scheme boundary.  This module
replaces that with a single engine used by every sweep:

1. the whole grid — every config (including the NONE baseline) times
   every replication — is flattened into one task list;
2. duplicate configs are deduplicated up front (configs are frozen
   dataclasses, so equality is exact), which is how the paired baseline
   is computed once per grid no matter how many callers request it;
3. a result cache (:mod:`repro.core.cache`) is consulted before any
   work is scheduled, so warm reruns skip simulation entirely;
4. remaining tasks run on **one** :class:`ProcessPoolExecutor` for the
   whole grid.  Workers receive the unique-config table once through
   the pool initializer; tasks are ``(config_index, replication)``
   integer pairs, so nothing large is re-pickled per task;
5. tasks are submitted in chunks (amortising IPC) and collected
   ``as_completed`` for progress reporting;
6. results are reassembled by ``(config_index, replication)`` key, so
   the output is deterministic and bit-identical to a serial run
   regardless of worker scheduling.

``run_single`` is a pure function of ``(config, replication)``; that is
the invariant that makes 2, 3 and 6 sound.
"""

from __future__ import annotations

# repro-lint: disable-file=DET001 -- perf_counter here only feeds the
# cache_resolve_s/cache_store_s engine metrics and the display-only
# heartbeat ETA; task results are keyed and reassembled by
# (config, replication), never by host time

import logging
import math
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import TYPE_CHECKING, Callable, Optional, Sequence, Union

if TYPE_CHECKING:  # typing-only: obs imports core at runtime
    from ..obs.metrics import MetricsRegistry

from .cache import ResultCache, config_fingerprint
from .config import ExperimentConfig
from .experiment import run_single
from .results import ExperimentResult

# Plain stdlib logger under the shared namespace: repro.obs.log owns
# configuration (handler/level), so core stays import-independent of obs.
_log = logging.getLogger("repro.core.parallel")

ProgressFn = Callable[[str], None]
RunnerFn = Callable[[ExperimentConfig, int], ExperimentResult]

#: soft cap on in-flight chunks per worker (bounds parent-side memory
#: while keeping every worker busy)
_INFLIGHT_PER_WORKER = 2


class TaskError(RuntimeError):
    """A grid task failed, identified by its ``(config, replication)``.

    All constructor arguments flow through ``RuntimeError.__init__`` so
    the exception survives the pickle round-trip from worker processes.
    """

    def __init__(self, description: str, replication: int, cause: str) -> None:
        super().__init__(description, replication, cause)
        self.description = description
        self.replication = replication
        self.cause = cause

    def __str__(self) -> str:
        return (
            f"task ({self.description}, rep {self.replication}) "
            f"failed: {self.cause}"
        )


class GridStats:
    """Failure/retry accounting for grid runs (surfaces in bench JSON)."""

    def __init__(self) -> None:
        #: failure counts keyed by ``"<config.describe()> rep <r>"``
        self.failures: dict[str, int] = {}
        self.retries = 0

    def record_failure(self, key: str) -> None:
        self.failures[key] = self.failures.get(key, 0) + 1

    @property
    def total_failures(self) -> int:
        return sum(self.failures.values())

    def as_dict(self) -> dict:
        return {
            "task_failures": dict(self.failures),
            "task_retries": self.retries,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GridStats({self.as_dict()})"


def _fmt_eta(seconds: float) -> str:
    """Compact ETA rendering: ``42s``, ``3m10s``, ``2h05m``."""
    seconds = max(0.0, seconds)
    if seconds < 60.0:
        return f"{seconds:.0f}s"
    minutes, secs = divmod(int(round(seconds)), 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


class _Heartbeat:
    """Live telemetry folded into every per-task progress line.

    Tracks wall-clock throughput (for the ETA), the evolving cache
    hit-rate, and a count-weighted running estimate of the online
    p50/p99 stretch read from each result's streaming-estimator payload
    (see :mod:`repro.obs.stream`).  Arrival order varies with worker
    scheduling, so the heartbeat is display-only — the authoritative
    merged statistics are computed from the deterministically ordered
    results after reassembly.
    """

    def __init__(self, total: int, cache_hits: int) -> None:
        self.total = total
        self.cache_hits = cache_hits
        self.computed = 0
        self._t0 = time.perf_counter()
        self._weight = 0.0
        self._p50_sum = 0.0
        self._p99_sum = 0.0

    def observe(self, result: object, computed: bool) -> None:
        if computed:
            self.computed += 1
        # Custom runners return wrapper payloads (TracedRun/ProbedRun
        # hold the ExperimentResult one level down); anything without
        # online metrics simply doesn't feed the stretch estimate.
        payload = getattr(result, "online_metrics", None)
        if payload is None:
            inner = getattr(result, "result", None)
            payload = getattr(inner, "online_metrics", None)
        if not payload:
            return
        stretch = payload.get("metrics", {}).get("stretch")
        if not stretch or not stretch.get("count"):
            return
        n = stretch["count"]
        quantiles = stretch.get("quantiles", {})
        p50, p99 = quantiles.get("p50"), quantiles.get("p99")
        if p50 is None or p99 is None or p50 != p50 or p99 != p99:
            return
        self._weight += n
        self._p50_sum += n * p50
        self._p99_sum += n * p99

    def suffix(self) -> str:
        done = self.cache_hits + self.computed
        fields: list[str] = []
        if self.computed > 0 and done < self.total:
            rate = (time.perf_counter() - self._t0) / self.computed
            fields.append(f"eta {_fmt_eta(rate * (self.total - done))}")
        if self.cache_hits > 0 and done > 0:
            fields.append(f"cache {100.0 * self.cache_hits / done:.0f}%")
        if self._weight > 0.0:
            fields.append(
                f"stretch p50 {self._p50_sum / self._weight:.3g} "
                f"p99 {self._p99_sum / self._weight:.3g}"
            )
        return " | " + " | ".join(fields) if fields else ""


def resolve_workers(
    value: Union[str, int, None], source: str = "workers"
) -> int:
    """Normalise a worker-count setting from the CLI or environment.

    ``None`` and empty/whitespace strings mean 1 (serial).  Anything
    else must parse as an integer >= 1; garbage and non-positive counts
    raise ``ValueError`` naming ``source`` instead of being silently
    clamped (``REPRO_WORKERS=0`` used to mean serial by accident).
    """
    if value is None:
        return 1
    if isinstance(value, str):
        value = value.strip()
        if not value:
            return 1
    try:
        n = int(value)
    except (TypeError, ValueError):
        raise ValueError(
            f"{source} must be an integer >= 1, got {value!r}"
        ) from None
    if n < 1:
        raise ValueError(f"{source} must be >= 1, got {n}")
    return n


class _PoolBroken(Exception):
    """Internal: the process pool died; ``suspects`` were in flight."""

    def __init__(self, suspects: list[tuple[int, int]]) -> None:
        super().__init__(suspects)
        self.suspects = suspects


# -- worker side ---------------------------------------------------------

_WORKER_CONFIGS: Sequence[ExperimentConfig] = ()
_WORKER_RUNNER: Optional[RunnerFn] = None


def _init_worker(
    configs: Sequence[ExperimentConfig], runner: Optional[RunnerFn] = None
) -> None:
    """Pool initializer: unpickle the unique-config table once per worker."""
    global _WORKER_CONFIGS, _WORKER_RUNNER
    # repro-lint: disable=PAR001 -- the pool initializer installs the
    # per-process config table exactly once, before any task runs; this
    # is the mechanism that *avoids* per-task state shipping
    _WORKER_CONFIGS = configs
    # repro-lint: disable=PAR001 -- same single-shot initializer install
    _WORKER_RUNNER = runner
    # Spawned workers inherit no handler state; mirror the parent's
    # logging setup from the environment (deferred import: obs imports
    # this module at its own import time).
    from ..obs.log import setup_worker_logging

    setup_worker_logging()


def _run_chunk(
    tasks: Sequence[tuple[int, int]],
) -> list[tuple[int, int, ExperimentResult]]:
    """Run a chunk of ``(config_index, replication)`` tasks in one worker.

    Any task exception is wrapped in :class:`TaskError` so the parent
    learns *which* ``(config, replication)`` failed, not just that
    something somewhere in the chunk raised.
    """
    fn = _WORKER_RUNNER if _WORKER_RUNNER is not None else run_single
    out = []
    for ci, rep in tasks:
        cfg = _WORKER_CONFIGS[ci]
        try:
            out.append((ci, rep, fn(cfg, rep)))
        except Exception as exc:
            raise TaskError(cfg.describe(), rep, repr(exc)) from exc
    return out


# -- parent side ---------------------------------------------------------

def default_chunksize(n_tasks: int, n_workers: int) -> int:
    """Chunk so each worker sees a few chunks (load balance vs IPC cost)."""
    if n_tasks <= 0:
        return 1
    return max(1, math.ceil(n_tasks / (max(1, n_workers) * 4)))


def run_grid(
    configs: Sequence[ExperimentConfig],
    n_replications: int,
    n_workers: int = 1,
    first_replication: int = 0,
    cache: Optional[ResultCache] = None,
    chunksize: Optional[int] = None,
    progress: Optional[ProgressFn] = None,
    runner: Optional[RunnerFn] = None,
    stats: Optional[GridStats] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> list[list[ExperimentResult]]:
    """Run every config for every replication; return results per config.

    The returned list is parallel to ``configs``; each inner list holds
    ``n_replications`` results ordered by replication index.  Duplicate
    configs are simulated once and their result lists shared by value.

    A failing task is retried once (transient failures, crashed
    workers); a second failure raises :class:`TaskError` naming the
    ``(config, replication)``.  ``stats`` collects failure/retry
    counts.  ``runner`` substitutes the per-task function (it must be a
    picklable top-level callable; used by tests and benchmarks).

    ``metrics`` optionally receives engine accounting — an
    :class:`~repro.obs.metrics.MetricsRegistry` (or anything with its
    ``inc``/``add_time``): cache hit/miss counters, tasks executed, and
    wall-clock spent resolving/storing cache entries.
    """
    if n_replications < 1:
        raise ValueError(f"need >= 1 replication, got {n_replications}")
    if not configs:
        return []

    # 1+2. Deduplicate the grid (frozen dataclasses hash by content).
    unique: list[ExperimentConfig] = []
    index_of: dict[ExperimentConfig, int] = {}
    slots: list[int] = []
    for cfg in configs:
        ui = index_of.get(cfg)
        if ui is None:
            ui = index_of[cfg] = len(unique)
            unique.append(cfg)
        slots.append(ui)

    reps = range(first_replication, first_replication + n_replications)
    grid: list[dict[int, ExperimentResult]] = [{} for _ in unique]

    # 3. Resolve cache hits before scheduling any work.
    t_resolve = time.perf_counter()
    fingerprints = [config_fingerprint(cfg) for cfg in unique]
    tasks: list[tuple[int, int]] = []
    hits: list[ExperimentResult] = []
    for ui, fp in enumerate(fingerprints):
        for rep in reps:
            hit = (
                cache.get(unique[ui], rep, fingerprint=fp)
                if cache is not None else None
            )
            if hit is not None:
                grid[ui][rep] = hit
                hits.append(hit)
            else:
                tasks.append((ui, rep))

    total = len(unique) * n_replications
    done = total - len(tasks)
    heartbeat = _Heartbeat(total, cache_hits=done)
    for hit in hits:
        # Seed the live stretch estimate with what the cache already
        # knows, so the first heartbeat line reflects the whole sweep.
        heartbeat.observe(hit, computed=False)
    if metrics is not None:
        metrics.add_time("cache_resolve_s", time.perf_counter() - t_resolve)
        if cache is not None:
            metrics.inc("cache_hits", done)
            metrics.inc("cache_misses", len(tasks))
        metrics.inc("tasks_executed", len(tasks))
    _log.debug(
        "grid: %d config(s) x %d rep(s) = %d task(s), %d from cache",
        len(unique), n_replications, total, done,
    )
    if progress is not None and done > 0:
        # Without this line a fully warm rerun would print nothing at
        # all — per-task notes only cover freshly simulated work.
        progress(f"[{done}/{total}] {done} task(s) resolved from cache")

    def note(ui: int, rep: int) -> None:
        if progress is not None:
            progress(
                f"[{done}/{total}] {unique[ui].describe()} rep {rep}"
                f"{heartbeat.suffix()}"
            )

    def record(ui: int, rep: int, result: ExperimentResult) -> None:
        nonlocal done
        grid[ui][rep] = result
        heartbeat.observe(result, computed=True)
        if cache is not None:
            t_store = time.perf_counter()
            cache.put(unique[ui], rep, result, fingerprint=fingerprints[ui])
            if metrics is not None:
                metrics.add_time(
                    "cache_store_s", time.perf_counter() - t_store
                )
        done += 1
        note(ui, rep)

    # 4-5. Execute what is left: serial fast path, else one pool.
    if tasks:
        if n_workers <= 1 or len(tasks) == 1:
            _run_serial(unique, tasks, record, runner, stats)
        else:
            _run_parallel(
                unique, tasks, n_workers, chunksize, record, runner, stats
            )

    # 6. Deterministic reassembly in (config, replication) order.
    per_unique = [
        [grid[ui][rep] for rep in reps] for ui in range(len(unique))
    ]
    return [list(per_unique[ui]) for ui in slots]


def _run_serial(
    unique: Sequence[ExperimentConfig],
    tasks: Sequence[tuple[int, int]],
    record: Callable[[int, int, ExperimentResult], None],
    runner: Optional[RunnerFn],
    stats: Optional[GridStats],
) -> None:
    """In-process execution with the same retry-once semantics."""
    for ui, rep in tasks:
        # Late-bound module global so tests can monkeypatch run_single.
        fn = runner if runner is not None else run_single
        try:
            result = fn(unique[ui], rep)
        except Exception as first:
            key = f"{unique[ui].describe()} rep {rep}"
            _log.warning("task %s failed (%r); retrying once", key, first)
            if stats is not None:
                stats.record_failure(key)
                stats.retries += 1
            try:
                result = fn(unique[ui], rep)
            except Exception as exc:
                if stats is not None:
                    stats.record_failure(key)
                raise TaskError(
                    unique[ui].describe(), rep, repr(exc)
                ) from exc
        record(ui, rep, result)


def _run_parallel(
    unique: Sequence[ExperimentConfig],
    tasks: list[tuple[int, int]],
    n_workers: int,
    chunksize: Optional[int],
    record: Callable[[int, int, ExperimentResult], None],
    runner: Optional[RunnerFn] = None,
    stats: Optional[GridStats] = None,
) -> None:
    """Fan a task list over one persistent pool, chunked, as-completed.

    Failure handling, two tiers:

    * a task raising inside a worker surfaces as :class:`TaskError`;
      its chunk is retried once on the same (healthy) pool;
    * a worker *crashing* breaks the whole pool and cannot tell us
      which task did it — every in-flight task is a suspect.  The
      remaining work is retried once on a fresh pool; a second crash
      raises :class:`TaskError` naming the first suspect.
    """
    n_workers = min(n_workers, len(tasks))
    if chunksize is None:
        chunksize = default_chunksize(len(tasks), n_workers)
    chunks = {
        cid: tasks[k:k + chunksize]
        for cid, k in enumerate(range(0, len(tasks), chunksize))
    }
    for attempt in (0, 1):
        try:
            _drain_pool(
                unique, chunks, n_workers, record, runner, stats,
                allow_chunk_retry=(attempt == 0),
            )
            return
        except _PoolBroken as broken:
            ci, rep = broken.suspects[0]
            _log.warning(
                "worker pool crashed with %d task(s) in flight "
                "(first suspect: %s rep %d)%s",
                len(broken.suspects), unique[ci].describe(), rep,
                "" if attempt == 1 else "; rerunning on a fresh pool",
            )
            if stats is not None:
                stats.record_failure(f"{unique[ci].describe()} rep {rep}")
            if attempt == 1:
                raise TaskError(
                    unique[ci].describe(),
                    rep,
                    "worker process crashed (BrokenProcessPool); "
                    f"{len(broken.suspects)} in-flight task(s) suspected",
                ) from broken
            if stats is not None:
                stats.retries += 1


def _drain_pool(
    unique: Sequence[ExperimentConfig],
    chunks: dict[int, list[tuple[int, int]]],
    n_workers: int,
    record: Callable[[int, int, ExperimentResult], None],
    runner: Optional[RunnerFn],
    stats: Optional[GridStats],
    allow_chunk_retry: bool,
) -> None:
    """Run ``chunks`` on one pool, removing each as it completes.

    On a pool crash, raises :class:`_PoolBroken` with every in-flight
    task as a suspect; ``chunks`` still holds all unfinished work so the
    caller can rerun it on a fresh pool.
    """
    retried: set[int] = set()
    with ProcessPoolExecutor(
        max_workers=n_workers,
        initializer=_init_worker,
        initargs=(tuple(unique), runner),
    ) as pool:
        backlog = iter(list(chunks.items()))
        in_flight: dict = {}

        def submit(cid: int, chunk: list[tuple[int, int]]) -> None:
            try:
                fut = pool.submit(_run_chunk, chunk)
            except BrokenProcessPool:
                # The pool died under us; surface every in-flight task
                # (plus this one) as a suspect for the outer retry.
                suspects = list(chunk)
                for _, other in in_flight.values():
                    suspects.extend(other)
                raise _PoolBroken(suspects) from None
            in_flight[fut] = (cid, chunk)

        def submit_next() -> None:
            item = next(backlog, None)
            if item is not None:
                submit(*item)

        for _ in range(n_workers * _INFLIGHT_PER_WORKER):
            submit_next()
        while in_flight:
            finished, _ = wait(in_flight, return_when=FIRST_COMPLETED)
            crashed: list[tuple[int, int]] = []
            for fut in finished:
                cid, chunk = in_flight.pop(fut)
                try:
                    results = fut.result()
                except TaskError as err:
                    _log.warning("worker task failed: %s", err)
                    if stats is not None:
                        stats.record_failure(
                            f"{err.description} rep {err.replication}"
                        )
                    if allow_chunk_retry and cid not in retried:
                        retried.add(cid)
                        if stats is not None:
                            stats.retries += 1
                        submit(cid, chunk)
                        continue
                    raise
                except BrokenProcessPool:
                    # Don't raise yet: sibling futures in this batch may
                    # hold completed results worth keeping.
                    crashed.extend(chunk)
                    continue
                for ci, rep, result in results:
                    record(ci, rep, result)
                del chunks[cid]
                submit_next()
            if crashed:
                suspects = crashed
                for _, other in in_flight.values():
                    suspects.extend(other)
                raise _PoolBroken(suspects)


class SweepEngine:
    """Bound defaults for a sequence of grid runs.

    A convenience wrapper the registry and CLI use so that worker count,
    cache and progress reporting are decided once::

        engine = SweepEngine(n_workers=8, cache=shared_cache())
        baseline, r2 = engine.run_grid([cfg_none, cfg_r2], 50)
    """

    def __init__(
        self,
        n_workers: int = 1,
        cache: Optional[ResultCache] = None,
        chunksize: Optional[int] = None,
        progress: Optional[ProgressFn] = None,
        stats: Optional[GridStats] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.n_workers = max(1, int(n_workers))
        self.cache = cache
        self.chunksize = chunksize
        self.progress = progress
        self.stats = stats
        self.metrics = metrics

    def run_grid(
        self,
        configs: Sequence[ExperimentConfig],
        n_replications: int,
        first_replication: int = 0,
    ) -> list[list[ExperimentResult]]:
        return run_grid(
            configs,
            n_replications,
            n_workers=self.n_workers,
            first_replication=first_replication,
            cache=self.cache,
            chunksize=self.chunksize,
            progress=self.progress,
            stats=self.stats,
            metrics=self.metrics,
        )

    def run_replications(
        self,
        config: ExperimentConfig,
        n_replications: int,
        first_replication: int = 0,
    ) -> list[ExperimentResult]:
        [results] = self.run_grid([config], n_replications, first_replication)
        return results
