"""Parallel sweep engine: one flattened (config x replication) grid.

The seed runner parallelised each scheme's replications separately: one
process pool per ``run_replications`` call, re-pickling the config for
every task and synchronising at every scheme boundary.  This module
replaces that with a single engine used by every sweep:

1. the whole grid — every config (including the NONE baseline) times
   every replication — is flattened into one task list;
2. duplicate configs are deduplicated up front (configs are frozen
   dataclasses, so equality is exact), which is how the paired baseline
   is computed once per grid no matter how many callers request it;
3. a result cache (:mod:`repro.core.cache`) is consulted before any
   work is scheduled, so warm reruns skip simulation entirely;
4. remaining tasks run on **one** :class:`ProcessPoolExecutor` for the
   whole grid.  Workers receive the unique-config table once through
   the pool initializer; tasks are ``(config_index, replication)``
   integer pairs, so nothing large is re-pickled per task;
5. tasks are submitted in chunks (amortising IPC) and collected
   ``as_completed`` for progress reporting;
6. results are reassembled by ``(config_index, replication)`` key, so
   the output is deterministic and bit-identical to a serial run
   regardless of worker scheduling.

``run_single`` is a pure function of ``(config, replication)``; that is
the invariant that makes 2, 3 and 6 sound.
"""

from __future__ import annotations

import itertools
import math
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Callable, Optional, Sequence

from .cache import ResultCache, config_fingerprint
from .config import ExperimentConfig
from .experiment import run_single
from .results import ExperimentResult

ProgressFn = Callable[[str], None]

#: soft cap on in-flight chunks per worker (bounds parent-side memory
#: while keeping every worker busy)
_INFLIGHT_PER_WORKER = 2


# -- worker side ---------------------------------------------------------

_WORKER_CONFIGS: Sequence[ExperimentConfig] = ()


def _init_worker(configs: Sequence[ExperimentConfig]) -> None:
    """Pool initializer: unpickle the unique-config table once per worker."""
    global _WORKER_CONFIGS
    _WORKER_CONFIGS = configs


def _run_chunk(
    tasks: Sequence[tuple[int, int]],
) -> list[tuple[int, int, ExperimentResult]]:
    """Run a chunk of ``(config_index, replication)`` tasks in one worker."""
    return [
        (ci, rep, run_single(_WORKER_CONFIGS[ci], rep)) for ci, rep in tasks
    ]


# -- parent side ---------------------------------------------------------

def default_chunksize(n_tasks: int, n_workers: int) -> int:
    """Chunk so each worker sees a few chunks (load balance vs IPC cost)."""
    if n_tasks <= 0:
        return 1
    return max(1, math.ceil(n_tasks / (max(1, n_workers) * 4)))


def run_grid(
    configs: Sequence[ExperimentConfig],
    n_replications: int,
    n_workers: int = 1,
    first_replication: int = 0,
    cache: Optional[ResultCache] = None,
    chunksize: Optional[int] = None,
    progress: Optional[ProgressFn] = None,
) -> list[list[ExperimentResult]]:
    """Run every config for every replication; return results per config.

    The returned list is parallel to ``configs``; each inner list holds
    ``n_replications`` results ordered by replication index.  Duplicate
    configs are simulated once and their result lists shared by value.
    """
    if n_replications < 1:
        raise ValueError(f"need >= 1 replication, got {n_replications}")
    if not configs:
        return []

    # 1+2. Deduplicate the grid (frozen dataclasses hash by content).
    unique: list[ExperimentConfig] = []
    index_of: dict[ExperimentConfig, int] = {}
    slots: list[int] = []
    for cfg in configs:
        ui = index_of.get(cfg)
        if ui is None:
            ui = index_of[cfg] = len(unique)
            unique.append(cfg)
        slots.append(ui)

    reps = range(first_replication, first_replication + n_replications)
    grid: list[dict[int, ExperimentResult]] = [{} for _ in unique]

    # 3. Resolve cache hits before scheduling any work.
    fingerprints = [config_fingerprint(cfg) for cfg in unique]
    tasks: list[tuple[int, int]] = []
    for ui, fp in enumerate(fingerprints):
        for rep in reps:
            hit = (
                cache.get(unique[ui], rep, fingerprint=fp)
                if cache is not None else None
            )
            if hit is not None:
                grid[ui][rep] = hit
            else:
                tasks.append((ui, rep))

    total = len(unique) * n_replications
    done = total - len(tasks)

    def note(ui: int, rep: int) -> None:
        if progress is not None:
            progress(
                f"[{done}/{total}] {unique[ui].describe()} rep {rep}"
            )

    def record(ui: int, rep: int, result: ExperimentResult) -> None:
        nonlocal done
        grid[ui][rep] = result
        if cache is not None:
            cache.put(unique[ui], rep, result, fingerprint=fingerprints[ui])
        done += 1
        note(ui, rep)

    # 4-5. Execute what is left: serial fast path, else one pool.
    if tasks:
        if n_workers <= 1 or len(tasks) == 1:
            for ui, rep in tasks:
                record(ui, rep, run_single(unique[ui], rep))
        else:
            _run_parallel(unique, tasks, n_workers, chunksize, record)

    # 6. Deterministic reassembly in (config, replication) order.
    per_unique = [
        [grid[ui][rep] for rep in reps] for ui in range(len(unique))
    ]
    return [list(per_unique[ui]) for ui in slots]


def _run_parallel(
    unique: Sequence[ExperimentConfig],
    tasks: list[tuple[int, int]],
    n_workers: int,
    chunksize: Optional[int],
    record: Callable[[int, int, ExperimentResult], None],
) -> None:
    """Fan a task list over one persistent pool, chunked, as-completed."""
    n_workers = min(n_workers, len(tasks))
    if chunksize is None:
        chunksize = default_chunksize(len(tasks), n_workers)
    chunks = [
        tasks[k:k + chunksize] for k in range(0, len(tasks), chunksize)
    ]
    with ProcessPoolExecutor(
        max_workers=n_workers,
        initializer=_init_worker,
        initargs=(tuple(unique),),
    ) as pool:
        backlog = iter(chunks)
        pending = {
            pool.submit(_run_chunk, chunk)
            for chunk in itertools.islice(
                backlog, n_workers * _INFLIGHT_PER_WORKER
            )
        }
        while pending:
            finished, pending = wait(pending, return_when=FIRST_COMPLETED)
            for fut in finished:
                for ci, rep, result in fut.result():
                    record(ci, rep, result)
                nxt = next(backlog, None)
                if nxt is not None:
                    pending.add(pool.submit(_run_chunk, nxt))


class SweepEngine:
    """Bound defaults for a sequence of grid runs.

    A convenience wrapper the registry and CLI use so that worker count,
    cache and progress reporting are decided once::

        engine = SweepEngine(n_workers=8, cache=shared_cache())
        baseline, r2 = engine.run_grid([cfg_none, cfg_r2], 50)
    """

    def __init__(
        self,
        n_workers: int = 1,
        cache: Optional[ResultCache] = None,
        chunksize: Optional[int] = None,
        progress: Optional[ProgressFn] = None,
    ) -> None:
        self.n_workers = max(1, int(n_workers))
        self.cache = cache
        self.chunksize = chunksize
        self.progress = progress

    def run_grid(
        self,
        configs: Sequence[ExperimentConfig],
        n_replications: int,
        first_replication: int = 0,
    ) -> list[list[ExperimentResult]]:
        return run_grid(
            configs,
            n_replications,
            n_workers=self.n_workers,
            first_replication=first_replication,
            cache=self.cache,
            chunksize=self.chunksize,
            progress=self.progress,
        )

    def run_replications(
        self,
        config: ExperimentConfig,
        n_replications: int,
        first_replication: int = 0,
    ) -> list[ExperimentResult]:
        [results] = self.run_grid([config], n_replications, first_replication)
        return results
