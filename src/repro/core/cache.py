"""Content-addressed result cache for replication sweeps.

Every figure of the paper reruns the same paired NONE baseline, and the
larger scheme x load grids the ROADMAP targets repeat whole sub-sweeps.
Since ``run_single(config, replication)`` is a pure function of
``(config, replication)`` (the RNG tree is derived from the config seed
and the replication index only), its results can be cached and shared
across :func:`~repro.core.runner.compare_schemes`,
:func:`~repro.core.runner.paired_nonadopter_penalty` and every registry
experiment.

Keys are *content addresses*: a SHA-256 fingerprint over the canonical
JSON form of every :class:`~repro.core.config.ExperimentConfig` field
plus :data:`CACHE_SCHEMA_VERSION`.  Any config change produces a new
key, and bumping the schema version (done whenever a simulator change
alters results) invalidates every old entry at once.

Storage is two-layer:

* a bounded in-process LRU (always on) so the baseline is computed once
  per process even without a cache directory;
* an optional on-disk layer (one pickle per ``(config, replication)``,
  written atomically) that survives across processes and CLI runs.

Disk entries are *verified on load*: the payload embeds the schema
version, fingerprint and replication index, and any mismatch or
unpickling error discards the file instead of trusting it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
from collections import OrderedDict
from pathlib import Path
from typing import Optional, Union

from ..contracts import declared_pure
from .config import ExperimentConfig
from .results import ExperimentResult

#: bump whenever simulator/scheduler changes alter results for an
#: unchanged config — every older on-disk entry then misses
#: (2: fault-injection fields on ExperimentConfig/ExperimentResult)
#: (3: observability fields — backfilled, events_executed,
#:  heap_compactions, phase_timings — on ClusterOutcome/ExperimentResult)
#: (4: fraction schemes now guarantee >= 2 copies on >= 2 clusters —
#:  HALF results change on small platforms without a config change —
#:  plus cancellation_policy/placement/service_regime config fields)
#: (5: online_metrics field on ExperimentResult — streaming Welford/P²
#:  snapshots now ride every cached result; older pickles lack the
#:  attribute and must miss)
CACHE_SCHEMA_VERSION = 5

#: default bound on the in-process LRU layer (entries, i.e. replications)
DEFAULT_MEMORY_ENTRIES = 128


@declared_pure
def config_fingerprint(
    config: ExperimentConfig, schema_version: int = CACHE_SCHEMA_VERSION
) -> str:
    """Stable content address of a configuration.

    Canonical JSON (sorted keys, tuples as lists) over *all* dataclass
    fields plus the cache schema version, hashed with SHA-256.  Two
    configs share a fingerprint iff they are equal, so the fingerprint
    doubles as the dedup key for grid flattening.
    """
    payload = {
        "schema": int(schema_version),
        "config": dataclasses.asdict(config),
    }
    canon = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()


class CacheStats:
    """Hit/miss/store counters (the warm-cache benchmark reads these)."""

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.discarded = 0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "discarded": self.discarded,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CacheStats({self.as_dict()})"


class ResultCache:
    """Two-layer (memory + optional disk) cache of experiment results.

    Parameters
    ----------
    root:
        Directory for the on-disk layer; ``None`` keeps the cache
        memory-only.  The directory is created lazily on first store.
    memory_entries:
        Bound on the in-process LRU layer; 0 disables it (useful when a
        huge paper-scale sweep should stream through the disk only).
    """

    def __init__(
        self,
        root: Optional[Union[str, Path]] = None,
        memory_entries: int = DEFAULT_MEMORY_ENTRIES,
    ) -> None:
        self.root = Path(root) if root is not None else None
        self.memory_entries = int(memory_entries)
        self._mem: OrderedDict[tuple[str, int], ExperimentResult] = OrderedDict()
        self.stats = CacheStats()

    # -- keys ------------------------------------------------------------

    def _path(self, fingerprint: str, replication: int) -> Path:
        assert self.root is not None
        return self.root / fingerprint[:2] / f"{fingerprint}-r{replication}.pkl"

    # -- memory layer ----------------------------------------------------

    def _mem_get(self, key: tuple[str, int]) -> Optional[ExperimentResult]:
        result = self._mem.get(key)
        if result is not None:
            self._mem.move_to_end(key)
        return result

    def _mem_put(self, key: tuple[str, int], result: ExperimentResult) -> None:
        if self.memory_entries <= 0:
            return
        self._mem[key] = result
        self._mem.move_to_end(key)
        while len(self._mem) > self.memory_entries:
            self._mem.popitem(last=False)

    # -- public API ------------------------------------------------------

    def get(
        self, config: ExperimentConfig, replication: int,
        fingerprint: Optional[str] = None,
    ) -> Optional[ExperimentResult]:
        """Cached result for ``(config, replication)``, or ``None``.

        ``fingerprint`` may be passed to avoid recomputing it in grid
        loops that already hold it.
        """
        fp = fingerprint or config_fingerprint(config)
        key = (fp, replication)
        result = self._mem_get(key)
        if result is not None:
            self.stats.hits += 1
            return result
        if self.root is not None:
            result = self._disk_get(fp, replication)
            if result is not None:
                self._mem_put(key, result)
                self.stats.hits += 1
                return result
        self.stats.misses += 1
        return None

    def put(
        self, config: ExperimentConfig, replication: int,
        result: ExperimentResult, fingerprint: Optional[str] = None,
    ) -> None:
        """Store a freshly computed result in both layers."""
        fp = fingerprint or config_fingerprint(config)
        self._mem_put((fp, replication), result)
        if self.root is not None:
            self._disk_put(fp, replication, result)
        self.stats.stores += 1

    def clear_memory(self) -> None:
        """Drop the in-process layer (disk entries are untouched)."""
        self._mem.clear()

    def prune_stale(self) -> int:
        """Delete disk entries written under a superseded schema version.

        Fingerprints embed :data:`CACHE_SCHEMA_VERSION`, so after a
        schema bump old entries are never *read* again (a lookup
        computes a new-schema fingerprint and probes new-schema paths
        only) — which also means the read-path discard never fires on
        them and they grow the cache directory without bound.  This
        scans the whole tree, removes every entry whose payload schema
        is not current (plus unreadable ones), and returns the count.
        Current-schema entries are untouched.
        """
        if self.root is None or not self.root.is_dir():
            return 0
        removed = 0
        for path in sorted(self.root.glob("*/*.pkl")):
            try:
                with open(path, "rb") as fh:
                    payload = pickle.load(fh)
            except (pickle.UnpicklingError, EOFError, AttributeError,
                    ValueError, ImportError):
                # Unreadable under this build: it can never hit either.
                self._discard(path)
                removed += 1
                continue
            except OSError:
                # Transient I/O failure: leave the file for next time.
                continue
            schema = payload.get("schema") if isinstance(payload, dict) else None
            if schema != CACHE_SCHEMA_VERSION:
                self._discard(path)
                removed += 1
        for shard in sorted(self.root.iterdir()):
            if shard.is_dir():
                try:
                    shard.rmdir()  # only succeeds once emptied
                except OSError:
                    pass
        return removed

    # -- disk layer ------------------------------------------------------

    def _disk_get(self, fp: str, replication: int) -> Optional[ExperimentResult]:
        path = self._path(fp, replication)
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
        except FileNotFoundError:
            return None
        except (pickle.UnpicklingError, EOFError, AttributeError, ValueError):
            # Truncated/corrupted pickle (or one referencing classes that
            # no longer unpickle): never trust it, delete the entry.
            self._discard(path)
            return None
        except OSError:
            # Transient I/O failure (permissions, NFS hiccup): the file
            # may be perfectly valid — treat as a miss, leave it alone.
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != CACHE_SCHEMA_VERSION
            or payload.get("fingerprint") != fp
            or payload.get("replication") != replication
            or not isinstance(payload.get("result"), ExperimentResult)
        ):
            self._discard(path)
            return None
        return payload["result"]

    def _disk_put(self, fp: str, replication: int, result: ExperimentResult) -> None:
        path = self._path(fp, replication)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "fingerprint": fp,
            "replication": replication,
            "result": result,
        }
        # Atomic publish: concurrent writers of the same key race
        # harmlessly (identical content), readers never see a torn file.
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _discard(self, path: Path) -> None:
        self.stats.discarded += 1
        try:
            os.unlink(path)
        except OSError:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = str(self.root) if self.root else "memory"
        return f"ResultCache({where}, {self.stats.as_dict()})"


# -- process-wide default (env-driven) ----------------------------------

_MEMORY_CACHE: Optional[ResultCache] = None
_DISK_CACHES: dict[str, ResultCache] = {}


def shared_cache() -> Optional[ResultCache]:
    """The cache the registry and CLI use, resolved from the environment.

    * ``REPRO_NO_CACHE=1`` — caching off entirely;
    * ``REPRO_CACHE_DIR=/path`` — disk-backed cache rooted there (one
      instance per directory, so the memory layer persists too);
    * otherwise — a process-wide memory-only cache, which is what makes
      the NONE baseline shared across registry figures in one run.
    """
    if os.environ.get("REPRO_NO_CACHE", "").strip().lower() in ("1", "true", "yes"):
        return None
    cache_dir = os.environ.get("REPRO_CACHE_DIR")
    if cache_dir:
        cache = _DISK_CACHES.get(cache_dir)
        if cache is None:
            # repro-lint: disable=PAR001 -- parent-process memoisation of
            # cache handles; workers never call shared_cache(), and a
            # per-process duplicate would only cost memory, not results
            cache = _DISK_CACHES[cache_dir] = ResultCache(cache_dir)
        return cache
    global _MEMORY_CACHE
    if _MEMORY_CACHE is None:
        # repro-lint: disable=PAR001 -- same parent-only memoisation
        _MEMORY_CACHE = ResultCache(None)
    return _MEMORY_CACHE
