"""Redundant-request schemes and target-cluster selection.

The paper evaluates five schemes (Section 3.3): **R2**, **R3**, **R4**
(a fixed number of copies), **HALF** and **ALL** (a fraction of the
platform), plus the implicit **NONE** baseline.  One request always
goes to the user's local cluster; the remaining targets are remote
clusters drawn randomly — uniformly by default ("users blindly send
requests to all clusters on which they have accounts"), or with a
geometric bias for the Table 2 non-uniform-accounts experiment
(cluster C1 twice as likely as C2, which is twice as likely as C3, …).

In heterogeneous platforms only clusters large enough for the job are
eligible (Section 3.3: "Jobs arriving at a cluster do not request more
compute nodes than available at that cluster", and redundant copies
follow the same rule).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class RedundancyScheme:
    """How many queues a job's requests are spread over.

    Attributes
    ----------
    name:
        Scheme label as used in the paper ("NONE", "R2", …, "ALL").
    fixed_copies:
        Total number of requests (including the local one) for Rk
        schemes; ``None`` for fraction-based schemes.
    fraction:
        Fraction of the platform targeted, for HALF (0.5) and ALL (1.0).
    """

    name: str
    fixed_copies: Optional[int] = None
    fraction: Optional[float] = None

    def __post_init__(self) -> None:
        if (self.fixed_copies is None) == (self.fraction is None):
            raise ValueError("exactly one of fixed_copies/fraction must be set")
        if self.fixed_copies is not None and self.fixed_copies < 1:
            raise ValueError(f"fixed_copies must be >= 1, got {self.fixed_copies}")
        if self.fraction is not None and not 0.0 < self.fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {self.fraction}")

    def copies(self, n_clusters: int) -> int:
        """Total requests per job on an ``n_clusters`` platform.

        Fraction-based schemes round to the nearest cluster count
        (HALF of 5 clusters → 3 including the local one); the result is
        clamped to ``[1, n_clusters]``.  A fraction scheme additionally
        guarantees at least 2 copies whenever the platform has at least
        2 clusters: HALF on 2 clusters used to round to 1, silently
        degrading to NONE, which made "HALF" lie on small platforms.
        """
        if n_clusters < 1:
            raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
        if self.fixed_copies is not None:
            k = self.fixed_copies
        else:
            # Round half-up (not banker's): HALF of 5 clusters is 3.
            k = int(math.floor(self.fraction * n_clusters + 0.5))
            if n_clusters >= 2:
                k = max(k, 2)
        return max(1, min(k, n_clusters))

    @property
    def is_redundant(self) -> bool:
        return self.name != "NONE"


#: the paper's scheme set, by name
SCHEMES: dict[str, RedundancyScheme] = {
    "NONE": RedundancyScheme("NONE", fixed_copies=1),
    "R2": RedundancyScheme("R2", fixed_copies=2),
    "R3": RedundancyScheme("R3", fixed_copies=3),
    "R4": RedundancyScheme("R4", fixed_copies=4),
    "HALF": RedundancyScheme("HALF", fraction=0.5),
    "ALL": RedundancyScheme("ALL", fraction=1.0),
}

#: schemes plotted in Figures 1-4, in the paper's legend order
PAPER_SCHEME_ORDER = ("R2", "R3", "R4", "HALF", "ALL")

#: supported target-placement strategies
PLACEMENTS = ("uniform", "balanced")


def get_scheme(name: str) -> RedundancyScheme:
    """Look up a scheme by name (case-insensitive).

    Beyond the paper's named set, generalised *redundancy-d* schemes
    parse on the fly: ``R<k>`` for any fixed copy count ``k >= 1``
    (``R7`` → 7 copies, subsuming R2/R3/R4) and ``F<frac>`` for any
    platform fraction in (0, 1] (``F0.25`` → a quarter of the clusters,
    subsuming HALF = ``F0.5`` and ALL = ``F1``).  Parsed schemes obey
    the same clamping/≥2-copies rules as the named ones.
    """
    key = name.upper()
    try:
        return SCHEMES[key]
    except KeyError:
        pass
    if len(key) > 1 and key[0] in ("R", "F"):
        body = key[1:]
        try:
            if key[0] == "R":
                return RedundancyScheme(key, fixed_copies=int(body))
            return RedundancyScheme(key, fraction=float(body))
        except ValueError:
            pass  # non-numeric body or out-of-range: fall through
    raise ValueError(
        f"unknown scheme {name!r}; choose from {sorted(SCHEMES)} "
        "or a generalised 'R<k>' / 'F<fraction>' form"
    )


def geometric_bias_weights(n_clusters: int, ratio: float = 0.5) -> np.ndarray:
    """Table 2's biased account distribution over clusters.

    ``P(C_i) ∝ ratio**i``: with the default ratio 0.5, cluster C1 is
    picked with twice the probability of C2, and so on — "heavily
    biased (half of the clusters are each picked with only probability
    6.25 %)" for N = 10.
    """
    if n_clusters < 1:
        raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
    if not 0.0 < ratio <= 1.0:
        raise ValueError(f"ratio must be in (0, 1], got {ratio}")
    w = ratio ** np.arange(n_clusters, dtype=float)
    return w / w.sum()


class TargetSelector:
    """Chooses which clusters receive a job's redundant copies.

    Parameters
    ----------
    scheme:
        The redundancy scheme in force for redundant jobs.
    node_counts:
        Platform cluster sizes, for eligibility filtering.
    rng:
        Private stream for target sampling.
    cluster_weights:
        Optional non-uniform account distribution (Table 2); defaults
        to uniform.  Weights are renormalised over the eligible remote
        clusters for each job.
    placement:
        ``"uniform"`` (default) draws remote targets randomly from the
        eligible set, as the paper's users do.  ``"balanced"`` is the
        *balanced nonadaptive* placement from the redundancy-d
        literature: remote copies go to the eligible clusters that have
        received the fewest copies so far (ties broken by cluster
        index), consuming no randomness at all.  Balanced placement is
        incompatible with ``cluster_weights``.
    """

    def __init__(
        self,
        scheme: RedundancyScheme,
        node_counts: Sequence[int],
        rng: np.random.Generator,
        cluster_weights: Optional[Sequence[float]] = None,
        placement: str = "uniform",
    ) -> None:
        if placement not in PLACEMENTS:
            raise ValueError(
                f"unknown placement {placement!r}; choose from {PLACEMENTS}"
            )
        if placement == "balanced" and cluster_weights is not None:
            raise ValueError(
                "balanced placement ignores account weights; "
                "drop cluster_weights or use uniform placement"
            )
        self.scheme = scheme
        self.node_counts = list(node_counts)
        self.rng = rng
        self.placement = placement
        #: copies assigned per cluster so far (balanced placement state)
        self._assigned = [0] * len(self.node_counts)
        if cluster_weights is not None:
            w = np.asarray(cluster_weights, dtype=float)
            if len(w) != len(self.node_counts):
                raise ValueError(
                    f"{len(w)} weights for {len(self.node_counts)} clusters"
                )
            if (w < 0).any() or not math.isfinite(w.sum()) or w.sum() <= 0:
                raise ValueError("weights must be non-negative and sum > 0")
            self.cluster_weights = w / w.sum()
        else:
            self.cluster_weights = None

    def eligible_remotes(self, origin: int, nodes: int) -> list[int]:
        """Remote clusters large enough to run a ``nodes``-node job."""
        return [
            i
            for i, cap in enumerate(self.node_counts)
            if i != origin and cap >= nodes
        ]

    def choose(self, origin: int, nodes: int, uses_redundancy: bool) -> list[int]:
        """Target clusters for one job; the origin is always first.

        Non-redundant jobs — and redundant jobs with no eligible remote
        cluster — go to the local cluster only.
        """
        if not 0 <= origin < len(self.node_counts):
            raise ValueError(f"origin {origin} out of range")
        if nodes > self.node_counts[origin]:
            raise ValueError(
                f"job of {nodes} nodes cannot originate at cluster {origin} "
                f"({self.node_counts[origin]} nodes)"
            )
        if not uses_redundancy or not self.scheme.is_redundant:
            return [origin]
        k = self.scheme.copies(len(self.node_counts))
        if k <= 1:
            return [origin]
        remotes = self.eligible_remotes(origin, nodes)
        if not remotes:
            return [origin]
        take = min(k - 1, len(remotes))
        if self.placement == "balanced":
            # Least-loaded-first, ties by index; no RNG draw at all, so
            # the targets stream stays untouched (common random numbers
            # across placements are preserved for the *other* streams).
            picked = sorted(remotes, key=lambda i: (self._assigned[i], i))[:take]
            self._assigned[origin] += 1
            for i in picked:
                self._assigned[i] += 1
            return [origin] + picked
        if self.cluster_weights is None:
            chosen = self.rng.choice(len(remotes), size=take, replace=False)
            picked = [remotes[int(i)] for i in chosen]
        else:
            w = self.cluster_weights[remotes]
            total = w.sum()
            if total <= 0:
                # All eligible remotes carry zero weight: fall back to
                # uniform rather than silently dropping redundancy.
                w = np.ones(len(remotes))
                total = float(len(remotes))
            probs = w / total
            chosen = self.rng.choice(len(remotes), size=take, replace=False, p=probs)
            picked = [remotes[int(i)] for i in chosen]
        return [origin] + picked
