"""Replication sweeps and paired scheme comparisons.

The paper's figures report, for each redundancy scheme, the metric
*relative to the NONE baseline*, averaged over 50 experiments — i.e. a
mean of per-replication paired ratios.  The pairing works because the
job streams of replication r are identical across schemes (common
random numbers, see :mod:`repro.workload.stream`).

Replications are embarrassingly parallel.  All sweeps here flatten
their full (config x replication) grid through the engine in
:mod:`repro.core.parallel`: one process pool for the whole grid, tasks
chunked as ``(config_index, replication)`` integer pairs (the configs
travel once via the pool initializer — nothing is materialised per
task), optional result caching, and deterministic reassembly so
``n_workers > 1`` is bit-identical to serial.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional, Sequence

if TYPE_CHECKING:  # typing-only: obs imports core at runtime
    from ..obs.metrics import MetricsRegistry

import numpy as np

_log = logging.getLogger("repro.core.runner")

from .cache import ResultCache
from .config import ExperimentConfig
from .metrics import summarize_ratios
from .parallel import GridStats, run_grid
from .results import ExperimentResult


def run_replications(
    config: ExperimentConfig,
    n_replications: int,
    n_workers: int = 1,
    first_replication: int = 0,
    cache: Optional[ResultCache] = None,
    chunksize: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
    stats: Optional[GridStats] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> list[ExperimentResult]:
    """Run ``n_replications`` independent replications of ``config``."""
    [results] = run_grid(
        [config],
        n_replications,
        n_workers=n_workers,
        first_replication=first_replication,
        cache=cache,
        chunksize=chunksize,
        progress=progress,
        stats=stats,
        metrics=metrics,
    )
    return results


@dataclass(frozen=True)
class RelativeMetrics:
    """One scheme's metrics relative to the paired NONE baseline.

    All values are means of per-replication ratios; below 1.0 means the
    scheme improves on no-redundancy.
    """

    scheme: str
    n_replications: int
    avg_stretch: float
    cv_stretch: float
    max_stretch: float
    avg_turnaround: float
    #: fraction of replications in which the scheme's average stretch
    #: beat the baseline's (the paper: ">95% of the experiments for N=20")
    win_fraction: float
    #: worst observed relative average stretch (the paper: "worse by at
    #: most 0.4%" → 1.004)
    worst_avg_stretch: float
    #: standard deviation of the per-replication stretch ratios
    avg_stretch_ratio_std: float
    #: paired ratios excluded from the means because the baseline value
    #: was zero or NaN (summed over the four ratio metrics; 0 = every
    #: replication contributed everywhere)
    dropped_ratios: int = 0


@dataclass
class SchemeComparison:
    """Paired comparison of several schemes against NONE."""

    base_config: ExperimentConfig
    n_replications: int
    baseline: list[ExperimentResult]
    per_scheme: dict[str, list[ExperimentResult]] = field(default_factory=dict)

    def relative(self, scheme: str) -> RelativeMetrics:
        results = self.per_scheme[scheme]
        base = self.baseline
        assert len(results) == len(base)
        ratios = [
            r.avg_stretch / b.avg_stretch for r, b in zip(results, base)
        ]
        avg = summarize_ratios(
            [(r.avg_stretch, b.avg_stretch) for r, b in zip(results, base)]
        )
        cv = summarize_ratios(
            [(r.cv_stretch, b.cv_stretch) for r, b in zip(results, base)]
        )
        mx = summarize_ratios(
            [(r.max_stretch, b.max_stretch) for r, b in zip(results, base)]
        )
        turnaround = summarize_ratios(
            [(r.avg_turnaround, b.avg_turnaround) for r, b in zip(results, base)]
        )
        dropped = avg.dropped + cv.dropped + mx.dropped + turnaround.dropped
        if dropped:
            _log.warning(
                "scheme %s: %d paired ratio(s) had zero/NaN baselines and "
                "were excluded from the relative metrics", scheme, dropped,
            )
        return RelativeMetrics(
            scheme=scheme,
            n_replications=len(results),
            avg_stretch=avg.mean,
            cv_stretch=cv.mean,
            max_stretch=mx.mean,
            avg_turnaround=turnaround.mean,
            win_fraction=float(np.mean([r < 1.0 for r in ratios])),
            worst_avg_stretch=float(np.max(ratios)),
            avg_stretch_ratio_std=float(np.std(ratios)),
            dropped_ratios=dropped,
        )

    def all_relative(self) -> dict[str, RelativeMetrics]:
        return {s: self.relative(s) for s in self.per_scheme}


def paired_nonadopter_penalty(
    base_config: ExperimentConfig,
    scheme: str,
    adoption: float,
    n_replications: int,
    n_workers: int = 1,
    cache: Optional[ResultCache] = None,
    stats: Optional[GridStats] = None,
) -> float:
    """Figure 4's fairness effect, isolated by pairing.

    Returns the mean over replications of ``stretch(non-adopters at
    adoption p) / stretch(same jobs at p = 0)``: how much worse the
    *identical* set of non-adopting jobs fares because other users
    adopted redundancy.  Values above 1 quantify the paper's
    "jobs using redundant requests negatively impact the performance
    perceived by jobs not using redundant requests".

    Pairing works because job streams and adoption draws are common
    random numbers: the non-adopter set at adoption ``p`` exists
    unchanged in the ``p = 0`` run.
    """
    if not 0.0 < adoption <= 1.0:
        raise ValueError(f"adoption must be in (0, 1], got {adoption}")
    cfg_p = base_config.with_(scheme=scheme, adoption_probability=adoption)
    cfg_0 = base_config.with_(scheme=scheme, adoption_probability=0.0)
    with_adoption, without = run_grid(
        [cfg_p, cfg_0], n_replications, n_workers=n_workers, cache=cache,
        stats=stats,
    )
    ratios = []
    for rp, r0 in zip(with_adoption, without):
        nr_ids = {j.job_id for j in rp.jobs if not j.uses_redundancy}
        s_p = [j.stretch for j in rp.jobs if j.job_id in nr_ids]
        s_0 = [j.stretch for j in r0.jobs if j.job_id in nr_ids]
        if s_p and s_0:
            ratios.append(float(np.mean(s_p)) / float(np.mean(s_0)))
    return float(np.mean(ratios)) if ratios else float("nan")


def compare_schemes(
    base_config: ExperimentConfig,
    schemes: Sequence[str],
    n_replications: int,
    n_workers: int = 1,
    progress: Optional[Callable[[str], None]] = None,
    cache: Optional[ResultCache] = None,
    chunksize: Optional[int] = None,
    stats: Optional[GridStats] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> SchemeComparison:
    """Run NONE plus every scheme in ``schemes`` on paired job streams.

    ``base_config.scheme`` is ignored; each run derives its scheme from
    the sweep.  The baseline and all schemes form one flattened grid, so
    with ``n_workers > 1`` baseline and scheme replications interleave
    across the pool instead of synchronising per scheme.  ``progress``
    receives a short message per grid entry (hook for CLI/bench
    reporting); ``metrics`` receives the engine's cache/task accounting
    (see :func:`~repro.core.parallel.run_grid`).
    """
    def note(msg: str) -> None:
        if progress is not None:
            progress(msg)

    baseline_cfg = base_config.with_(scheme="NONE")
    note(f"running baseline: {baseline_cfg.describe()}")
    _log.debug(
        "comparing %d scheme(s) against NONE, %d replication(s)",
        len(schemes), n_replications,
    )
    scheme_cfgs = []
    for scheme in schemes:
        cfg = base_config.with_(scheme=scheme)
        note(f"running scheme:   {cfg.describe()}")
        scheme_cfgs.append(cfg)
    results = run_grid(
        [baseline_cfg, *scheme_cfgs],
        n_replications,
        n_workers=n_workers,
        cache=cache,
        chunksize=chunksize,
        stats=stats,
        metrics=metrics,
    )
    comparison = SchemeComparison(
        base_config=base_config,
        n_replications=n_replications,
        baseline=results[0],
    )
    for scheme, scheme_results in zip(schemes, results[1:]):
        comparison.per_scheme[scheme] = scheme_results
    return comparison
