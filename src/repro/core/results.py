"""Result containers: per-job outcomes and per-experiment summaries.

The simulator's live objects (requests, schedulers) are reduced to
plain records as soon as a run finishes, so results are cheap to hold
across 50-replication sweeps and trivially serialisable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

import numpy as np

from .metrics import (
    MetricSummary,
    bounded_slowdown,
    node_seconds,
    stretch,
    waste_fraction,
)


@dataclass(frozen=True)
class JobOutcome:
    """Final timings of one job (defined by its winning request)."""

    job_id: int
    origin: int
    winner_cluster: int
    nodes: int
    runtime: float
    requested_time: float
    submit_time: float
    start_time: float
    end_time: float
    uses_redundancy: bool
    n_copies: int
    #: CBF's waiting-time prediction at the local cluster (None for
    #: EASY/FCFS runs)
    predicted_wait_local: Optional[float] = None
    #: min over all copies' predictions — what a redundant user would
    #: quote as their expected wait (Section 5)
    predicted_wait_min: Optional[float] = None

    @property
    def wait_time(self) -> float:
        return self.start_time - self.submit_time

    @property
    def turnaround(self) -> float:
        return self.end_time - self.submit_time

    @property
    def stretch(self) -> float:
        return stretch(self.turnaround, self.runtime)

    @property
    def bounded_slowdown(self) -> float:
        return bounded_slowdown(self.turnaround, self.runtime)

    @property
    def ran_remotely(self) -> bool:
        """Whether the winning copy ran away from the user's local cluster."""
        return self.winner_cluster != self.origin


@dataclass(frozen=True)
class ClusterOutcome:
    """Per-queue accounting for one cluster over one run."""

    cluster: int
    total_nodes: int
    submitted: int
    cancelled: int
    started: int
    completed: int
    max_queue_length: int
    #: pending requests lost to a queue-dropping scheduler crash
    dropped: int = 0
    #: starts that jumped the queue order (EASY backfill, CBF early start)
    backfilled: int = 0


@dataclass
class ExperimentResult:
    """All outcomes of one simulated experiment (one replication)."""

    scheme: str
    algorithm: str
    n_clusters: int
    replication: int
    #: outcomes of *completed* jobs (the metric population; jobs still
    #: queued or running when the simulation window closes are excluded,
    #: matching the paper's steady-state metrics under overload)
    jobs: list[JobOutcome] = field(default_factory=list)
    #: all jobs submitted, completed or not
    n_submitted_jobs: int = 0
    clusters: list[ClusterOutcome] = field(default_factory=list)
    #: total requests submitted / cancelled across all queues
    total_requests: int = 0
    total_cancellations: int = 0
    # -- fault accounting (all zero in a fault-free run) -------------------
    #: cancellation messages that never reached their scheduler
    lost_cancellations: int = 0
    #: submissions rejected by a downed scheduler
    failed_submissions: int = 0
    #: copies successfully submitted again after an outage
    resubmissions: int = 0
    #: jobs that lost every copy to faults before any could start
    abandoned_jobs: int = 0
    #: scheduler outages that began during the run
    outages: int = 0
    #: node-seconds burned by non-winning copies that ran anyway
    wasted_node_seconds: float = 0.0
    wall_time_s: float = 0.0
    # -- kernel/driver observability (metrics registry feedstock) ----------
    #: simulator events executed by this run
    events_executed: int = 0
    #: lazy-cancellation heap compaction sweeps performed
    heap_compactions: int = 0
    #: wall-clock per driver phase (generate/simulate/aggregate), seconds
    phase_timings: dict = field(default_factory=dict)
    #: streaming-estimator snapshot (:mod:`repro.obs.stream` payload,
    #: schema-versioned): Welford moments and P² p50/p90/p99 for
    #: stretch/wait/slowdown/wasted-work, accumulated during the run in
    #: O(1) memory.  ``None`` when online statistics were disabled.
    online_metrics: Optional[dict] = None

    # -- selections -------------------------------------------------------

    def select(self, redundant: Optional[bool] = None) -> list[JobOutcome]:
        """Jobs filtered by redundancy use (None = all jobs)."""
        if redundant is None:
            return self.jobs
        return [j for j in self.jobs if j.uses_redundancy == redundant]

    def stretches(self, redundant: Optional[bool] = None) -> np.ndarray:
        return np.array([j.stretch for j in self.select(redundant)], dtype=float)

    def turnarounds(self, redundant: Optional[bool] = None) -> np.ndarray:
        return np.array([j.turnaround for j in self.select(redundant)], dtype=float)

    def waits(self, redundant: Optional[bool] = None) -> np.ndarray:
        return np.array([j.wait_time for j in self.select(redundant)], dtype=float)

    # -- headline metrics (Section 3.2) -------------------------------------

    def stretch_summary(self, redundant: Optional[bool] = None) -> MetricSummary:
        return MetricSummary.of(self.stretches(redundant))

    @property
    def avg_stretch(self) -> float:
        return self.stretch_summary().mean

    @property
    def cv_stretch(self) -> float:
        """Coefficient of variation of stretches, in percent."""
        return self.stretch_summary().cv_percent

    @property
    def max_stretch(self) -> float:
        return self.stretch_summary().maximum

    @property
    def avg_turnaround(self) -> float:
        t = self.turnarounds()
        return float(t.mean()) if t.size else float("nan")

    @property
    def n_jobs(self) -> int:
        """Number of completed jobs (the metric population)."""
        return len(self.jobs)

    @property
    def completion_fraction(self) -> float:
        """Completed / submitted — well below 1 under peak-hour overload."""
        if self.n_submitted_jobs == 0:
            return float("nan")
        return len(self.jobs) / self.n_submitted_jobs

    @property
    def max_queue_length(self) -> int:
        """Largest queue length observed on any cluster."""
        if not self.clusters:
            return 0
        return max(c.max_queue_length for c in self.clusters)

    @property
    def avg_max_queue_length(self) -> float:
        """Average over clusters of each queue's maximum length.

        The paper's Section 4.1 queue-size comparison ("the average
        maximum queue size across all clusters for the ALL scheme is
        larger ... by less than 2%") uses exactly this statistic.
        """
        if not self.clusters:
            return float("nan")
        return float(np.mean([c.max_queue_length for c in self.clusters]))

    # -- waste accounting (the fault-regime headline) -----------------------

    @property
    def useful_node_seconds(self) -> float:
        """Node-seconds spent by winning copies of completed jobs."""
        return node_seconds((j.nodes, j.runtime) for j in self.jobs)

    @property
    def wasted_work_fraction(self) -> float:
        """Wasted node-seconds over all node-seconds consumed.

        Zero in a perfect world; grows with lost/late cancellations as
        orphaned copies run to completion beside their winners.
        """
        return waste_fraction(self.useful_node_seconds, self.wasted_node_seconds)

    @property
    def dropped_requests(self) -> int:
        """Pending requests lost to queue-dropping crashes, all clusters."""
        return sum(c.dropped for c in self.clusters)

    @property
    def total_backfills(self) -> int:
        """Out-of-order starts (backfill decisions) across all clusters."""
        return sum(c.backfilled for c in self.clusters)

    def remote_fraction(self) -> float:
        """Fraction of redundant jobs whose winner ran remotely."""
        red = self.select(redundant=True)
        if not red:
            return float("nan")
        return sum(1 for j in red if j.ran_remotely) / len(red)


def merge_results(results: Iterable[ExperimentResult]) -> list[ExperimentResult]:
    """Materialise and sanity-check a replication collection.

    Rejects mixed configurations *and* duplicated replications: feeding
    the same replication twice (a retry that was also kept, a cache
    layer double-counting) would silently bias every mean the sweep
    reports, so it is an error rather than a statistic.
    """
    out = list(results)
    if not out:
        raise ValueError("no results to merge")
    first = out[0]
    seen: set[tuple] = set()
    for r in out:
        if (r.scheme, r.algorithm, r.n_clusters) != (
            first.scheme, first.algorithm, first.n_clusters
        ):
            raise ValueError(
                "mixing results from different configurations: "
                f"{(r.scheme, r.algorithm, r.n_clusters)} vs "
                f"{(first.scheme, first.algorithm, first.n_clusters)}"
            )
        key = (r.scheme, r.algorithm, r.n_clusters, r.replication)
        if key in seen:
            raise ValueError(
                f"duplicate replication in merge: (scheme={r.scheme}, "
                f"algorithm={r.algorithm}, n_clusters={r.n_clusters}, "
                f"replication={r.replication}) appears more than once"
            )
        seen.add(key)
    return out
