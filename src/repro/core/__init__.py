"""The paper's contribution: user-driven redundant batch requests.

High-level entry points:

* :class:`ExperimentConfig` + :func:`run_single` — one simulated run;
* :func:`run_replications` — a replication sweep;
* :func:`compare_schemes` — paired relative metrics against NONE, the
  form every figure and table in the paper uses;
* :func:`run_grid` / :class:`SweepEngine` — the flattened parallel
  sweep engine underneath all of the above;
* :class:`ResultCache` — content-addressed result caching shared by
  sweeps and registry figures.
"""

from .cache import (
    CACHE_SCHEMA_VERSION,
    ResultCache,
    config_fingerprint,
    shared_cache,
)
from .config import DEFAULT_DURATION, DEFAULT_NODES, ExperimentConfig
from .coordinator import Coordinator, RedundantJob
from .experiment import run_single
from .metrics import (
    BOUNDED_SLOWDOWN_TAU,
    MetricSummary,
    RatioSummary,
    bounded_slowdown,
    mean_of_ratios,
    relative,
    stretch,
    summarize_ratios,
)
from .results import ClusterOutcome, ExperimentResult, JobOutcome, merge_results
from .parallel import SweepEngine, run_grid
from .runner import (
    RelativeMetrics,
    paired_nonadopter_penalty,
    SchemeComparison,
    compare_schemes,
    run_replications,
)
from .schemes import (
    PAPER_SCHEME_ORDER,
    SCHEMES,
    RedundancyScheme,
    TargetSelector,
    geometric_bias_weights,
    get_scheme,
)

__all__ = [
    "ExperimentConfig",
    "DEFAULT_NODES",
    "DEFAULT_DURATION",
    "run_single",
    "run_replications",
    "run_grid",
    "SweepEngine",
    "ResultCache",
    "CACHE_SCHEMA_VERSION",
    "config_fingerprint",
    "shared_cache",
    "compare_schemes",
    "SchemeComparison",
    "RelativeMetrics",
    "Coordinator",
    "RedundantJob",
    "ExperimentResult",
    "JobOutcome",
    "ClusterOutcome",
    "merge_results",
    "MetricSummary",
    "stretch",
    "bounded_slowdown",
    "relative",
    "mean_of_ratios",
    "RatioSummary",
    "summarize_ratios",
    "BOUNDED_SLOWDOWN_TAU",
    "RedundancyScheme",
    "TargetSelector",
    "SCHEMES",
    "PAPER_SCHEME_ORDER",
    "get_scheme",
    "geometric_bias_weights",
    "paired_nonadopter_penalty",
]
