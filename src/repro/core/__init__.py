"""The paper's contribution: user-driven redundant batch requests.

High-level entry points:

* :class:`ExperimentConfig` + :func:`run_single` — one simulated run;
* :func:`run_replications` — a replication sweep;
* :func:`compare_schemes` — paired relative metrics against NONE, the
  form every figure and table in the paper uses.
"""

from .config import DEFAULT_DURATION, DEFAULT_NODES, ExperimentConfig
from .coordinator import Coordinator, RedundantJob
from .experiment import run_single
from .metrics import (
    BOUNDED_SLOWDOWN_TAU,
    MetricSummary,
    bounded_slowdown,
    mean_of_ratios,
    relative,
    stretch,
)
from .results import ClusterOutcome, ExperimentResult, JobOutcome, merge_results
from .tracing import (
    growth_rate,
    level_at,
    peak,
    queue_length_timeline,
    system_request_timeline,
    time_average,
    utilization_timeline,
)
from .runner import (
    RelativeMetrics,
    paired_nonadopter_penalty,
    SchemeComparison,
    compare_schemes,
    run_replications,
)
from .schemes import (
    PAPER_SCHEME_ORDER,
    SCHEMES,
    RedundancyScheme,
    TargetSelector,
    geometric_bias_weights,
    get_scheme,
)

__all__ = [
    "ExperimentConfig",
    "DEFAULT_NODES",
    "DEFAULT_DURATION",
    "run_single",
    "run_replications",
    "compare_schemes",
    "SchemeComparison",
    "RelativeMetrics",
    "Coordinator",
    "RedundantJob",
    "ExperimentResult",
    "JobOutcome",
    "ClusterOutcome",
    "merge_results",
    "MetricSummary",
    "stretch",
    "bounded_slowdown",
    "relative",
    "mean_of_ratios",
    "BOUNDED_SLOWDOWN_TAU",
    "RedundancyScheme",
    "TargetSelector",
    "SCHEMES",
    "PAPER_SCHEME_ORDER",
    "get_scheme",
    "geometric_bias_weights",
    "paired_nonadopter_penalty",
    "system_request_timeline",
    "queue_length_timeline",
    "utilization_timeline",
    "growth_rate",
    "time_average",
    "peak",
    "level_at",
]
