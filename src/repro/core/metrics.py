"""Schedule-quality metrics (Section 3.2 of the paper).

* **stretch** (a.k.a. slowdown): turnaround time divided by execution
  time.  The paper prefers it over raw turnaround because it is robust
  to long jobs and comparable across workloads.
* **coefficient of variation of stretches**: standard deviation divided
  by the mean, in percent — the paper's fairness metric (lower = fairer).
* **maximum stretch**: the alternative fairness metric the paper
  mentions (improved 10-60 % by redundancy).
* **bounded slowdown**: the standard variant that floors the runtime at
  τ seconds so sub-τ jobs cannot dominate; provided for the ablation
  showing the paper's conclusions do not hinge on the raw metric.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

_log = logging.getLogger("repro.core.metrics")

#: conventional bounded-slowdown threshold (Feitelson et al.)
BOUNDED_SLOWDOWN_TAU = 10.0


def stretch(turnaround: float, runtime: float) -> float:
    """Turnaround divided by execution time; always >= 1.

    A zero-wait job accumulates float rounding through ``start + runtime``
    event arithmetic, so turnarounds a few ulps below the runtime are
    clamped to a stretch of exactly 1 rather than rejected.
    """
    if runtime <= 0:
        raise ValueError(f"runtime must be positive, got {runtime}")
    if turnaround < runtime:
        if turnaround < runtime * (1.0 - 1e-9):
            raise ValueError(
                f"turnaround {turnaround} below runtime {runtime} (negative wait?)"
            )
        return 1.0
    return turnaround / runtime


def bounded_slowdown(
    turnaround: float, runtime: float, tau: float = BOUNDED_SLOWDOWN_TAU
) -> float:
    """max(turnaround / max(runtime, τ), 1)."""
    if runtime <= 0:
        raise ValueError(f"runtime must be positive, got {runtime}")
    return max(turnaround / max(runtime, tau), 1.0)


@dataclass(frozen=True)
class MetricSummary:
    """Aggregate statistics over a population of per-job values."""

    count: int
    mean: float
    std: float
    maximum: float

    @property
    def cv_percent(self) -> float:
        """Coefficient of variation in percent (the fairness metric)."""
        if self.count == 0 or self.mean == 0:
            return float("nan")
        return 100.0 * self.std / self.mean

    @classmethod
    def of(cls, values: Iterable[float]) -> "MetricSummary":
        arr = np.asarray(list(values), dtype=float)
        if arr.size == 0:
            return cls(count=0, mean=float("nan"), std=float("nan"),
                       maximum=float("nan"))
        return cls(
            count=int(arr.size),
            mean=float(arr.mean()),
            std=float(arr.std()),  # population std, matching CV convention
            maximum=float(arr.max()),
        )


def node_seconds(allocations: Iterable[tuple[float, float]]) -> float:
    """Total node-seconds of ``(nodes, seconds)`` allocations."""
    return float(sum(n * s for n, s in allocations))


def waste_fraction(useful: float, wasted: float) -> float:
    """Wasted work over all work consumed, in [0, 1].

    The fault-regime headline: node-seconds burned by orphaned or
    duplicate copies divided by everything the platform computed.
    """
    if useful < 0 or wasted < 0:
        raise ValueError(
            f"node-seconds must be >= 0, got useful={useful}, wasted={wasted}"
        )
    total = useful + wasted
    if total == 0:
        return 0.0
    return wasted / total


def relative(value: float, baseline: float) -> float:
    """Ratio ``value / baseline`` — "relative to the scheme using no
    redundant requests" in the paper's tables; below 1 means redundancy
    helped."""
    if baseline == 0:
        return float("nan")
    return value / baseline


@dataclass(frozen=True)
class RatioSummary:
    """Mean of paired ratios plus the accounting the mean alone hides."""

    #: mean of the finite per-replication ratios (NaN when none survive)
    mean: float
    #: ratios that entered the mean
    used: int
    #: non-finite ratios (zero or NaN baselines) silently excluded before
    #: this accounting existed
    dropped: int


def summarize_ratios(pairs: Sequence[tuple[float, float]]) -> RatioSummary:
    """Mean of per-experiment ratios with explicit dropped-pair accounting.

    Each replication contributes ``scheme_metric / baseline_metric``;
    the figures report the mean of those paired ratios over 50
    experiments, not the ratio of means.  Pairs whose ratio is not
    finite (a zero or NaN baseline) cannot enter the mean; they are
    *counted* instead of vanishing, so a run where, say, half the
    baselines degenerated cannot masquerade as a clean average.
    """
    ratios = [relative(v, b) for v, b in pairs]
    clean = [r for r in ratios if np.isfinite(r)]
    dropped = len(ratios) - len(clean)
    mean = float(np.mean(clean)) if clean else float("nan")
    return RatioSummary(mean=mean, used=len(clean), dropped=dropped)


def mean_of_ratios(pairs: Sequence[tuple[float, float]]) -> float:
    """Average of per-experiment ratios (the paper's averaging order).

    Thin wrapper over :func:`summarize_ratios` that warns (on the
    ``repro`` logger namespace) whenever non-finite ratios were dropped,
    instead of silently filtering them.  Callers that need the counts
    should use :func:`summarize_ratios` directly.
    """
    summary = summarize_ratios(pairs)
    if summary.dropped:
        _log.warning(
            "mean_of_ratios: dropped %d of %d ratio(s) with zero or NaN "
            "baselines; the mean covers the remaining %d pair(s)",
            summary.dropped,
            summary.dropped + summary.used,
            summary.used,
        )
    return summary.mean
