"""Work-queue executor: lease chunks to remote workers over HTTP.

The queue is the rendezvous between an orchestrator (running inside
``repro serve``) and any number of ``repro worker`` processes:

* a worker **leases** the next open chunk — it receives the task list,
  the config payloads and a lease token, and the chunk stops being
  offered to other workers;
* while computing, the worker **heartbeats** the lease to push its
  deadline back; a worker that dies (or stalls past the TTL) simply
  stops heartbeating and the chunk is **requeued** on expiry;
* on success the worker **completes** the lease with the chunk's
  results.  A completion carrying a stale token is still accepted:
  ``run_single`` is a pure function, so a chunk computed twice (the
  original worker was slow, not dead) yields identical results and the
  orchestrator's idempotent ``record`` drops the duplicate.

A chunk that expires :data:`DEFAULT_MAX_ATTEMPTS` times is declared
failed and the executor raises
:class:`~repro.core.orchestrator.TaskError` naming its first task —
mirroring the process-pool executor's give-up semantics.

Time is injected (``clock``) so tests drive lease expiry
deterministically; the default is ``time.monotonic``, which never
influences results — only *which worker* computes a chunk, and the
results are worker-invariant by construction.
"""

from __future__ import annotations

import logging
import threading
import time
from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:
    from ..orchestrator import Orchestrator, Task
    from ..results import ExperimentResult

from ..orchestrator import SweepCancelled, TaskError

_log = logging.getLogger("repro.core.executors.workqueue")

DEFAULT_LEASE_TTL_S = 30.0
DEFAULT_MAX_ATTEMPTS = 3


class ChunkLease:
    """One granted lease: what a worker needs to compute a chunk."""

    def __init__(
        self, chunk_id: int, token: int, tasks: list["Task"],
        ttl_s: float, attempt: int,
    ) -> None:
        self.chunk_id = chunk_id
        self.token = token
        self.tasks = tasks
        self.ttl_s = ttl_s
        self.attempt = attempt

    def to_dict(self) -> dict:
        return {
            "chunk_id": self.chunk_id,
            "token": self.token,
            "tasks": [[ci, rep] for ci, rep in self.tasks],
            "ttl_s": self.ttl_s,
            "attempt": self.attempt,
        }


class ChunkQueue:
    """Thread-safe lease queue over a fixed set of chunks.

    The queue tracks chunk state only (open / leased / done / failed);
    completed results are buffered for the executor to drain and feed
    the orchestrator.  All methods are safe to call from HTTP handler
    threads concurrently with the executor's polling loop.
    """

    def __init__(
        self,
        chunks: dict[int, list["Task"]],
        lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if lease_ttl_s <= 0:
            raise ValueError(f"lease_ttl_s must be > 0, got {lease_ttl_s}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.lease_ttl_s = lease_ttl_s
        self.max_attempts = max_attempts
        self._clock = clock
        self._lock = threading.Lock()
        self._chunks = {cid: list(tasks) for cid, tasks in chunks.items()}
        self._open = sorted(self._chunks)
        #: chunk_id -> (token, deadline, worker_id, attempt)
        self._leased: dict[int, tuple[int, float, str, int]] = {}
        self._attempts: dict[int, int] = {}
        self._done: set[int] = set()
        self._failed: dict[int, int] = {}
        self._completed_buffer: list[
            tuple[int, list[tuple[int, int, "ExperimentResult"]]]
        ] = []
        self._next_token = 1

    # -- worker-facing surface ------------------------------------------

    def lease(self, worker_id: str) -> Optional[ChunkLease]:
        """Grant the next open chunk to ``worker_id``, or None if empty."""
        with self._lock:
            self._expire_locked()
            if not self._open:
                return None
            cid = self._open.pop(0)
            token = self._next_token
            self._next_token += 1
            attempt = self._attempts.get(cid, 0) + 1
            self._attempts[cid] = attempt
            deadline = self._clock() + self.lease_ttl_s
            self._leased[cid] = (token, deadline, worker_id, attempt)
            _log.debug(
                "leased chunk %d to %s (token %d, attempt %d)",
                cid, worker_id, token, attempt,
            )
            return ChunkLease(
                cid, token, list(self._chunks[cid]),
                self.lease_ttl_s, attempt,
            )

    def heartbeat(self, chunk_id: int, token: int) -> bool:
        """Extend a live lease's deadline; False if the lease is stale."""
        with self._lock:
            held = self._leased.get(chunk_id)
            if held is None or held[0] != token:
                return False
            _, _, worker_id, attempt = held
            self._leased[chunk_id] = (
                token, self._clock() + self.lease_ttl_s, worker_id, attempt,
            )
            return True

    def complete(
        self,
        chunk_id: int,
        token: int,
        results: list[tuple[int, int, "ExperimentResult"]],
    ) -> bool:
        """Accept a chunk's results; returns False for a stale token.

        Stale completions are *still buffered* — the computation is
        valid regardless of who holds the lease now — so a slow worker
        racing its own expiry never wastes its work.
        """
        with self._lock:
            held = self._leased.get(chunk_id)
            fresh = held is not None and held[0] == token
            if chunk_id in self._done:
                return fresh
            if fresh:
                del self._leased[chunk_id]
            else:
                # The chunk may be re-open or re-leased; retract both.
                self._leased.pop(chunk_id, None)
                if chunk_id in self._open:
                    self._open.remove(chunk_id)
            self._failed.pop(chunk_id, None)
            self._done.add(chunk_id)
            self._completed_buffer.append((chunk_id, list(results)))
            return fresh

    def fail(self, chunk_id: int, token: int, cause: str) -> bool:
        """A worker reports a chunk as failed (task raised remotely).

        Counts against the chunk's attempt budget like an expiry; the
        chunk is requeued until the budget runs out.
        """
        with self._lock:
            held = self._leased.get(chunk_id)
            if held is None or held[0] != token:
                return False
            del self._leased[chunk_id]
            _log.warning("chunk %d failed remotely: %s", chunk_id, cause)
            if self._attempts.get(chunk_id, 0) >= self.max_attempts:
                self._failed[chunk_id] = self._attempts[chunk_id]
            else:
                self._open.append(chunk_id)
                self._open.sort()
            return True

    # -- executor-facing surface ----------------------------------------

    def expire(self) -> list[int]:
        """Requeue every lease past its deadline; return their ids."""
        with self._lock:
            return self._expire_locked()

    def _expire_locked(self) -> list[int]:
        now = self._clock()
        expired = [
            cid for cid, (_, deadline, _, _) in self._leased.items()
            if deadline <= now
        ]
        for cid in expired:
            token, _, worker_id, attempt = self._leased.pop(cid)
            _log.warning(
                "lease on chunk %d (worker %s, attempt %d) expired; "
                "requeueing", cid, worker_id, attempt,
            )
            if attempt >= self.max_attempts:
                self._failed[cid] = attempt
            else:
                self._open.append(cid)
                self._open.sort()
        return expired

    def drain_completed(
        self,
    ) -> list[tuple[int, list[tuple[int, int, "ExperimentResult"]]]]:
        """Hand over buffered chunk results (clears the buffer)."""
        with self._lock:
            out = self._completed_buffer
            self._completed_buffer = []
            return out

    def first_failed(self) -> Optional[tuple[int, "Task", int]]:
        """(chunk_id, first task, attempts) of a failed chunk, if any."""
        with self._lock:
            if not self._failed:
                return None
            cid = min(self._failed)
            return cid, self._chunks[cid][0], self._failed[cid]

    def outstanding(self) -> int:
        """Chunks not yet done (open + leased + failed)."""
        with self._lock:
            return len(self._chunks) - len(self._done)

    def snapshot(self) -> dict:
        """JSON-able queue state for the service status endpoint."""
        with self._lock:
            return {
                "chunks": len(self._chunks),
                "open": len(self._open),
                "leased": len(self._leased),
                "done": len(self._done),
                "failed": len(self._failed),
            }


class WorkQueueExecutor:
    """Serve pending chunks through a :class:`ChunkQueue` until drained.

    The executor itself computes nothing: it polls the queue, feeds
    completed results into the orchestrator, requeues expired leases,
    and gives up (raising :class:`TaskError`) once a chunk exhausts its
    attempt budget.  Workers reach the queue through whatever transport
    wraps it — the HTTP routes of ``repro serve``, or direct method
    calls in tests.
    """

    name = "work-queue"

    def __init__(
        self,
        lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        poll_interval_s: float = 0.05,
        clock: Callable[[], float] = time.monotonic,
        on_queue_ready: Optional[Callable[[ChunkQueue], None]] = None,
    ) -> None:
        self.lease_ttl_s = lease_ttl_s
        self.max_attempts = max_attempts
        self.poll_interval_s = poll_interval_s
        self._clock = clock
        self._on_queue_ready = on_queue_ready
        self.queue: Optional[ChunkQueue] = None

    def execute(self, orchestrator: "Orchestrator") -> None:
        queue = ChunkQueue(
            orchestrator.pending_chunks(),
            lease_ttl_s=self.lease_ttl_s,
            max_attempts=self.max_attempts,
            clock=self._clock,
        )
        self.queue = queue
        if self._on_queue_ready is not None:
            # Publish the queue (e.g. into the service's routing table)
            # only once it is fully constructed.
            self._on_queue_ready(queue)
        try:
            while True:
                queue.expire()
                for cid, results in queue.drain_completed():
                    orchestrator.complete_chunk(cid, results)
                failed = queue.first_failed()
                if failed is not None:
                    cid, (ci, rep), attempts = failed
                    raise TaskError(
                        orchestrator.unique[ci].describe(), rep,
                        f"chunk {cid} exhausted {attempts} lease "
                        f"attempt(s) on the work queue",
                    )
                if queue.outstanding() == 0:
                    break
                try:
                    orchestrator.check_cancelled()
                except SweepCancelled:
                    raise
                time.sleep(self.poll_interval_s)
            # One final drain: a completion can land between the last
            # drain and the outstanding()==0 check.
            for cid, results in queue.drain_completed():
                orchestrator.complete_chunk(cid, results)
        finally:
            self.queue = None
