"""Process-pool executor: one persistent pool for the whole grid.

Extracted from ``core/parallel.py``; failure handling is pinned by
``tests/core/test_parallel_failures.py`` and comes in two tiers:

* a task raising inside a worker surfaces as
  :class:`~repro.core.orchestrator.TaskError`; its chunk is retried
  once on the same (healthy) pool;
* a worker *crashing* breaks the whole pool and cannot tell us which
  task did it — every in-flight task is a suspect.  The remaining work
  is retried once on a fresh pool; a second crash raises ``TaskError``
  naming the first suspect.
"""

from __future__ import annotations

import logging
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import TYPE_CHECKING, Optional, Sequence

if TYPE_CHECKING:
    from ..config import ExperimentConfig
    from ..orchestrator import Orchestrator, RunnerFn, Task
    from ..results import ExperimentResult

from ..orchestrator import TaskError

_log = logging.getLogger("repro.core.executors.pool")

#: soft cap on in-flight chunks per worker (bounds parent-side memory
#: while keeping every worker busy)
_INFLIGHT_PER_WORKER = 2


class _PoolBroken(Exception):
    """Internal: the process pool died; ``suspects`` were in flight."""

    def __init__(self, suspects: list["Task"]) -> None:
        super().__init__(suspects)
        self.suspects = suspects


# -- worker side ---------------------------------------------------------

_WORKER_CONFIGS: Sequence["ExperimentConfig"] = ()
_WORKER_RUNNER: Optional["RunnerFn"] = None


def _init_worker(
    configs: Sequence["ExperimentConfig"],
    runner: Optional["RunnerFn"] = None,
) -> None:
    """Pool initializer: unpickle the unique-config table once per worker."""
    global _WORKER_CONFIGS, _WORKER_RUNNER
    # repro-lint: disable=PAR001 -- the pool initializer installs the
    # per-process config table exactly once, before any task runs; this
    # is the mechanism that *avoids* per-task state shipping
    _WORKER_CONFIGS = configs
    # repro-lint: disable=PAR001 -- same single-shot initializer install
    _WORKER_RUNNER = runner
    # Spawned workers inherit no handler state; mirror the parent's
    # logging setup from the environment (deferred import: obs imports
    # core at its own import time).
    from ...obs.log import setup_worker_logging

    setup_worker_logging()


def _run_chunk(
    tasks: Sequence["Task"],
) -> list[tuple[int, int, "ExperimentResult"]]:
    """Run a chunk of ``(config_index, replication)`` tasks in one worker.

    Any task exception is wrapped in :class:`TaskError` so the parent
    learns *which* ``(config, replication)`` failed, not just that
    something somewhere in the chunk raised.
    """
    if _WORKER_RUNNER is not None:
        fn = _WORKER_RUNNER
    else:
        from ..experiment import run_single

        fn = run_single
    out = []
    for ci, rep in tasks:
        cfg = _WORKER_CONFIGS[ci]
        try:
            out.append((ci, rep, fn(cfg, rep)))
        except Exception as exc:
            raise TaskError(cfg.describe(), rep, repr(exc)) from exc
    return out


# -- parent side ---------------------------------------------------------

class PoolExecutor:
    """Fan pending chunks over one ``ProcessPoolExecutor``, as-completed."""

    name = "process-pool"

    def __init__(self, n_workers: int) -> None:
        self.n_workers = max(1, int(n_workers))

    def execute(self, orchestrator: "Orchestrator") -> None:
        chunks = orchestrator.pending_chunks()
        n_tasks = sum(len(c) for c in chunks.values())
        if n_tasks == 0:
            return
        n_workers = min(self.n_workers, n_tasks)
        for attempt in (0, 1):
            try:
                self._drain_pool(
                    orchestrator, chunks, n_workers,
                    allow_chunk_retry=(attempt == 0),
                )
                return
            except _PoolBroken as broken:
                ci, rep = broken.suspects[0]
                unique = orchestrator.unique
                stats = orchestrator.stats
                _log.warning(
                    "worker pool crashed with %d task(s) in flight "
                    "(first suspect: %s rep %d)%s",
                    len(broken.suspects), unique[ci].describe(), rep,
                    "" if attempt == 1 else "; rerunning on a fresh pool",
                )
                if stats is not None:
                    stats.record_failure(
                        f"{unique[ci].describe()} rep {rep}"
                    )
                if attempt == 1:
                    raise TaskError(
                        unique[ci].describe(),
                        rep,
                        "worker process crashed (BrokenProcessPool); "
                        f"{len(broken.suspects)} in-flight task(s) "
                        "suspected",
                    ) from broken
                if stats is not None:
                    stats.retries += 1
                chunks = orchestrator.pending_chunks()

    def _drain_pool(
        self,
        orchestrator: "Orchestrator",
        chunks: dict[int, list["Task"]],
        n_workers: int,
        allow_chunk_retry: bool,
    ) -> None:
        """Run ``chunks`` on one pool, removing each as it completes.

        On a pool crash, raises :class:`_PoolBroken` with every
        in-flight task as a suspect; the orchestrator still tracks all
        unfinished work so the caller can rerun it on a fresh pool.
        """
        stats = orchestrator.stats
        retried: set[int] = set()
        with ProcessPoolExecutor(
            max_workers=n_workers,
            initializer=_init_worker,
            initargs=(tuple(orchestrator.unique), orchestrator.runner),
        ) as pool:
            backlog = iter(list(chunks.items()))
            in_flight: dict[Future, tuple[int, list["Task"]]] = {}

            def submit(cid: int, chunk: list["Task"]) -> None:
                try:
                    fut = pool.submit(_run_chunk, chunk)
                except BrokenProcessPool:
                    # The pool died under us; surface every in-flight
                    # task (plus this one) as a suspect for the outer
                    # retry.
                    suspects = list(chunk)
                    for _, other in in_flight.values():
                        suspects.extend(other)
                    raise _PoolBroken(suspects) from None
                in_flight[fut] = (cid, chunk)

            def submit_next() -> None:
                item = next(backlog, None)
                if item is not None:
                    submit(*item)

            for _ in range(n_workers * _INFLIGHT_PER_WORKER):
                submit_next()
            while in_flight:
                # Cooperative cancellation between batches; exiting the
                # pool context waits for in-flight chunks, then stops.
                orchestrator.check_cancelled()
                finished, _ = wait(in_flight, return_when=FIRST_COMPLETED)
                crashed: list["Task"] = []
                for fut in finished:
                    cid, chunk = in_flight.pop(fut)
                    try:
                        results = fut.result()
                    except TaskError as err:
                        _log.warning("worker task failed: %s", err)
                        if stats is not None:
                            stats.record_failure(
                                f"{err.description} rep {err.replication}"
                            )
                        if allow_chunk_retry and cid not in retried:
                            retried.add(cid)
                            if stats is not None:
                                stats.retries += 1
                            submit(cid, chunk)
                            continue
                        raise
                    except BrokenProcessPool:
                        # Don't raise yet: sibling futures in this
                        # batch may hold completed results worth
                        # keeping.
                        crashed.extend(chunk)
                        continue
                    for ci, rep, result in results:
                        orchestrator.record(ci, rep, result)
                    del chunks[cid]
                    submit_next()
                if crashed:
                    suspects = crashed
                    for _, other in in_flight.values():
                        suspects.extend(other)
                    raise _PoolBroken(suspects)
