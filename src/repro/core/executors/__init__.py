"""Pluggable sweep executors behind one protocol.

An executor owns *how* grid tasks run; the
:class:`~repro.core.orchestrator.Orchestrator` owns *what* runs and
what happens to the results.  Executors pull incomplete chunks via
``orchestrator.pending_chunks()`` and report every finished task
through ``orchestrator.record`` / ``orchestrator.complete_chunk`` —
which is why progress, caching, journaling and deterministic
reassembly are identical across all of them:

* :class:`InProcessExecutor` — the serial path: tasks run in the
  calling process with per-task retry-once semantics;
* :class:`PoolExecutor` — one persistent ``ProcessPoolExecutor`` for
  the whole grid, chunk-retry on task failure and a fresh-pool retry
  on a worker crash;
* :class:`WorkQueueExecutor` — chunks are leased to remote workers
  (``repro worker`` over HTTP via ``repro serve``) with heartbeat
  renewal and lease-expiry requeue.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol

if TYPE_CHECKING:
    from ..orchestrator import Orchestrator

from .inprocess import InProcessExecutor
from .pool import PoolExecutor
from .workqueue import ChunkLease, ChunkQueue, WorkQueueExecutor

__all__ = [
    "Executor",
    "InProcessExecutor",
    "PoolExecutor",
    "ChunkLease",
    "ChunkQueue",
    "WorkQueueExecutor",
]


class Executor(Protocol):
    """Strategy protocol: run every pending chunk of an orchestrator."""

    #: short identifier recorded in the run journal
    name: str

    def execute(self, orchestrator: "Orchestrator") -> None:
        """Drive ``orchestrator``'s pending chunks to completion.

        Must call ``orchestrator.record`` (or ``complete_chunk``) for
        every task it finishes and raise
        :class:`~repro.core.orchestrator.TaskError` when a task cannot
        be completed.
        """
        ...
