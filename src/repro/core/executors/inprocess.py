"""In-process executor: the serial fast path, extracted.

Semantics are pinned by ``tests/core/test_parallel_failures.py``: each
task is retried once in place (transient failures), a second failure
raises :class:`~repro.core.orchestrator.TaskError` naming the
``(config, replication)``, and ``GridStats`` counts one retry plus a
failure per attempt.
"""

from __future__ import annotations

import logging
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from ..orchestrator import Orchestrator, RunnerFn

_log = logging.getLogger("repro.core.executors.inprocess")


def _default_runner() -> "RunnerFn":
    """Late-bind ``run_single`` through the façade module.

    Tests monkeypatch ``repro.core.parallel.run_single``; resolving the
    attribute at call time (not import time) keeps that working across
    the orchestrator/executor split.
    """
    from .. import parallel

    return parallel.run_single


class InProcessExecutor:
    """Run every pending task in the calling process, in grid order."""

    name = "in-process"

    def execute(self, orchestrator: "Orchestrator") -> None:
        unique = orchestrator.unique
        stats = orchestrator.stats
        for _cid, chunk in orchestrator.pending_chunks().items():
            for ui, rep in chunk:
                orchestrator.check_cancelled()
                fn = (
                    orchestrator.runner
                    if orchestrator.runner is not None
                    else _default_runner()
                )
                try:
                    result = fn(unique[ui], rep)
                except Exception as first:
                    from ..orchestrator import TaskError

                    key = f"{unique[ui].describe()} rep {rep}"
                    _log.warning(
                        "task %s failed (%r); retrying once", key, first
                    )
                    if stats is not None:
                        stats.record_failure(key)
                        stats.retries += 1
                    try:
                        result = fn(unique[ui], rep)
                    except Exception as exc:
                        if stats is not None:
                            stats.record_failure(key)
                        raise TaskError(
                            unique[ui].describe(), rep, repr(exc)
                        ) from exc
                orchestrator.record(ui, rep, result)
