"""Deprecated alias for :mod:`repro.analysis.timelines`.

This module computed post-run queue-length/utilisation *timelines*,
not event traces; it moved to :mod:`repro.analysis.timelines` so the
"tracing" name belongs unambiguously to the :mod:`repro.obs` event
recorder.  Import from the new location; this shim will be removed.
"""

from __future__ import annotations

import warnings

from ..analysis.timelines import (  # noqa: F401
    growth_rate,
    level_at,
    peak,
    queue_length_timeline,
    system_request_timeline,
    time_average,
    utilization_timeline,
)

__all__ = [
    "system_request_timeline",
    "queue_length_timeline",
    "utilization_timeline",
    "peak",
    "level_at",
    "time_average",
    "growth_rate",
]

warnings.warn(
    "repro.core.tracing moved to repro.analysis.timelines; "
    "update imports (this shim will be removed)",
    DeprecationWarning,
    stacklevel=2,
)
