"""Seeded fault injection: lost/delayed cancellations and cluster outages.

The paper's Section 4 is about *failure*: a real OpenPBS/Maui instance
degrades and crashes under redundant submit/cancel churn, and users who
"fail to cancel" leave orphaned copies that burn cluster cycles.  The
simulator's default world is perfect — every cancellation arrives
instantly and every scheduler stays up.  This module injects the three
failure modes that break that assumption:

* **lost cancellations** — with probability ``p_cancel_loss`` a loser's
  cancel message is dropped.  The orphan stays queued, eventually
  starts, and runs to completion as pure wasted work (accounted as
  wasted node-seconds through the coordinator's ``duplicate_starts``
  machinery).
* **delayed cancellations** — instead of the scalar
  ``cancellation_latency``, each loser's cancel delay is drawn from a
  configurable distribution, so some siblings race their own
  cancellation and start anyway.
* **cluster outages** — a cluster's scheduler daemon goes down for an
  interval.  While down it rejects submissions and cancellations
  (:class:`~repro.sched.base.SchedulerDownError`); optionally its
  pending queue is lost on restart, after which the coordinator
  resubmits or abandons the affected copies per
  :attr:`FaultConfig.resubmit_policy`.  Running jobs keep their nodes —
  the daemon crashed, not the compute nodes.

All randomness flows through one key-addressed generator
(``("rep", r, "faults")``), so a fault scenario is exactly as
reproducible — serial or parallel — as the fault-free simulation.  When
every knob is zero the injector is never constructed and the simulation
is bit-identical to the perfect-world model.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from functools import partial
from math import inf
from typing import TYPE_CHECKING, Optional

import numpy as np

from .sim.events import EventPriority

_log = logging.getLogger("repro.faults")

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .cluster.platform import Platform
    from .core.coordinator import Coordinator
    from .sim.engine import Simulator

#: supported cancel-delay distributions (mean = ``cancel_delay_mean``)
CANCEL_DELAY_DISTRIBUTIONS = ("fixed", "exponential", "uniform")

#: what the coordinator does with copies lost to an outage
RESUBMIT_POLICIES = ("resubmit", "abandon")


@dataclass(frozen=True)
class FaultConfig:
    """Failure-regime knobs for one experiment.

    Attributes
    ----------
    p_cancel_loss:
        Probability, per cancellation message, that the message is
        dropped and the loser copy is orphaned.
    cancel_delay_mean:
        Mean cancellation delay in seconds.  When positive it replaces
        the coordinator's scalar ``cancellation_latency`` with per-loser
        draws from ``cancel_delay_distribution``.
    cancel_delay_distribution:
        ``"fixed"`` (always the mean), ``"exponential"`` or
        ``"uniform"`` (on ``[0, 2·mean]``).
    outage_rate:
        Expected scheduler outages per cluster per *hour* of submission
        window (a Poisson process per cluster).
    outage_duration:
        Mean outage length in seconds (exponentially distributed).
    outage_drop_queue:
        If True, a crashing scheduler loses its pending queue — the
        paper's "crashed PBS server" scenario; if False the queue
        survives the restart (requests merely wait).
    resubmit_policy:
        What the coordinator does with copies whose queue entry was
        lost (or whose submission was rejected by a downed cluster):
        ``"resubmit"`` retries when the scheduler recovers,
        ``"abandon"`` gives the copy up.
    """

    p_cancel_loss: float = 0.0
    cancel_delay_mean: float = 0.0
    cancel_delay_distribution: str = "exponential"
    outage_rate: float = 0.0
    outage_duration: float = 300.0
    outage_drop_queue: bool = False
    resubmit_policy: str = "resubmit"

    def __post_init__(self) -> None:
        if not 0.0 <= self.p_cancel_loss <= 1.0:
            raise ValueError(
                f"p_cancel_loss must be in [0,1], got {self.p_cancel_loss}"
            )
        if self.cancel_delay_mean < 0:
            raise ValueError(
                f"cancel_delay_mean must be >= 0, got {self.cancel_delay_mean}"
            )
        if self.cancel_delay_distribution not in CANCEL_DELAY_DISTRIBUTIONS:
            raise ValueError(
                f"unknown cancel_delay_distribution "
                f"{self.cancel_delay_distribution!r}; choose from "
                f"{CANCEL_DELAY_DISTRIBUTIONS}"
            )
        if self.outage_rate < 0:
            raise ValueError(
                f"outage_rate must be >= 0, got {self.outage_rate}"
            )
        if self.outage_duration <= 0:
            raise ValueError(
                f"outage_duration must be positive, got {self.outage_duration}"
            )
        if self.resubmit_policy not in RESUBMIT_POLICIES:
            raise ValueError(
                f"unknown resubmit_policy {self.resubmit_policy!r}; "
                f"choose from {RESUBMIT_POLICIES}"
            )

    @property
    def enabled(self) -> bool:
        """Whether any fault can actually fire.

        A disabled config is a strict no-op: the experiment driver skips
        injector construction entirely, so no RNG stream is consumed and
        results are bit-identical to the fault-free simulator.
        """
        return (
            self.p_cancel_loss > 0
            or self.cancel_delay_mean > 0
            or self.outage_rate > 0
        )

    @property
    def can_orphan(self) -> bool:
        """Whether this regime can leave loser copies running beside a
        winner.

        True when cancellations can be dropped (probability draw), swallowed
        by a downed daemon (outages), or delayed long enough for the loser
        to start first.  The sanitizer uses this to decide whether a
        duplicate start is an *expected* fault symptom or an invariant
        violation.
        """
        return self.enabled


class FaultInjector:
    """Draws fault outcomes and drives scheduler outages.

    One injector lives per replication; all its decisions come from a
    single generator keyed on ``("rep", replication, "faults")``, which
    keeps fault scenarios under the same common-random-numbers
    discipline as the workload (the fault *environment* of replication
    r is identical across redundancy schemes — only the consumption of
    cancel-loss draws differs with the number of cancellations issued).
    """

    def __init__(self, config: FaultConfig, rng: np.random.Generator) -> None:
        self.config = config
        self.rng = rng
        self.outages_started = 0
        #: per-cluster ``(start, end)`` outage windows, set by install()
        self.windows: list[list[tuple[float, float]]] = []

    # -- cancellation faults ---------------------------------------------

    def cancel_lost(self) -> bool:
        """Draw whether one cancellation message is dropped."""
        p = self.config.p_cancel_loss
        if p <= 0.0:
            return False
        return bool(self.rng.random() < p)

    @property
    def has_cancel_delay(self) -> bool:
        return self.config.cancel_delay_mean > 0

    def draw_cancel_delay(self) -> float:
        """Draw one loser's cancellation delay in seconds."""
        mean = self.config.cancel_delay_mean
        dist = self.config.cancel_delay_distribution
        if dist == "fixed":
            return mean
        if dist == "exponential":
            return float(self.rng.exponential(mean))
        # "uniform" on [0, 2·mean] keeps the requested mean
        return float(self.rng.uniform(0.0, 2.0 * mean))

    # -- outages ----------------------------------------------------------

    def generate_outage_windows(
        self, n_clusters: int, horizon: float
    ) -> list[list[tuple[float, float]]]:
        """Draw non-overlapping outage windows per cluster.

        Outage starts form a Poisson process with ``outage_rate`` events
        per hour over ``[0, horizon)``; each outage lasts an exponential
        ``outage_duration`` and the next one can only begin after
        recovery (a daemon cannot crash while already down).
        """
        rate_per_s = self.config.outage_rate / 3600.0
        windows: list[list[tuple[float, float]]] = []
        for _ in range(n_clusters):
            cluster_windows: list[tuple[float, float]] = []
            if rate_per_s > 0:
                t = 0.0
                while True:
                    t += float(self.rng.exponential(1.0 / rate_per_s))
                    if t >= horizon:
                        break
                    length = float(
                        self.rng.exponential(self.config.outage_duration)
                    )
                    cluster_windows.append((t, t + length))
                    t += length
            windows.append(cluster_windows)
        return windows

    def install(
        self,
        sim: "Simulator",
        platform: "Platform",
        coordinator: "Coordinator",
        horizon: float,
    ) -> None:
        """Schedule every outage begin/end on the simulator.

        Outage *ends* run at ``CANCEL`` priority so a recovered
        scheduler is up before any same-instant submission (including
        the coordinator's resubmissions, which run at ``SUBMIT``
        priority); outage *begins* run at ``CONTROL`` priority, after
        every same-instant submission made it in before the crash.
        """
        self.windows = self.generate_outage_windows(
            platform.n_clusters, horizon
        )
        for index, cluster_windows in enumerate(self.windows):
            for start, end in cluster_windows:
                sim.at(
                    start,
                    partial(
                        self._begin_outage,
                        sim, platform, coordinator, index, end,
                    ),
                    EventPriority.CONTROL,
                )

    def _begin_outage(
        self,
        sim: "Simulator",
        platform: "Platform",
        coordinator: "Coordinator",
        index: int,
        end: float,
    ) -> None:
        dropped = platform.begin_outage(
            index, drop_queue=self.config.outage_drop_queue
        )
        self.outages_started += 1
        _log.debug(
            "outage: cluster %d down at t=%.1f until t=%.1f "
            "(%d pending request(s) dropped)",
            index, sim.now, end, len(dropped),
        )
        coordinator.on_requests_dropped(dropped, resume_time=end)
        sim.at(
            end, partial(platform.end_outage, index), EventPriority.CANCEL
        )

    def earliest_recovery(
        self, clusters: "list[int] | tuple[int, ...]", now: float
    ) -> Optional[float]:
        """Earliest time any of ``clusters`` comes back up after ``now``.

        ``None`` means no installed window explains the failure (the
        scheduler was downed out-of-band, e.g. by a test) — callers
        should abandon rather than wait forever.
        """
        best = inf
        for index in clusters:
            if index >= len(self.windows):
                continue
            for start, end in self.windows[index]:
                if start <= now < end:
                    best = min(best, end)
                    break
        return best if best < inf else None
