"""Pluggable redundancy policies layered over the core protocol.

``repro.policies.cancellation`` defines *when* a job's redundant
siblings are withdrawn (cancel-on-start vs cancel-on-complete);
``repro.policies.phase`` sweeps (policy × redundancy-d × service regime
× load) into a helpful/harmful phase diagram.

Only the cancellation layer is re-exported here: it sits below
``repro.core`` (the coordinator resolves policies by name), while the
phase-diagram layer sits above it and must be imported explicitly to
avoid a circular import.
"""

from .cancellation import (
    CANCELLATION_POLICIES,
    DEFAULT_CANCELLATION_POLICY,
    CancellationPolicy,
    CancelOnComplete,
    CancelOnStart,
    get_cancellation_policy,
)

__all__ = [
    "CANCELLATION_POLICIES",
    "DEFAULT_CANCELLATION_POLICY",
    "CancellationPolicy",
    "CancelOnComplete",
    "CancelOnStart",
    "get_cancellation_policy",
]
