"""Phase-diagram sweeps: *when* are redundant requests harmful?

The paper's verdict — redundancy is harmful — is rendered for one
protocol (first-start-wins, cancel-on-start), one workload (Lublin) and
one load regime.  The modern literature (PAPERS.md: Raaijmakers et al.,
Behrouzi-Far & Soljanin, Anton et al.) shows the verdict *flips* across
that space.  This module sweeps the cross product

    (cancellation policy) × (redundancy degree d) × (service regime) × (load ρ)

and classifies every cell as **helpful**, **harmful** or **neutral**
per metric:

* *mean stretch ratio* — redundancy-d's average stretch relative to a
  NONE baseline simulated on the same job streams (common random
  numbers); helpful below ``1 - tolerance``, harmful above
  ``1 + tolerance``.
* *wasted-work fraction* — node-seconds burned by non-winning copies as
  a fraction of all node-seconds consumed; one-sided (waste can only
  hurt), harmful above the threshold.

Every (regime, load) pair shares one NONE baseline across policies and
degrees: a non-redundant job never fans out, so the cancellation policy
and the degree are inert for it, and the run-grid deduplicates the
repeated config by fingerprint anyway.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Optional, Sequence

import numpy as np

from ..core.cache import ResultCache
from ..core.config import ExperimentConfig
from ..core.metrics import mean_of_ratios
from ..core.parallel import run_grid

#: bump when the payload layout or classification semantics change
PHASE_SCHEMA_VERSION = 1

#: stretch ratios within ±2 % of 1.0 are statistical wash, not a verdict
STRETCH_TOLERANCE = 0.02

#: wasted-work fraction above which the cost side is called harmful
WASTE_THRESHOLD = 0.05

CLASSES = ("helpful", "neutral", "harmful")


def classify_stretch(ratio: float, tolerance: float = STRETCH_TOLERANCE) -> str:
    """Helpful/neutral/harmful verdict for a mean stretch ratio."""
    if not np.isfinite(ratio):
        return "harmful"
    if ratio < 1.0 - tolerance:
        return "helpful"
    if ratio > 1.0 + tolerance:
        return "harmful"
    return "neutral"


def classify_waste(fraction: float, threshold: float = WASTE_THRESHOLD) -> str:
    """Neutral/harmful verdict for a wasted-work fraction (one-sided)."""
    if not np.isfinite(fraction) or fraction > threshold:
        return "harmful"
    return "neutral"


@dataclass(frozen=True)
class PhaseCell:
    """One classified point of the phase diagram."""

    policy: str
    degree: int
    regime: str
    load: float
    stretch_ratio: float
    waste_fraction: float
    stretch_class: str
    waste_class: str

    @property
    def key(self) -> "tuple[str, int, str, float]":
        return (self.policy, self.degree, self.regime, self.load)


@dataclass
class PhaseDiagram:
    """A classified sweep over (policy × d × regime × load)."""

    cells: list[PhaseCell]
    n_replications: int
    base: dict

    def helpful(self) -> list[PhaseCell]:
        return [c for c in self.cells if c.stretch_class == "helpful"]

    def harmful(self) -> list[PhaseCell]:
        return [c for c in self.cells if c.stretch_class == "harmful"]

    def cell(
        self, policy: str, degree: int, regime: str, load: float
    ) -> PhaseCell:
        for c in self.cells:
            if c.key == (policy, degree, regime, load):
                return c
        raise KeyError(f"no phase cell ({policy}, R{degree}, {regime}, ρ={load})")

    def to_payload(self) -> dict:
        """Schema-versioned JSON-ready view (the CI smoke asserts this)."""
        return {
            "kind": "repro-phase-diagram",
            "schema_version": PHASE_SCHEMA_VERSION,
            "stretch_tolerance": STRETCH_TOLERANCE,
            "waste_threshold": WASTE_THRESHOLD,
            "n_replications": self.n_replications,
            "base": self.base,
            "cells": [asdict(c) for c in self.cells],
            "n_helpful": len(self.helpful()),
            "n_harmful": len(self.harmful()),
        }


def run_phase_diagram(
    base: ExperimentConfig,
    policies: Sequence[str],
    degrees: Sequence[int],
    regimes: Sequence[str],
    loads: Sequence[float],
    n_replications: int,
    n_workers: int = 1,
    cache: Optional[ResultCache] = None,
) -> PhaseDiagram:
    """Sweep the phase-diagram grid and classify every cell.

    ``base`` fixes everything the sweep does not vary (platform,
    algorithm, duration, seed); ``scheme``/``cancellation_policy``/
    ``service_regime``/``offered_load`` are overridden per cell.
    Degrees are expressed through the generalised ``R<d>`` schemes.
    """
    if not (policies and degrees and regimes and loads):
        raise ValueError("phase diagram needs at least one value per axis")
    if min(degrees) < 2:
        raise ValueError(f"redundancy degrees must be >= 2, got {min(degrees)}")
    configs: list[ExperimentConfig] = []
    index: dict[tuple, int] = {}

    def add(cfg: ExperimentConfig, key: tuple) -> None:
        index[key] = len(configs)
        configs.append(cfg)

    for regime in regimes:
        for load in loads:
            add(
                base.with_(
                    scheme="NONE", service_regime=regime, offered_load=load
                ),
                ("NONE", regime, load),
            )
            for policy in policies:
                for d in degrees:
                    add(
                        base.with_(
                            scheme=f"R{d}",
                            cancellation_policy=policy,
                            service_regime=regime,
                            offered_load=load,
                        ),
                        (policy, d, regime, load),
                    )
    grid = run_grid(configs, n_replications, n_workers=n_workers, cache=cache)
    cells: list[PhaseCell] = []
    for regime in regimes:
        for load in loads:
            baseline = grid[index[("NONE", regime, load)]]
            for policy in policies:
                for d in degrees:
                    results = grid[index[(policy, d, regime, load)]]
                    ratio = mean_of_ratios(
                        [
                            (res.avg_stretch, b.avg_stretch)
                            for res, b in zip(results, baseline)
                        ]
                    )
                    waste = float(
                        np.mean([res.wasted_work_fraction for res in results])
                    )
                    cells.append(
                        PhaseCell(
                            policy=policy,
                            degree=d,
                            regime=regime,
                            load=load,
                            stretch_ratio=float(ratio),
                            waste_fraction=waste,
                            stretch_class=classify_stretch(float(ratio)),
                            waste_class=classify_waste(waste),
                        )
                    )
    return PhaseDiagram(
        cells=cells,
        n_replications=n_replications,
        base={
            "n_clusters": base.n_clusters,
            "nodes_per_cluster": base.nodes_per_cluster,
            "algorithm": base.algorithm,
            "duration": base.duration,
            "seed": base.seed,
        },
    )
