"""Pluggable cancellation disciplines for the redundant-request protocol.

The paper hard-wires *first-start-wins with cancel-on-start*: the first
copy of a job to start executing defines the job's metrics and the
coordinator immediately cancels every queued sibling.  The modern
redundancy literature (see PAPERS.md: Raaijmakers et al. on scaled
Bernoulli service requirements; Anton, Ayesta, Jonckheere & Verloop's
stability survey) shows the harmfulness verdict hinges on exactly this
discipline, and studies a second one: **cancel-on-complete**, where the
redundant copies are left in place until the winning copy *finishes*.

This module makes the discipline a first-class policy object:

``cancel-on-start``
    Today's behaviour, byte-identical to the pre-policy coordinator:
    sibling cancellations are dispatched the instant a winner starts
    (subject to the configured latency or fault-injected delays).

``cancel-on-complete``
    Losers stay queued — and may start and run beside the winner — until
    the winner completes; only then are the still-pending siblings
    cancelled (again subject to latency/fault draws).  Copies that ran
    are charged as waste for their *full* runtime.  A "duplicate start"
    is expected protocol behaviour here, not an anomaly, which the
    sanitizer waivers in :mod:`repro.sanitize.auditor` encode.

Policies hold no per-run state: the coordinator owns the jobs and the
dispatch machinery, and a policy only decides *when* the dispatch
happens.  That keeps one policy instance shareable across runs and the
``cancel-on-start`` path structurally identical to the pre-policy code
(same events, in the same order, with the same RNG draws), which the
golden-trace test in ``tests/integration`` locks in byte-for-byte.
"""

from __future__ import annotations

from functools import partial
from typing import TYPE_CHECKING

from ..sim.events import EventPriority

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.coordinator import Coordinator, RedundantJob


class CancellationPolicy:
    """When sibling cancellations are dispatched after a winner emerges.

    Subclasses override :meth:`on_winner_start`; the coordinator calls
    it exactly once per job, at the instant the job's first copy starts
    (with ``job.winner`` already assigned).  Everything the policy may
    want to do — dispatch cancellations now, or schedule them for later
    — goes through the coordinator's public dispatch hooks, so fault
    draws, tracing and accounting behave identically under every policy.

    Attributes
    ----------
    name:
        The config-facing policy name (``ExperimentConfig.cancellation_policy``).
    expects_duplicate_starts:
        ``True`` when a loser legally runs beside a still-running winner
        under this policy.  The sanitizer reads this to decide whether a
        duplicate start needs a lost/in-flight cancellation to explain it.
    """

    name: str = ""
    expects_duplicate_starts: bool = False

    def on_winner_start(self, coordinator: "Coordinator", job: "RedundantJob") -> None:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class CancelOnStart(CancellationPolicy):
    """The paper's discipline: cancel siblings the instant a copy starts."""

    name = "cancel-on-start"
    expects_duplicate_starts = False

    def on_winner_start(self, coordinator: "Coordinator", job: "RedundantJob") -> None:
        coordinator.dispatch_cancellations(job)


class CancelOnComplete(CancellationPolicy):
    """Keep the redundant copies until the winner *finishes*.

    The winner's completion instant is known the moment it starts
    (``start + runtime``; the scheduler computes the finish event from
    the same expression, so the two events carry bit-identical
    timestamps).  The sweep is scheduled at ``CANCEL`` priority, which
    orders *before* the winner's ``FINISH`` event at the same instant:
    pending losers are withdrawn before the winner's nodes free up, so
    none of them can grab the released nodes in the same scheduling
    pass.  Losers already running are left alone — a running copy is
    never a cancellation target — and run to completion as waste.
    """

    name = "cancel-on-complete"
    expects_duplicate_starts = True

    def on_winner_start(self, coordinator: "Coordinator", job: "RedundantJob") -> None:
        winner = job.winner
        assert winner is not None  # assigned by the caller
        coordinator.sim.at(
            coordinator.sim.now + winner.runtime,
            partial(coordinator.on_winner_complete, job),
            EventPriority.CANCEL,
        )


#: the policy registry, by config-facing name
CANCELLATION_POLICIES: dict[str, CancellationPolicy] = {
    CancelOnStart.name: CancelOnStart(),
    CancelOnComplete.name: CancelOnComplete(),
}

#: default policy (the paper's): safe to share — policies are stateless
DEFAULT_CANCELLATION_POLICY = CANCELLATION_POLICIES[CancelOnStart.name]


def get_cancellation_policy(name: str) -> CancellationPolicy:
    """Look up a cancellation policy by name (case-insensitive)."""
    try:
        return CANCELLATION_POLICIES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown cancellation policy {name!r}; "
            f"choose from {sorted(CANCELLATION_POLICIES)}"
        ) from None
