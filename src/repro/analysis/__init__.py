"""Result presentation and the per-figure/table experiment registry."""

from .plots import AsciiPlot, Series
from .registry import (
    CALIBRATED_RHO,
    REGISTRY,
    SCALES,
    ExperimentReport,
    Scale,
    calibrated_config,
    current_scale,
    run_experiment,
)
from .export import report_to_json, results_to_csv, table_to_csv
from .stats import (
    ConfidenceInterval,
    SignTestResult,
    coefficient_of_variation,
    mean_ci,
    paired_ratio_ci,
    sign_test,
)
from .tables import Table, format_cell
from .timelines import (
    growth_rate,
    level_at,
    peak,
    queue_length_timeline,
    system_request_timeline,
    time_average,
    utilization_timeline,
)

__all__ = [
    "Table",
    "format_cell",
    "AsciiPlot",
    "Series",
    "REGISTRY",
    "SCALES",
    "Scale",
    "ExperimentReport",
    "run_experiment",
    "current_scale",
    "calibrated_config",
    "CALIBRATED_RHO",
    "mean_ci",
    "paired_ratio_ci",
    "sign_test",
    "ConfidenceInterval",
    "SignTestResult",
    "coefficient_of_variation",
    "table_to_csv",
    "report_to_json",
    "results_to_csv",
    "system_request_timeline",
    "queue_length_timeline",
    "utilization_timeline",
    "growth_rate",
    "time_average",
    "peak",
    "level_at",
]
