"""Post-run timelines reconstructed from request lifecycles.

Every request keeps its full lifecycle timestamps (submission, start,
completion, cancellation), so system-level time series — live requests
in the system, per-cluster queue length, per-cluster utilisation — can
be reconstructed exactly after a run.  Section 4.1's queue-size
arguments ("using redundant requests does not cause significantly more
requests to be in the system") are statements about exactly these
series.

All functions take the coordinator's ``jobs`` list (live
:class:`~repro.core.coordinator.RedundantJob` objects, i.e. use these
before discarding the simulation) and return step functions as
``(time, value)`` breakpoints.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..core.coordinator import RedundantJob
from ..sched.job import Request


def _step_series(deltas: list[tuple[float, int]]) -> list[tuple[float, int]]:
    """Accumulate (time, +/-1) deltas into a (time, level) step series."""
    if not deltas:
        return []
    deltas.sort(key=lambda d: d[0])
    series: list[tuple[float, int]] = []
    level = 0
    i = 0
    n = len(deltas)
    while i < n:
        t = deltas[i][0]
        while i < n and deltas[i][0] == t:
            level += deltas[i][1]
            i += 1
        series.append((t, level))
    return series


def _iter_requests(jobs: Iterable[RedundantJob]) -> Iterable[Request]:
    for job in jobs:
        yield from job.requests


def system_request_timeline(
    jobs: Iterable[RedundantJob],
) -> list[tuple[float, int]]:
    """Live requests (pending or running) across all queues over time.

    A request is live from submission until it completes or is
    cancelled; requests still live at the end of the simulation
    contribute a rising tail.
    """
    deltas: list[tuple[float, int]] = []
    for req in _iter_requests(jobs):
        if req.submitted_at is None:
            continue
        deltas.append((req.submitted_at, +1))
        if req.cancelled_at is not None:
            deltas.append((req.cancelled_at, -1))
        elif req.end_time is not None:
            deltas.append((req.end_time, -1))
    return _step_series(deltas)


def queue_length_timeline(
    jobs: Iterable[RedundantJob],
    cluster_index: int,
) -> list[tuple[float, int]]:
    """Pending requests in one cluster's queue over time."""
    deltas: list[tuple[float, int]] = []
    for req in _iter_requests(jobs):
        if req.submitted_at is None or req.cluster is None:
            continue
        if req.cluster.cluster.index != cluster_index:
            continue
        deltas.append((req.submitted_at, +1))
        if req.start_time is not None:
            deltas.append((req.start_time, -1))
        elif req.cancelled_at is not None:
            deltas.append((req.cancelled_at, -1))
    return _step_series(deltas)


def utilization_timeline(
    jobs: Iterable[RedundantJob],
    cluster_index: int,
    total_nodes: int,
) -> list[tuple[float, float]]:
    """Fraction of one cluster's nodes busy over time."""
    if total_nodes < 1:
        raise ValueError(f"total_nodes must be >= 1, got {total_nodes}")
    deltas: list[tuple[float, int]] = []
    for req in _iter_requests(jobs):
        if req.start_time is None or req.cluster is None:
            continue
        if req.cluster.cluster.index != cluster_index:
            continue
        deltas.append((req.start_time, +req.nodes))
        if req.end_time is not None:
            deltas.append((req.end_time, -req.nodes))
    series = _step_series(deltas)
    return [(t, level / total_nodes) for t, level in series]


def peak(series: list[tuple[float, float]]) -> float:
    """Maximum level of a step series (0 for an empty series)."""
    return max((v for _, v in series), default=0.0)


def level_at(series: list[tuple[float, float]], t: float) -> float:
    """Value of a step series at time ``t`` (0 before the first step)."""
    value = 0.0
    for ts, v in series:
        if ts > t:
            break
        value = v
    return value


def time_average(
    series: list[tuple[float, float]],
    t_start: float,
    t_end: float,
) -> float:
    """Time-weighted mean level over ``[t_start, t_end]``."""
    if t_end <= t_start:
        raise ValueError(f"empty interval [{t_start}, {t_end}]")
    if not series:
        return 0.0
    total = 0.0
    current = level_at(series, t_start)
    prev_t = t_start
    for ts, v in series:
        if ts <= t_start:
            continue
        if ts >= t_end:
            break
        total += current * (ts - prev_t)
        current = v
        prev_t = ts
    total += current * (t_end - prev_t)
    return total / (t_end - t_start)


def growth_rate(
    series: list[tuple[float, float]],
    t_start: float,
    t_end: float,
) -> float:
    """Least-squares slope of the series level over a window (per second).

    Section 4.1's "queue grows by about 700 jobs per hour" is this slope
    (x 3600) on the queue-length series under the peak-hour workload.
    """
    pts = [(t, v) for t, v in series if t_start <= t <= t_end]
    if len(pts) < 2:
        return 0.0
    ts = np.array([p[0] for p in pts])
    vs = np.array([p[1] for p in pts])
    slope, _ = np.polyfit(ts, vs, 1)
    return float(slope)
