"""Experiment registry: one entry per table/figure of the paper.

Every benchmark and the CLI resolve experiments through this module, so
"regenerate Table 1" means the same thing everywhere.  Experiments run
at a :class:`Scale` selected by the ``REPRO_SCALE`` environment
variable:

* ``smoke``   — seconds-to-minutes; shapes only, noisy.
* ``default`` — minutes; the shipped EXPERIMENTS.md numbers.
* ``paper``   — the paper's 6-hour windows and 50 replications;
  hours of wall time, use ``REPRO_WORKERS`` to parallelise.

All Section 3 experiments run in the calibrated regime (offered load
ρ = 2.0, drain to completion — see DESIGN.md "load calibration"); the
Section 4 load studies use the authentic uncalibrated workload.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Optional

import numpy as np

from ..core.cache import shared_cache
from ..core.config import ExperimentConfig
from ..core.metrics import mean_of_ratios
from ..core.parallel import resolve_workers, run_grid
from ..core.runner import SchemeComparison, compare_schemes, run_replications
from ..core.schemes import PAPER_SCHEME_ORDER
from ..faults import FaultConfig
from ..middleware.capacity import capacity_report
from ..middleware.churn import (
    average_curve,
    churn_curve,
    measure_real_scheduler_throughput,
)
from ..middleware.loadstudy import (
    compare_max_queue_sizes,
    queue_growth_vs_cluster_size,
)
from ..middleware.pbs import paper_calibrated_model
from ..predict.study import run_table4_study
from .plots import AsciiPlot
from .tables import Table

#: calibrated offered load for the Section 3 experiments (DESIGN.md)
CALIBRATED_RHO = 2.0


@dataclass(frozen=True)
class Scale:
    """Experiment sizing knobs."""

    name: str
    duration: float            # submission-window length (s)
    n_replications: int
    fig1_sites: tuple[int, ...]
    fig3_alphas: tuple[float, ...]
    fig4_fractions: tuple[float, ...]
    churn_queue_sizes: tuple[int, ...]
    churn_duration: float
    load_study_duration: float
    #: cancellation-loss probabilities for the fault experiment (0.0
    #: first: the shared fault-free baseline)
    faults_p_loss: tuple[float, ...] = (0.0, 0.1, 0.3)
    #: cluster outage rates (per cluster-hour) for the fault experiment
    faults_outage_rates: tuple[float, ...] = (0.0, 1.0, 4.0)
    #: phase-diagram axes (cancellation policy × redundancy degree ×
    #: service regime × offered load) and its submission window
    phase_policies: tuple[str, ...] = ("cancel-on-start", "cancel-on-complete")
    phase_degrees: tuple[int, ...] = (2, 3)
    phase_regimes: tuple[str, ...] = ("lublin", "bimodal", "bernoulli")
    phase_loads: tuple[float, ...] = (0.6, 1.8)
    phase_duration: float = 900.0
    #: knee-study offered loads (ρ) and its fixed (non-drained) window;
    #: the sweep classifies each load as sustained or saturated from
    #: online statistics alone (see repro.analysis.knee)
    knee_loads: tuple[float, ...] = (0.6, 1.0, 1.4, 1.8, 2.4, 3.0)
    knee_duration: float = 1800.0


SCALES: dict[str, Scale] = {
    "smoke": Scale(
        name="smoke",
        duration=900.0,
        n_replications=2,
        fig1_sites=(2, 5, 10),
        fig3_alphas=(4.0, 10.23, 20.0),
        fig4_fractions=(0.0, 0.4, 1.0),
        churn_queue_sizes=(0, 5000, 20000),
        churn_duration=600.0,
        load_study_duration=1800.0,
        faults_p_loss=(0.0, 0.5),
        faults_outage_rates=(0.0, 4.0),
        phase_degrees=(2,),
        phase_regimes=("lublin", "bernoulli"),
        phase_loads=(1.8,),
        phase_duration=600.0,
        knee_loads=(0.6, 1.4, 2.4),
        knee_duration=600.0,
    ),
    "default": Scale(
        name="default",
        duration=1800.0,
        n_replications=3,
        fig1_sites=(2, 3, 4, 5, 10, 20),
        fig3_alphas=(6.0, 8.0, 10.23, 14.0, 20.0),
        fig4_fractions=(0.0, 0.2, 0.4, 0.6, 0.8, 1.0),
        churn_queue_sizes=(0, 1000, 2500, 5000, 7500, 10000, 15000, 20000),
        churn_duration=3600.0,
        load_study_duration=3 * 3600.0,
    ),
    "paper": Scale(
        name="paper",
        duration=6 * 3600.0,
        n_replications=50,
        fig1_sites=(2, 3, 4, 5, 10, 20),
        fig3_alphas=(4.0, 6.0, 8.0, 10.23, 12.0, 16.0, 20.0),
        fig4_fractions=(0.0, 0.2, 0.4, 0.6, 0.8, 1.0),
        churn_queue_sizes=(0, 1000, 2500, 5000, 7500, 10000, 12500, 15000,
                           17500, 20000),
        churn_duration=12 * 3600.0,
        load_study_duration=24 * 3600.0,
        faults_p_loss=(0.0, 0.05, 0.1, 0.3),
        faults_outage_rates=(0.0, 0.5, 2.0, 4.0),
        phase_degrees=(2, 3, 4),
        phase_loads=(0.4, 0.8, 1.2, 1.6, 2.0),
        phase_duration=3600.0,
        knee_loads=(0.4, 0.8, 1.2, 1.6, 2.0, 2.4, 2.8, 3.2),
        knee_duration=3600.0,
    ),
}


def current_scale() -> Scale:
    """The scale selected by ``REPRO_SCALE`` (default: ``default``)."""
    name = os.environ.get("REPRO_SCALE", "default").lower()
    try:
        return SCALES[name]
    except KeyError:
        raise ValueError(
            f"REPRO_SCALE={name!r}; choose from {sorted(SCALES)}"
        ) from None


def n_workers() -> int:
    """Replication parallelism from ``REPRO_WORKERS`` (default 1)."""
    return resolve_workers(
        os.environ.get("REPRO_WORKERS"), source="REPRO_WORKERS"
    )


def calibrated_config(scale: Scale, **overrides) -> ExperimentConfig:
    """The Section 3 base configuration at a given scale."""
    kwargs = dict(
        n_clusters=10,
        duration=scale.duration,
        offered_load=CALIBRATED_RHO,
        drain=True,
        seed=20060619,  # HPDC'06 started June 19, 2006
    )
    kwargs.update(overrides)
    return ExperimentConfig(**kwargs)


@dataclass
class ExperimentReport:
    """Everything an experiment produces, ready to print or inspect."""

    exp_id: str
    title: str
    paper_expectation: str
    tables: list[Table] = field(default_factory=list)
    plots: list[str] = field(default_factory=list)
    data: dict = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        parts = [f"=== {self.exp_id}: {self.title} ===",
                 f"Paper expectation: {self.paper_expectation}", ""]
        parts += [t.to_text() + "\n" for t in self.tables]
        parts += [p + "\n" for p in self.plots]
        if self.notes:
            parts.append("Notes:")
            parts += [f"  - {n}" for n in self.notes]
        return "\n".join(parts)


# ---------------------------------------------------------------------------
# Figures 1 & 2: relative average stretch / CV vs number of sites
# ---------------------------------------------------------------------------

@lru_cache(maxsize=4)
def _sites_sweep(scale: Scale) -> dict[int, SchemeComparison]:
    out = {}
    for n in scale.fig1_sites:
        cfg = calibrated_config(scale, n_clusters=n)
        out[n] = compare_schemes(
            cfg, PAPER_SCHEME_ORDER, scale.n_replications, n_workers(),
            cache=shared_cache(),
        )
    return out


def fig1(scale: Optional[Scale] = None) -> ExperimentReport:
    """Figure 1: relative average stretch vs number of clusters."""
    scale = scale or current_scale()
    sweeps = _sites_sweep(scale)
    table = Table(
        "Figure 1 — average stretch relative to NONE",
        columns=[f"N={n}" for n in sweeps],
    )
    plot = AsciiPlot(
        "Figure 1 — relative average stretch vs number of sites",
        xlabel="number of sites", ylabel="relative avg stretch",
        reference_y=1.0,
    )
    data = {}
    for scheme in PAPER_SCHEME_ORDER:
        rel = [sweeps[n].relative(scheme).avg_stretch for n in sweeps]
        table.add_row(scheme, rel)
        plot.add_series(scheme, list(zip(sweeps.keys(), rel)))
        data[scheme] = dict(zip(sweeps.keys(), rel))
    wins = {
        n: max(sweeps[n].relative(s).win_fraction for s in PAPER_SCHEME_ORDER)
        for n in sweeps
    }
    return ExperimentReport(
        exp_id="fig1",
        title="relative average stretch vs number of sites",
        paper_expectation=(
            "values below 1 for N > 5 (10-25% improvement), up to ~1.1 for "
            "N <= 5; redundancy wins in >85% of experiments at N >= 10"
        ),
        tables=[table],
        plots=[plot.render()],
        data={"relative_avg_stretch": data, "best_win_fraction": wins},
    )


def fig2(scale: Optional[Scale] = None) -> ExperimentReport:
    """Figure 2: relative coefficient of variation of stretches."""
    scale = scale or current_scale()
    sweeps = _sites_sweep(scale)
    table = Table(
        "Figure 2 — CV of stretches relative to NONE",
        columns=[f"N={n}" for n in sweeps],
    )
    plot = AsciiPlot(
        "Figure 2 — relative CV of stretches vs number of sites",
        xlabel="number of sites", ylabel="relative CV of stretches",
        reference_y=1.0,
    )
    data = {}
    max_data = {}
    for scheme in PAPER_SCHEME_ORDER:
        rel = [sweeps[n].relative(scheme).cv_stretch for n in sweeps]
        table.add_row(scheme, rel)
        plot.add_series(scheme, list(zip(sweeps.keys(), rel)))
        data[scheme] = dict(zip(sweeps.keys(), rel))
        max_data[scheme] = {
            n: sweeps[n].relative(scheme).max_stretch for n in sweeps
        }
    return ExperimentReport(
        exp_id="fig2",
        title="relative CV of stretches (fairness) vs number of sites",
        paper_expectation=(
            "fairness improves ~10-25% in all cases (values 0.75-0.9); "
            "max stretch improves 10-60% (not plotted in the paper)"
        ),
        tables=[table],
        plots=[plot.render()],
        data={"relative_cv": data, "relative_max_stretch": max_data},
    )


# ---------------------------------------------------------------------------
# Table 1: algorithms x estimate regimes
# ---------------------------------------------------------------------------

def tab1(scale: Optional[Scale] = None) -> ExperimentReport:
    """Table 1: EASY/CBF/FCFS with exact and real (φ-model) estimates."""
    scale = scale or current_scale()
    stretch_table = Table(
        "Table 1 — relative average stretch (N=10, HALF)",
        columns=["Exact Estimates", "Real Estimates"],
    )
    cv_table = Table(
        "Table 1 — relative CV of stretches (N=10, HALF)",
        columns=["Exact Estimates", "Real Estimates"],
    )
    data = {}
    for algorithm in ("easy", "cbf", "fcfs"):
        row_s, row_cv = [], []
        for estimates in ("exact", "phi"):
            cfg = calibrated_config(
                scale, algorithm=algorithm, estimates=estimates
            )
            cmp_ = compare_schemes(
                cfg, ["HALF"], scale.n_replications, n_workers(),
                cache=shared_cache(),
            )
            rel = cmp_.relative("HALF")
            row_s.append(rel.avg_stretch)
            row_cv.append(rel.cv_stretch)
            data[(algorithm, estimates)] = {
                "avg_stretch": rel.avg_stretch,
                "cv_stretch": rel.cv_stretch,
            }
        stretch_table.add_row(algorithm.upper(), row_s)
        cv_table.add_row(algorithm.upper(), row_cv)
    return ExperimentReport(
        exp_id="tab1",
        title="scheduling algorithms x runtime-estimate regimes",
        paper_expectation=(
            "all relative metrics below 1 (paper: stretch 0.83-0.93, "
            "CV 0.83-0.93) regardless of algorithm and estimate regime"
        ),
        tables=[stretch_table, cv_table],
        data={"cells": {f"{a}/{e}": v for (a, e), v in data.items()}},
    )


# ---------------------------------------------------------------------------
# Table 2: non-uniform (biased) redundant-request distribution
# ---------------------------------------------------------------------------

def tab2(scale: Optional[Scale] = None) -> ExperimentReport:
    """Table 2: geometrically biased remote-cluster choice, N=10."""
    scale = scale or current_scale()
    cfg = calibrated_config(scale, target_bias_ratio=0.5)
    schemes = ("R2", "R3", "R4", "HALF")
    cmp_ = compare_schemes(
        cfg, schemes, scale.n_replications, n_workers(), cache=shared_cache()
    )
    table = Table(
        "Table 2 — biased account distribution (N=10)",
        columns=list(schemes),
    )
    rel = {s: cmp_.relative(s) for s in schemes}
    table.add_row("Relative Average Stretch", [rel[s].avg_stretch for s in schemes])
    table.add_row("Relative C.V. of Stretches", [rel[s].cv_stretch for s in schemes])
    return ExperimentReport(
        exp_id="tab2",
        title="non-uniformly distributed redundant requests",
        paper_expectation=(
            "benefit survives heavy bias; paper: stretch 0.88-0.95, "
            "CV 0.86-0.94, similar to the uniform distribution"
        ),
        tables=[table],
        data={
            "relative_avg_stretch": {s: rel[s].avg_stretch for s in schemes},
            "relative_cv": {s: rel[s].cv_stretch for s in schemes},
        },
    )


# ---------------------------------------------------------------------------
# Figure 3: job inter-arrival time sweep
# ---------------------------------------------------------------------------

def fig3(scale: Optional[Scale] = None) -> ExperimentReport:
    """Figure 3: relative average stretch vs mean inter-arrival time.

    The paper varies the Gamma shape α over [4, 20] (β = 0.49 fixed),
    i.e. mean inter-arrival times ≈2-10 s.  In the calibrated regime
    the offered load scales inversely with the inter-arrival time, so
    the sweep doubles as a load sweep around ρ = 2 — its role in the
    paper.
    """
    scale = scale or current_scale()
    beta = 0.49
    table = Table(
        "Figure 3 — relative average stretch vs inter-arrival time (N=10)",
        columns=[f"iat={a * beta:.1f}s" for a in scale.fig3_alphas],
    )
    plot = AsciiPlot(
        "Figure 3 — relative avg stretch vs mean job inter-arrival time",
        xlabel="mean inter-arrival time (s)", ylabel="relative avg stretch",
        reference_y=1.0,
    )
    data = {}
    comparisons = {}
    base_iat = 10.23 * beta
    for alpha in scale.fig3_alphas:
        iat = alpha * beta
        # Keep the *ratio* of load to the base case equal to the paper's
        # iat ratio: the calibration fixes rho at the base iat.  The
        # extreme-load end is clamped — above ρ ≈ 3 the drained
        # simulation's cost explodes while the answer (redundancy still
        # helps) is already decided; see DESIGN.md §3b.
        rho = min(CALIBRATED_RHO * base_iat / iat, 3.0)
        cfg = calibrated_config(
            scale, mean_interarrival=iat, offered_load=rho
        )
        comparisons[alpha] = compare_schemes(
            cfg, PAPER_SCHEME_ORDER, scale.n_replications, n_workers(),
            cache=shared_cache(),
        )
    for scheme in PAPER_SCHEME_ORDER:
        rel = [comparisons[a].relative(scheme).avg_stretch
               for a in scale.fig3_alphas]
        table.add_row(scheme, rel)
        plot.add_series(
            scheme,
            [(a * beta, r) for a, r in zip(scale.fig3_alphas, rel)],
        )
        data[scheme] = {a * beta: r for a, r in zip(scale.fig3_alphas, rel)}
    return ExperimentReport(
        exp_id="fig3",
        title="sensitivity to job inter-arrival time (load sweep)",
        paper_expectation=(
            "redundant requests improve average stretch regardless of the "
            "inter-arrival time (all values < 1; paper range ~0.75-0.95)"
        ),
        tables=[table],
        plots=[plot.render()],
        data={"relative_avg_stretch": data},
    )


# ---------------------------------------------------------------------------
# Table 3: heterogeneous platform
# ---------------------------------------------------------------------------

def tab3(scale: Optional[Scale] = None) -> ExperimentReport:
    """Table 3: node counts in {16..256}, inter-arrivals in [2 s, 20 s]."""
    scale = scale or current_scale()
    cfg = calibrated_config(scale, heterogeneous=True)
    cmp_ = compare_schemes(
        cfg, PAPER_SCHEME_ORDER, scale.n_replications, n_workers(),
        cache=shared_cache(),
    )
    table = Table(
        "Table 3 — heterogeneous platform (N=10)",
        columns=["Relative Average Stretch", "Relative C.V. of Stretches"],
    )
    data = {}
    for scheme in PAPER_SCHEME_ORDER:
        rel = cmp_.relative(scheme)
        table.add_row(scheme, [rel.avg_stretch, rel.cv_stretch])
        data[scheme] = {
            "avg_stretch": rel.avg_stretch, "cv_stretch": rel.cv_stretch
        }
    return ExperimentReport(
        exp_id="tab3",
        title="heterogeneous platforms",
        paper_expectation=(
            "redundancy even more beneficial than in the homogeneous case "
            "(paper: stretch 0.63-0.83 decreasing with redundancy, "
            "CV 0.79-0.90)"
        ),
        tables=[table],
        data=data,
    )


# ---------------------------------------------------------------------------
# Figure 4: partial adoption
# ---------------------------------------------------------------------------

def fig4(scale: Optional[Scale] = None) -> ExperimentReport:
    """Figure 4: stretch of redundant vs non-redundant jobs vs adoption p."""
    scale = scale or current_scale()
    schemes = PAPER_SCHEME_ORDER
    plot = AsciiPlot(
        "Figure 4 — average stretch vs % of jobs using redundant requests",
        xlabel="% of jobs using redundant requests", ylabel="average stretch",
        height=20,
    )
    table = Table(
        "Figure 4 — average stretch by population (N=10)",
        columns=[f"p={int(p * 100)}%" for p in scale.fig4_fractions],
    )
    penalty_table = Table(
        "Figure 4 — paired non-adopter penalty "
        "(stretch of the same n-r jobs relative to a p=0 world)",
        columns=[f"p={int(p * 100)}%" for p in scale.fig4_fractions if p > 0],
    )
    data: dict[str, dict] = {}
    for scheme in schemes:
        r_series, nr_series, penalties = [], [], []
        baseline_results = None
        for p in scale.fig4_fractions:
            cfg = calibrated_config(
                scale, scheme=scheme, adoption_probability=p
            )
            results = run_replications(
                cfg, scale.n_replications, n_workers(), cache=shared_cache()
            )
            if p == 0.0:
                baseline_results = results
            r_vals, nr_vals = [], []
            for res in results:
                s_r = res.stretches(redundant=True)
                s_nr = res.stretches(redundant=False)
                if s_r.size:
                    r_vals.append(float(s_r.mean()))
                if s_nr.size:
                    nr_vals.append(float(s_nr.mean()))
            r_mean = float(np.mean(r_vals)) if r_vals else float("nan")
            nr_mean = float(np.mean(nr_vals)) if nr_vals else float("nan")
            r_series.append(r_mean)
            nr_series.append(nr_mean)
            if p > 0 and baseline_results is not None:
                ratios = []
                for rp, r0 in zip(results, baseline_results):
                    nr_ids = {
                        j.job_id for j in rp.jobs if not j.uses_redundancy
                    }
                    s_p = [j.stretch for j in rp.jobs if j.job_id in nr_ids]
                    s_0 = [j.stretch for j in r0.jobs if j.job_id in nr_ids]
                    if s_p and s_0:
                        ratios.append(np.mean(s_p) / np.mean(s_0))
                penalties.append(
                    float(np.mean(ratios)) if ratios else float("nan")
                )
            elif p > 0:
                penalties.append(float("nan"))
        table.add_row(f"{scheme} r jobs", r_series)
        table.add_row(f"{scheme} n-r jobs", nr_series)
        penalty_table.add_row(scheme, penalties)
        data.setdefault("penalty", {})[scheme] = dict(
            zip([p for p in scale.fig4_fractions if p > 0], penalties)
        )
        pct = [100 * p for p in scale.fig4_fractions]
        plot.add_series(
            f"{scheme} r",
            [(x, y) for x, y in zip(pct, r_series) if y == y],
        )
        plot.add_series(
            f"{scheme} n-r",
            [(x, y) for x, y in zip(pct, nr_series) if y == y],
        )
        data[scheme] = {
            "r": dict(zip(scale.fig4_fractions, r_series)),
            "nr": dict(zip(scale.fig4_fractions, nr_series)),
        }
    return ExperimentReport(
        exp_id="fig4",
        title="penalty for not using redundant requests",
        paper_expectation=(
            "non-redundant jobs' stretch grows roughly linearly with the "
            "fraction p of redundant jobs, and grows faster for schemes "
            "with more copies; redundant jobs always do better than "
            "non-redundant ones at the same p"
        ),
        tables=[table, penalty_table],
        plots=[plot.render()],
        data=data,
        notes=[
            "the paired penalty table isolates the fairness effect: the "
            "stretch of the identical set of non-adopting jobs, relative "
            "to a world where nobody adopts (common random numbers)",
        ],
    )


# ---------------------------------------------------------------------------
# Figure 5 + Section 4 capacity and load studies
# ---------------------------------------------------------------------------

def fig5(scale: Optional[Scale] = None) -> ExperimentReport:
    """Figure 5: scheduler churn throughput vs queue size."""
    scale = scale or current_scale()
    model = paper_calibrated_model()
    curves = churn_curve(
        model,
        queue_sizes=scale.churn_queue_sizes,
        duration_s=scale.churn_duration,
        n_repetitions=4,
    )
    avg = average_curve(curves)
    table = Table(
        "Figure 5 — submissions (= cancellations) per second vs queue size",
        columns=[str(q) for q in scale.churn_queue_sizes],
    )
    for i, curve in enumerate(curves, 1):
        table.add_row(
            f"Exp #{i}",
            [
                None if s.truncated_by_oom else s.submissions_per_sec
                for s in curve
            ],
        )
    table.add_row("Average", [s.submissions_per_sec for s in avg])
    plot = AsciiPlot(
        "Figure 5 — scheduler throughput under maximal churn",
        xlabel="queue size (pending requests)",
        ylabel="submissions/second",
    )
    plot.add_series(
        "model", [(s.queue_size, s.submissions_per_sec) for s in avg]
    )
    # A genuinely measured analogue: wall-clock throughput of this
    # package's own schedulers under the same protocol.
    real = {
        alg: measure_real_scheduler_throughput(alg, queue_size=2000, n_ops=500)
        for alg in ("fcfs", "easy", "cbf")
    }
    real_table = Table(
        "Measured analogue — this package's schedulers (ops pairs/s, q=2000)",
        columns=["fcfs", "easy", "cbf"],
        precision=0,
    )
    real_table.add_row("wall-clock throughput", [real[a] for a in real_table.columns])
    return ExperimentReport(
        exp_id="fig5",
        title="batch-scheduler throughput under submission/cancellation churn",
        paper_expectation=(
            "≈11 submissions+11 cancellations/s with an empty queue "
            "decaying 'somewhat exponentially' to ≈5+5/s at 20,000 pending; "
            "some curves truncated by scheduler memory leaks"
        ),
        tables=[table, real_table],
        plots=[plot.render()],
        data={
            "average": {s.queue_size: s.submissions_per_sec for s in avg},
            "real_schedulers": real,
        },
        notes=[
            "the model curve is calibrated to the paper's OpenPBS/Maui "
            "measurements (see repro.middleware.pbs); the measured analogue "
            "uses this package's scheduler implementations in wall time",
        ],
    )


def sec4(scale: Optional[Scale] = None) -> ExperimentReport:
    """Section 4: capacity bounds, queue growth, queue-size comparison."""
    scale = scale or current_scale()
    report = capacity_report()
    cap_table = Table(
        "Section 4 — capacity analysis (iat = 5 s, queue depth 10,000)",
        columns=["submissions/s", "max redundancy r"],
    )
    cap_table.add_row(
        "batch scheduler",
        [report.scheduler_throughput, report.scheduler_max_redundancy],
    )
    cap_table.add_row(
        "GT4 WS-GRAM middleware",
        [report.middleware_throughput, report.middleware_max_redundancy],
    )
    growth = queue_growth_vs_cluster_size(
        node_counts=(32, 64, 128, 256),
        duration=scale.load_study_duration
        if scale.name != "paper" else 6 * 3600.0,
    )
    growth_table = Table(
        "Section 4 — queue growth under the authentic peak-hour workload",
        columns=["arrivals/hour", "queue growth/hour"],
    )
    for g in growth:
        growth_table.add_row(f"{g.nodes} nodes", [g.arrivals_per_hour,
                                                  g.growth_per_hour])
    qcmp = compare_max_queue_sizes(
        duration=scale.load_study_duration,
        n_replications=min(scale.n_replications, 3),
    )
    queue_table = Table(
        "Section 4 — average maximum queue size, ALL vs NONE (steady state)",
        columns=["NONE", "ALL", "relative increase"],
    )
    queue_table.add_row(
        f"N={qcmp.n_clusters}, {qcmp.duration_h:.1f}h",
        [qcmp.avg_max_queue_none, qcmp.avg_max_queue_all,
         qcmp.relative_increase],
    )
    return ExperimentReport(
        exp_id="sec4",
        title="system-load capacity analysis",
        paper_expectation=(
            "scheduler tolerates r < 30, middleware r < 3 (middleware is "
            "the bottleneck); queue grows ≈700 jobs/hour independently of "
            "cluster size; ALL inflates max queue size by < 2% in steady "
            "state"
        ),
        tables=[cap_table, growth_table, queue_table],
        data={
            "bottleneck": report.bottleneck,
            "scheduler_max_r": report.scheduler_max_redundancy,
            "middleware_max_r": report.middleware_max_redundancy,
            "growth_per_hour": {g.nodes: g.growth_per_hour for g in growth},
            "queue_increase": qcmp.relative_increase,
        },
    )


# ---------------------------------------------------------------------------
# Table 4: predictability
# ---------------------------------------------------------------------------

def tab4(scale: Optional[Scale] = None) -> ExperimentReport:
    """Table 4: queue-wait over-prediction with and without redundancy."""
    scale = scale or current_scale()
    result = run_table4_study(
        duration=scale.duration,
        n_replications=scale.n_replications,
    )
    table = Table(
        "Table 4 — queue waiting time over-estimation (N=10, CBF, φ estimates)",
        columns=["Average ratio", "C.V. (%)", "jobs"],
    )
    for row in result.rows():
        table.add_row(
            row.label,
            [row.stats.mean_ratio, row.stats.cv_percent, row.stats.count],
        )
    return ExperimentReport(
        exp_id="tab4",
        title="impact of redundancy on queue-wait predictability",
        paper_expectation=(
            "baseline over-prediction ≈9x (CV ≈205%); with 40% of jobs "
            "using ALL, over-prediction grows ≈8x for non-redundant jobs "
            "and ≈4x for redundant jobs"
        ),
        tables=[table],
        data={
            "baseline": result.baseline.stats.mean_ratio,
            "non_redundant": result.non_redundant.stats.mean_ratio,
            "redundant": result.redundant.stats.mean_ratio,
            "degradation_nr": result.degradation_non_redundant,
            "degradation_r": result.degradation_redundant,
        },
    )


# ---------------------------------------------------------------------------
# Section 3.1.2 robustness: requested-time inflation on remote copies
# ---------------------------------------------------------------------------

def sec312(scale: Optional[Scale] = None) -> ExperimentReport:
    """Requested-time inflation (+10%/+50%) on redundant copies."""
    scale = scale or current_scale()
    table = Table(
        "Section 3.1.2 — remote requested-time inflation (N=10, HALF)",
        columns=["Relative Average Stretch", "Relative C.V. of Stretches"],
    )
    data = {}
    for inflation in (0.0, 0.10, 0.50):
        cfg = calibrated_config(scale, remote_inflation=inflation)
        cmp_ = compare_schemes(
            cfg, ["HALF"], scale.n_replications, n_workers(),
            cache=shared_cache(),
        )
        rel = cmp_.relative("HALF")
        table.add_row(
            f"+{inflation:.0%}", [rel.avg_stretch, rel.cv_stretch]
        )
        data[inflation] = rel.avg_stretch
    return ExperimentReport(
        exp_id="sec312",
        title="late-data-binding requested-time inflation",
        paper_expectation=(
            "inflating redundant requests' durations by 10% or 50% makes "
            "no difference to the results"
        ),
        tables=[table],
        data=data,
    )


# ---------------------------------------------------------------------------
# Fault injection: lost cancellations x cluster outages (beyond the paper)
# ---------------------------------------------------------------------------

#: schemes swept by the fault experiment (rising redundancy degree)
FAULT_SCHEMES: tuple[str, ...] = ("R2", "HALF", "ALL")

#: fixed fault-environment knobs (the sweep varies p_loss and the rate)
FAULT_CANCEL_DELAY_MEAN = 30.0
FAULT_OUTAGE_DURATION = 600.0


def _fault_config(
    p_loss: float, outage_rate: float, scheme: str
) -> Optional[FaultConfig]:
    """The fault environment of one sweep cell.

    The NONE baseline never cancels anything, so its cancellation-fault
    knobs are zeroed: its config then only varies with the outage rate
    and the grid dedups one shared baseline across every ``p_loss``
    column.  A cell with no faults at all uses ``faults=None`` — the
    same config every fault-free experiment runs.
    """
    if scheme == "NONE":
        if outage_rate == 0.0:
            return None
        return FaultConfig(
            outage_rate=outage_rate,
            outage_duration=FAULT_OUTAGE_DURATION,
            outage_drop_queue=True,
            resubmit_policy="resubmit",
        )
    if p_loss == 0.0 and outage_rate == 0.0:
        return None
    return FaultConfig(
        p_cancel_loss=p_loss,
        cancel_delay_mean=FAULT_CANCEL_DELAY_MEAN,
        cancel_delay_distribution="exponential",
        outage_rate=outage_rate,
        outage_duration=FAULT_OUTAGE_DURATION,
        outage_drop_queue=True,
        resubmit_policy="resubmit",
    )


def faults(scale: Optional[Scale] = None) -> ExperimentReport:
    """Redundancy under failures: lost cancellations and cluster outages.

    For every (p_cancel_loss, outage_rate) cell the full scheme set runs
    against its own NONE baseline *in the same fault environment*, so
    the relative stretch isolates what redundancy buys when the
    machinery it depends on (cancellation delivery, scheduler uptime)
    is unreliable.  The wasted-work table is the cost side: node-seconds
    burned by orphaned and duplicate copies as a fraction of all work.
    """
    scale = scale or current_scale()
    cells = [
        (p, r)
        for p in scale.faults_p_loss
        for r in scale.faults_outage_rates
    ]
    labels = [f"p={p:g},λ={r:g}/h" for p, r in cells]
    all_schemes = ("NONE",) + FAULT_SCHEMES
    configs = []
    index: dict[tuple[float, float, str], int] = {}
    for p, r in cells:
        for scheme in all_schemes:
            index[(p, r, scheme)] = len(configs)
            configs.append(
                calibrated_config(
                    scale, scheme=scheme, faults=_fault_config(p, r, scheme)
                )
            )
    grid = run_grid(
        configs, scale.n_replications, n_workers=n_workers(),
        cache=shared_cache(),
    )
    stretch_table = Table(
        "Faults — average stretch relative to NONE (same fault environment)",
        columns=labels,
    )
    waste_table = Table(
        "Faults — wasted work, % of all node-seconds consumed",
        columns=labels,
    )
    rel_data: dict[str, dict[str, float]] = {}
    waste_data: dict[str, dict[str, float]] = {}
    lost: dict[str, dict[str, float]] = {}
    total_outages = 0
    for scheme in FAULT_SCHEMES:
        rel_row, waste_row = [], []
        rel_data[scheme] = {}
        waste_data[scheme] = {}
        lost[scheme] = {}
        for (p, r), label in zip(cells, labels):
            results = grid[index[(p, r, scheme)]]
            baseline = grid[index[(p, r, "NONE")]]
            rel = mean_of_ratios(
                [(res.avg_stretch, b.avg_stretch)
                 for res, b in zip(results, baseline)]
            )
            waste = 100.0 * float(
                np.mean([res.wasted_work_fraction for res in results])
            )
            rel_row.append(rel)
            waste_row.append(waste)
            rel_data[scheme][label] = rel
            waste_data[scheme][label] = waste
            lost[scheme][label] = float(
                np.mean([res.lost_cancellations for res in results])
            )
            total_outages += sum(res.outages for res in results)
        stretch_table.add_row(scheme, rel_row)
        waste_table.add_row(scheme, waste_row)
    return ExperimentReport(
        exp_id="faults",
        title="redundancy under lost cancellations and cluster outages",
        paper_expectation=(
            "beyond the paper: the stretch benefit of redundancy should "
            "survive moderate fault rates, while wasted work grows with "
            "the cancellation-loss probability and the number of copies "
            "(approaching 75% for ALL on 4+ clusters when every "
            "cancellation is lost)"
        ),
        tables=[stretch_table, waste_table],
        data={
            "relative_avg_stretch": rel_data,
            "wasted_work_pct": waste_data,
            "mean_lost_cancellations": lost,
            "total_outages": total_outages,
        },
        notes=[
            "each cell pairs schemes with a NONE baseline in the same "
            "fault environment (common random numbers); cancellations "
            f"take Exp({FAULT_CANCEL_DELAY_MEAN:g}s) to deliver in every "
            "faulted cell, outages last "
            f"{FAULT_OUTAGE_DURATION:g}s, drop pending queues, and lost "
            "copies are resubmitted at recovery",
        ],
    )


# ---------------------------------------------------------------------------
# Beyond the paper: the redundancy phase diagram
# ---------------------------------------------------------------------------

#: the phase diagram deliberately runs a small platform — the cell
#: count, not the platform, is its scale axis
PHASE_N_CLUSTERS = 4
PHASE_NODES = 16


def phase_base_config(scale: Scale) -> ExperimentConfig:
    """The fixed (non-swept) part of every phase-diagram cell."""
    return ExperimentConfig(
        n_clusters=PHASE_N_CLUSTERS,
        nodes_per_cluster=PHASE_NODES,
        duration=scale.phase_duration,
        drain=True,
        seed=20060619,
    )


def phase(scale: Optional[Scale] = None) -> ExperimentReport:
    """When is redundancy harmful? (policy × d × regime × load).

    Sweeps the generalised redundancy-d schemes under both cancellation
    policies across service-time regimes and offered loads, classifying
    every cell as helpful/neutral/harmful by mean stretch ratio (vs a
    shared NONE baseline on the same job streams) and by wasted-work
    fraction.  This extends Tables 1–4 into the landscape mapped by the
    modern redundancy literature (see PAPERS.md).
    """
    from ..policies.phase import run_phase_diagram

    scale = scale or current_scale()
    diagram = run_phase_diagram(
        phase_base_config(scale),
        policies=scale.phase_policies,
        degrees=scale.phase_degrees,
        regimes=scale.phase_regimes,
        loads=scale.phase_loads,
        n_replications=scale.n_replications,
        n_workers=n_workers(),
        cache=shared_cache(),
    )
    columns = [f"ρ={load:g}" for load in scale.phase_loads]
    stretch_table = Table(
        "Phase diagram — mean stretch relative to NONE "
        "(same regime, same streams)",
        columns=columns,
    )
    waste_table = Table(
        "Phase diagram — wasted work, % of all node-seconds consumed",
        columns=columns,
    )
    classes: dict[str, dict[str, str]] = {}
    for policy in scale.phase_policies:
        for d in scale.phase_degrees:
            for regime in scale.phase_regimes:
                label = f"{policy}/R{d}/{regime}"
                row = [
                    diagram.cell(policy, d, regime, load)
                    for load in scale.phase_loads
                ]
                stretch_table.add_row(label, [c.stretch_ratio for c in row])
                waste_table.add_row(
                    label, [100.0 * c.waste_fraction for c in row]
                )
                classes[label] = {
                    col: c.stretch_class for col, c in zip(columns, row)
                }
    helpful, harmful = diagram.helpful(), diagram.harmful()
    return ExperimentReport(
        exp_id="phase",
        title="redundancy phase diagram (policy × d × regime × load)",
        paper_expectation=(
            "beyond the paper: cancel-on-start redundancy-d helps at "
            "calibrated loads (the paper's harm verdict presumes its "
            "uncalibrated overload), while cancel-on-complete is harmful "
            "under Lublin/bi-modal runtimes yet flips helpful for small d "
            "under scaled-Bernoulli (Raaijmakers et al.)"
        ),
        tables=[stretch_table, waste_table],
        data={
            "phase_diagram": diagram.to_payload(),
            "stretch_class": classes,
        },
        notes=[
            f"{len(helpful)} helpful / {len(harmful)} harmful of "
            f"{len(diagram.cells)} cells (stretch verdicts at ±"
            f"{100 * _phase_tolerance():g}%); every cell shares its NONE "
            "baseline's job streams (common random numbers)",
        ],
    )


def _phase_tolerance() -> float:
    from ..policies.phase import STRETCH_TOLERANCE

    return STRETCH_TOLERANCE


# ---------------------------------------------------------------------------
# Beyond the paper: the throughput knee, from online statistics alone
# ---------------------------------------------------------------------------

def knee_base_config(scale: Scale) -> ExperimentConfig:
    """The fixed part of every knee cell (the phase diagram's platform)."""
    return ExperimentConfig(
        scheme="R2",
        n_clusters=PHASE_N_CLUSTERS,
        nodes_per_cluster=PHASE_NODES,
        duration=scale.knee_duration,
        drain=False,
        seed=20060619,
    )


def knee(scale: Optional[Scale] = None) -> ExperimentReport:
    """Where does each cancellation policy's throughput knee sit?

    Sweeps offered load ρ over a fixed (non-drained) window per
    cancellation policy and classifies each load as sustained or
    saturated by completion fraction — computed *entirely* from the
    streaming estimators and scalar counters (the per-request arrays
    are stripped before results leave the workers; see
    :mod:`repro.analysis.knee`).
    """
    from .knee import KNEE_COMPLETION_THRESHOLD, run_knee_study

    scale = scale or current_scale()
    study = run_knee_study(
        knee_base_config(scale),
        loads=scale.knee_loads,
        n_replications=scale.n_replications,
        n_workers=n_workers(),
    )
    columns = [f"ρ={load:g}" for load in study.loads]
    completion_table = Table(
        "Knee — completion fraction (completed / submitted, fixed window)",
        columns=columns,
    )
    stretch_table = Table(
        "Knee — online stretch quantiles (P², merged across replications)",
        columns=columns,
    )
    plot = AsciiPlot(
        "Knee — completion fraction vs offered load",
        xlabel="offered load ρ", ylabel="completion fraction",
        reference_y=KNEE_COMPLETION_THRESHOLD,
    )
    for policy in study.policies:
        row = [study.cell(policy, load) for load in study.loads]
        completion_table.add_row(
            policy, [c.completion_fraction for c in row]
        )
        stretch_table.add_row(
            f"{policy} p50", [c.stretch_p50 for c in row]
        )
        stretch_table.add_row(
            f"{policy} p99", [c.stretch_p99 for c in row]
        )
        plot.add_series(
            policy,
            [(c.load, c.completion_fraction) for c in row
             if c.completion_fraction == c.completion_fraction],
        )
    knees = {p: study.knee(p) for p in study.policies}
    return ExperimentReport(
        exp_id="knee",
        title="throughput knee per cancellation policy (online metrics only)",
        paper_expectation=(
            "beyond the paper: completions keep up with submissions below "
            "saturation and collapse past it; cancel-on-complete burns "
            "duplicate work, so its knee sits at or below "
            "cancel-on-start's"
        ),
        tables=[completion_table, stretch_table],
        plots=[plot.render()],
        data=study.to_payload(),
        notes=[
            "classified from online Welford/P² statistics and scalar "
            "counters alone — per-request arrays never leave the "
            "workers (completion fraction ≥ "
            f"{KNEE_COMPLETION_THRESHOLD:g} counts as sustained); "
            "knees found: "
            + ", ".join(f"{p} at ρ={v:g}" if v is not None else f"{p}: none"
                        for p, v in knees.items()),
        ],
    )


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

ExperimentFn = Callable[[Optional[Scale]], ExperimentReport]

REGISTRY: dict[str, tuple[str, ExperimentFn]] = {
    "fig1": ("Figure 1: relative average stretch vs number of sites", fig1),
    "fig2": ("Figure 2: relative CV of stretches vs number of sites", fig2),
    "tab1": ("Table 1: algorithms x estimate regimes", tab1),
    "tab2": ("Table 2: biased redundant-request distribution", tab2),
    "fig3": ("Figure 3: inter-arrival time sweep", fig3),
    "tab3": ("Table 3: heterogeneous platforms", tab3),
    "fig4": ("Figure 4: partial adoption", fig4),
    "fig5": ("Figure 5: scheduler throughput under churn", fig5),
    "sec4": ("Section 4: capacity and load analysis", sec4),
    "tab4": ("Table 4: predictability", tab4),
    "sec312": ("Section 3.1.2: requested-time inflation", sec312),
    "faults": ("Fault injection: lost cancellations x cluster outages", faults),
    "phase": ("Phase diagram: when is redundancy harmful?", phase),
    "knee": ("Throughput knee per cancellation policy (online metrics)", knee),
}


def run_experiment(exp_id: str, scale: Optional[Scale] = None) -> ExperimentReport:
    """Run one registered experiment by id."""
    try:
        _, fn = REGISTRY[exp_id]
    except KeyError:
        raise ValueError(
            f"unknown experiment {exp_id!r}; choose from {sorted(REGISTRY)}"
        ) from None
    return fn(scale)
