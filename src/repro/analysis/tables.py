"""Plain-text tables in the layout of the paper's tables."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence, Union

Cell = Union[str, float, int, None]


def format_cell(value: Cell, precision: int = 2) -> str:
    if value is None:
        return "-"
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if value != value:  # NaN
        return "nan"
    magnitude = abs(value)
    if magnitude != 0 and (magnitude >= 1e5 or magnitude < 10 ** (-precision)):
        return f"{value:.{precision}e}"
    return f"{value:.{precision}f}"


@dataclass
class Table:
    """A titled table with a label column plus value columns."""

    title: str
    columns: Sequence[str]
    rows: list[tuple[str, list[Cell]]] = field(default_factory=list)
    precision: int = 2

    def add_row(self, label: str, values: Iterable[Cell]) -> None:
        values = list(values)
        if len(values) != len(self.columns):
            raise ValueError(
                f"row {label!r} has {len(values)} cells for "
                f"{len(self.columns)} columns"
            )
        self.rows.append((label, values))

    def to_text(self) -> str:
        header = [""] + list(self.columns)
        body = [
            [label] + [format_cell(v, self.precision) for v in values]
            for label, values in self.rows
        ]
        widths = [
            max(len(row[i]) for row in [header] + body)
            for i in range(len(header))
        ]
        def fmt(row: list[str]) -> str:
            first = row[0].ljust(widths[0])
            rest = [c.rjust(w) for c, w in zip(row[1:], widths[1:])]
            return "  ".join([first] + rest)

        rule = "-" * (sum(widths) + 2 * len(widths) - 2)
        lines = [self.title, rule, fmt(header), rule]
        lines += [fmt(r) for r in body]
        lines.append(rule)
        return "\n".join(lines)

    def to_markdown(self) -> str:
        header = "| " + " | ".join([""] + list(self.columns)) + " |"
        sep = "|" + "---|" * (len(self.columns) + 1)
        lines = [f"**{self.title}**", "", header, sep]
        for label, values in self.rows:
            cells = [label] + [format_cell(v, self.precision) for v in values]
            lines.append("| " + " | ".join(cells) + " |")
        return "\n".join(lines)

    def column(self, name: str) -> list[Cell]:
        """Values of one column, top to bottom."""
        idx = list(self.columns).index(name)
        return [values[idx] for _, values in self.rows]

    def cell(self, row_label: str, column: str) -> Cell:
        idx = list(self.columns).index(column)
        for label, values in self.rows:
            if label == row_label:
                return values[idx]
        raise KeyError(f"no row labelled {row_label!r}")
