"""ASCII line plots for regenerating the paper's figures in a terminal.

Deliberately dependency-free: each figure in the benchmark harness is
printed as an aligned character grid, one marker per series, with axis
ticks.  Good enough to see shapes, crossovers and orderings — the
things the reproduction is accountable for.
"""

from __future__ import annotations


from dataclasses import dataclass, field
from typing import Optional, Sequence

MARKERS = "ox+*#@%&"


@dataclass
class Series:
    label: str
    points: list[tuple[float, float]] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        self.points.append((float(x), float(y)))


@dataclass
class AsciiPlot:
    """Multi-series scatter/line plot rendered as text."""

    title: str
    xlabel: str = "x"
    ylabel: str = "y"
    width: int = 64
    height: int = 18
    series: list[Series] = field(default_factory=list)
    #: draw a horizontal reference line at this y (e.g. 1.0 for ratios)
    reference_y: Optional[float] = None

    def add_series(self, label: str, points: Sequence[tuple[float, float]]) -> None:
        self.series.append(Series(label, [(float(x), float(y)) for x, y in points]))

    def _bounds(self) -> tuple[float, float, float, float]:
        xs = [p[0] for s in self.series for p in s.points]
        ys = [p[1] for s in self.series for p in s.points]
        if self.reference_y is not None:
            ys.append(self.reference_y)
        if not xs:
            raise ValueError("plot has no points")
        x0, x1 = min(xs), max(xs)
        y0, y1 = min(ys), max(ys)
        if x0 == x1:
            x0, x1 = x0 - 0.5, x1 + 0.5
        if y0 == y1:
            y0, y1 = y0 - 0.5, y1 + 0.5
        # A little headroom.
        pad = 0.05 * (y1 - y0)
        return x0, x1, y0 - pad, y1 + pad

    def render(self) -> str:
        if not self.series:
            return f"{self.title}\n(empty plot)"
        x0, x1, y0, y1 = self._bounds()
        grid = [[" "] * self.width for _ in range(self.height)]

        def to_col(x: float) -> int:
            return min(
                self.width - 1,
                max(0, int(round((x - x0) / (x1 - x0) * (self.width - 1)))),
            )

        def to_row(y: float) -> int:
            frac = (y - y0) / (y1 - y0)
            return min(
                self.height - 1,
                max(0, self.height - 1 - int(round(frac * (self.height - 1)))),
            )

        if self.reference_y is not None and y0 <= self.reference_y <= y1:
            r = to_row(self.reference_y)
            for c in range(self.width):
                grid[r][c] = "."

        for si, s in enumerate(self.series):
            marker = MARKERS[si % len(MARKERS)]
            pts = sorted(s.points)
            # linear interpolation between consecutive points
            for (xa, ya), (xb, yb) in zip(pts, pts[1:]):
                ca, cb = to_col(xa), to_col(xb)
                for c in range(ca, cb + 1):
                    if cb == ca:
                        y = ya
                    else:
                        t = (c - ca) / (cb - ca)
                        y = ya + t * (yb - ya)
                    rr = to_row(y)
                    if grid[rr][c] == " " or grid[rr][c] == ".":
                        grid[rr][c] = "-" if 0 < c - ca < cb - ca else marker
            for x, y in pts:
                grid[to_row(y)][to_col(x)] = marker

        y_ticks = {0: y1, self.height // 2: (y0 + y1) / 2, self.height - 1: y0}
        lines = [self.title]
        for r, row in enumerate(grid):
            tick = y_ticks.get(r)
            label = f"{tick:>10.3g} |" if tick is not None else " " * 10 + " |"
            lines.append(label + "".join(row))
        lines.append(" " * 11 + "+" + "-" * self.width)
        xt = f"{x0:<.3g}"
        xe = f"{x1:>.3g}"
        mid = f"{(x0 + x1) / 2:^.3g}"
        axis = xt + mid.center(self.width - len(xt) - len(xe)) + xe
        lines.append(" " * 12 + axis)
        lines.append(" " * 12 + self.xlabel.center(self.width))
        legend = "   ".join(
            f"{MARKERS[i % len(MARKERS)]}={s.label}" for i, s in enumerate(self.series)
        )
        lines.append(f"  y: {self.ylabel}   series: {legend}")
        return "\n".join(lines)
