"""Export experiment reports and results to CSV / JSON.

The registry's :class:`~repro.analysis.registry.ExperimentReport`
renders for terminals; these helpers persist the same content for
spreadsheets and downstream analysis, and per-job records for anyone
who wants to recompute metrics differently.
"""

from __future__ import annotations

import csv
import dataclasses
import json
import math
from pathlib import Path
from typing import Iterable, Union

from ..core.results import ExperimentResult
from .tables import Table

PathLike = Union[str, Path]


def _jsonable(value):
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _jsonable(dataclasses.asdict(value))
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def table_to_csv(table: Table, path: PathLike) -> None:
    """Write one table as CSV (label column first)."""
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow([table.title])
        writer.writerow([""] + list(table.columns))
        for label, values in table.rows:
            writer.writerow(
                [label] + ["" if v is None else v for v in values]
            )


def report_to_json(report, path: PathLike) -> None:
    """Persist an ExperimentReport's identity, data and notes as JSON."""
    payload = {
        "exp_id": report.exp_id,
        "title": report.title,
        "paper_expectation": report.paper_expectation,
        "data": _jsonable(report.data),
        "notes": list(report.notes),
        "tables": [
            {
                "title": t.title,
                "columns": list(t.columns),
                "rows": [
                    {"label": label, "values": _jsonable(values)}
                    for label, values in t.rows
                ],
            }
            for t in report.tables
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=2), encoding="utf-8")


JOB_FIELDS = (
    "job_id", "origin", "winner_cluster", "nodes", "runtime",
    "requested_time", "submit_time", "start_time", "end_time",
    "uses_redundancy", "n_copies",
)


def results_to_csv(results: Iterable[ExperimentResult], path: PathLike) -> int:
    """Write per-job outcomes of one or more results; returns row count."""
    count = 0
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            ("scheme", "algorithm", "replication") + JOB_FIELDS
            + ("wait_time", "stretch")
        )
        for result in results:
            for job in result.jobs:
                writer.writerow(
                    (result.scheme, result.algorithm, result.replication)
                    + tuple(getattr(job, f) for f in JOB_FIELDS)
                    + (job.wait_time, job.stretch)
                )
                count += 1
    return count


def read_results_csv(path: PathLike) -> list[dict]:
    """Read a ``results_to_csv`` file back as dicts (round-trip helper)."""
    with open(path, "r", newline="", encoding="utf-8") as fh:
        return list(csv.DictReader(fh))
