"""Statistical utilities for replication studies.

The paper reports means over 50 experiments and mentions the spread
("coefficients of variation ranging approximately from 50% to 5% when
going from N = 2 clusters to N = 20").  These helpers make that spread
first-class: t-based confidence intervals for means and paired ratios,
and a sign test for "scheme beats baseline in most replications".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats as sps


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided confidence interval for a mean."""

    mean: float
    lower: float
    upper: float
    confidence: float
    n: int

    @property
    def half_width(self) -> float:
        return (self.upper - self.lower) / 2.0

    def contains(self, value: float) -> bool:
        return self.lower <= value <= self.upper

    def __str__(self) -> str:
        return (f"{self.mean:.3g} "
                f"[{self.lower:.3g}, {self.upper:.3g}] "
                f"({self.confidence:.0%}, n={self.n})")


def mean_ci(values: Sequence[float], confidence: float = 0.95) -> ConfidenceInterval:
    """t-based confidence interval for the mean of ``values``."""
    arr = np.asarray([v for v in values if math.isfinite(v)], dtype=float)
    if arr.size == 0:
        nan = float("nan")
        return ConfidenceInterval(nan, nan, nan, confidence, 0)
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0,1), got {confidence}")
    mean = float(arr.mean())
    if arr.size == 1:
        return ConfidenceInterval(mean, -math.inf, math.inf, confidence, 1)
    sem = float(arr.std(ddof=1)) / math.sqrt(arr.size)
    t = float(sps.t.ppf(0.5 + confidence / 2.0, arr.size - 1))
    return ConfidenceInterval(
        mean=mean, lower=mean - t * sem, upper=mean + t * sem,
        confidence=confidence, n=int(arr.size),
    )


def paired_ratio_ci(
    values: Sequence[float],
    baselines: Sequence[float],
    confidence: float = 0.95,
) -> ConfidenceInterval:
    """CI for the mean of per-replication ratios (the paper's estimator)."""
    if len(values) != len(baselines):
        raise ValueError(
            f"{len(values)} values vs {len(baselines)} baselines"
        )
    ratios = [
        v / b for v, b in zip(values, baselines)
        if b != 0 and math.isfinite(v / b)
    ]
    return mean_ci(ratios, confidence)


@dataclass(frozen=True)
class SignTestResult:
    """Does the scheme beat the baseline in most replications?"""

    wins: int
    losses: int
    ties: int
    p_value: float

    @property
    def n(self) -> int:
        return self.wins + self.losses + self.ties

    @property
    def win_fraction(self) -> float:
        contested = self.wins + self.losses
        return self.wins / contested if contested else float("nan")


def sign_test(
    values: Sequence[float], baselines: Sequence[float]
) -> SignTestResult:
    """Two-sided sign test of ``values < baselines`` per replication.

    A small p-value means the scheme's advantage (or disadvantage) is
    systematic rather than replication luck — the statistical backing
    for claims like "redundant requests lead to better average
    stretches in more than 95% of the experiments".
    """
    if len(values) != len(baselines):
        raise ValueError(
            f"{len(values)} values vs {len(baselines)} baselines"
        )
    wins = sum(1 for v, b in zip(values, baselines) if v < b)
    losses = sum(1 for v, b in zip(values, baselines) if v > b)
    ties = len(values) - wins - losses
    contested = wins + losses
    if contested == 0:
        return SignTestResult(wins, losses, ties, 1.0)
    p = float(sps.binomtest(wins, contested, 0.5).pvalue)
    return SignTestResult(wins, losses, ties, p)


def coefficient_of_variation(values: Sequence[float]) -> float:
    """Population CV in percent (the paper's spread-across-replications
    diagnostic)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0 or arr.mean() == 0:
        return float("nan")
    return 100.0 * float(arr.std()) / float(arr.mean())
