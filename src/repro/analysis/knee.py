"""Throughput-knee study driven entirely by online statistics.

Sweeps offered load ρ per cancellation policy over a fixed submission
window (no drain) and finds the *knee*: the largest load the platform
still absorbs, defined as completions keeping up with submissions
(completion fraction ≥ :data:`KNEE_COMPLETION_THRESHOLD`).  Beyond the
knee, queues grow without bound and the completed-job population stops
being representative — exactly the regime where the paper's uncalibrated
workload lives.

The study is deliberately restricted to the streaming estimators of
:mod:`repro.obs.stream` plus scalar counters: the per-task runner strips
the per-request ``jobs`` array before the result crosses the process
boundary, so a knee sweep's memory footprint is O(cells), not O(jobs).
Completion counts come from the online stretch stream (one observation
per winning copy), quantiles from its P² bank — a working demonstration
that the observability layer can answer a capacity question on its own.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..core.config import ExperimentConfig
from ..core.parallel import run_grid
from ..core.results import ExperimentResult
from ..obs.stream import MergedOnlineMetrics

#: a load cell is "sustained" when at least this fraction of submitted
#: jobs completed inside the window (online stretch count / submitted)
KNEE_COMPLETION_THRESHOLD = 0.9

#: cancellation policies swept by the registry entry
KNEE_POLICIES: tuple[str, ...] = ("cancel-on-start", "cancel-on-complete")


def run_single_lean(
    config: ExperimentConfig, replication: int = 0
) -> ExperimentResult:
    """``run_grid`` runner keeping only scalars and online payloads.

    Drops the per-request ``jobs`` array (the only O(jobs) field) so a
    wide load sweep ships tiny results between workers.  Must never be
    used with a cache: a stripped result would shadow a full one.
    """
    from ..core.experiment import run_single

    result = run_single(config, replication)
    return dataclasses.replace(result, jobs=[])


@dataclass(frozen=True)
class KneeCell:
    """One (policy, load) cell, aggregated over its replications."""

    policy: str
    load: float
    n_submitted: int
    n_completed: int          # online stretch observations = winners
    stretch_p50: Optional[float]
    stretch_p99: Optional[float]
    stretch_mean: Optional[float]
    wasted_node_seconds: float

    @property
    def completion_fraction(self) -> float:
        if self.n_submitted == 0:
            return float("nan")
        return self.n_completed / self.n_submitted

    @property
    def sustained(self) -> bool:
        f = self.completion_fraction
        return f == f and f >= KNEE_COMPLETION_THRESHOLD


@dataclass
class KneeStudy:
    """All cells of a knee sweep plus the per-policy classification."""

    policies: tuple[str, ...]
    loads: tuple[float, ...]
    n_replications: int
    cells: list[KneeCell] = field(default_factory=list)

    def cell(self, policy: str, load: float) -> KneeCell:
        for c in self.cells:
            if c.policy == policy and c.load == load:
                return c
        raise KeyError(f"no cell ({policy!r}, {load!r})")

    def knee(self, policy: str) -> Optional[float]:
        """Largest swept load this policy still sustains (None: none)."""
        sustained = [
            c.load for c in self.cells if c.policy == policy and c.sustained
        ]
        return max(sustained) if sustained else None

    def to_payload(self) -> dict:
        return {
            "threshold": KNEE_COMPLETION_THRESHOLD,
            "loads": list(self.loads),
            "n_replications": self.n_replications,
            "knee_load": {p: self.knee(p) for p in self.policies},
            "cells": [
                {
                    "policy": c.policy,
                    "load": c.load,
                    "n_submitted": c.n_submitted,
                    "n_completed": c.n_completed,
                    "completion_fraction": (
                        c.completion_fraction
                        if c.completion_fraction == c.completion_fraction
                        else None
                    ),
                    "sustained": c.sustained,
                    "stretch_p50": c.stretch_p50,
                    "stretch_p99": c.stretch_p99,
                    "stretch_mean": c.stretch_mean,
                    "wasted_node_seconds": c.wasted_node_seconds,
                }
                for c in self.cells
            ],
        }


def _aggregate_cell(
    policy: str, load: float, results: Sequence[ExperimentResult]
) -> KneeCell:
    merged = MergedOnlineMetrics()
    for res in results:
        merged.add(res.online_metrics)
    n_completed = merged.count("stretch")
    mean, _ = merged.mean_variance("stretch")
    p50 = merged.quantile("stretch", 0.5)
    p99 = merged.quantile("stretch", 0.99)
    return KneeCell(
        policy=policy,
        load=load,
        n_submitted=sum(res.n_submitted_jobs for res in results),
        n_completed=n_completed,
        stretch_p50=p50 if not math.isnan(p50) else None,
        stretch_p99=p99 if not math.isnan(p99) else None,
        stretch_mean=mean if not math.isnan(mean) else None,
        wasted_node_seconds=sum(
            res.wasted_node_seconds for res in results
        ),
    )


def run_knee_study(
    base: ExperimentConfig,
    loads: Sequence[float],
    n_replications: int,
    policies: Sequence[str] = KNEE_POLICIES,
    n_workers: int = 1,
) -> KneeStudy:
    """Sweep ρ per cancellation policy; classify the throughput knee.

    ``base`` fixes everything but the swept axes; the sweep forces a
    fixed window (``drain=False``) because a drained run completes every
    job by construction and can have no knee.  Caching is off by design:
    the lean runner's stripped results must never enter the shared
    cache.
    """
    configs = [
        base.with_(cancellation_policy=policy, offered_load=load, drain=False)
        for policy in policies
        for load in loads
    ]
    grid = run_grid(
        configs,
        n_replications,
        n_workers=n_workers,
        cache=None,
        runner=run_single_lean,
    )
    study = KneeStudy(
        policies=tuple(policies),
        loads=tuple(float(x) for x in loads),
        n_replications=n_replications,
    )
    it = iter(grid)
    for policy in policies:
        for load in loads:
            study.cells.append(_aggregate_cell(policy, float(load), next(it)))
    return study
