"""Runtime invariant auditor, differential oracle and fuzz harness.

The paper's conclusions rest entirely on the simulator being
trustworthy: a single capacity leak or illegal backfill silently
corrupts every stretch/CV table the reproduction regenerates.  This
package is the correctness tooling that lets the kernel, schedulers and
coordinator be refactored aggressively without fear:

* :mod:`repro.sanitize.auditor` — an opt-in, zero-overhead-when-off
  runtime invariant auditor (the same hook discipline as the
  :mod:`repro.obs` tracer) that checks node-capacity conservation,
  backfill legality, FCFS order, cancellation consistency, monotone
  event times and profile representation invariants per event;
* :mod:`repro.sanitize.oracle` — a differential oracle that runs the
  same seeded workload under FCFS/EASY/CBF and asserts cross-scheduler
  relations;
* :mod:`repro.sanitize.fuzz` — a seeded fuzz harness generating small
  random workloads/platforms and sweeping them with the auditor armed
  (driven by ``hypothesis`` in ``tests/sanitize/``);
* :mod:`repro.sanitize.check` — the ``repro check`` orchestrator that
  runs all three and reports violations with obs-layer trace context.
"""

from .auditor import AuditError, InvariantAuditor, Violation, run_single_audited
from .check import CheckReport, run_check
from .fuzz import FuzzReport, fuzz_case_config, run_fuzz
from .oracle import OracleFinding, OracleReport, run_differential_oracle

__all__ = [
    "AuditError",
    "InvariantAuditor",
    "Violation",
    "run_single_audited",
    "OracleFinding",
    "OracleReport",
    "run_differential_oracle",
    "FuzzReport",
    "fuzz_case_config",
    "run_fuzz",
    "CheckReport",
    "run_check",
]
