"""Runtime invariant auditor: prove each run obeyed the rules.

The auditor mirrors the :mod:`repro.obs` tracer's hook discipline: the
kernel, every scheduler and the coordinator each hold an ``auditor``
attribute that defaults to ``None``, and every hook site costs exactly
one attribute check when no auditor is attached — results are
bit-identical to an unaudited run and ``repro bench`` shows no
measurable regression.  With an auditor armed, every state transition
is independently re-derived and checked:

========================  ==================================================
``event-time``            the kernel never executes an event before the
                          current clock (monotone, finite timestamps)
``capacity``              allocated + free == total on every cluster, and
                          the nodes held by the running set equal the
                          cluster's busy count, after every transition
``fcfs-order``            an FCFS start never leaves an earlier-submitted
                          request pending (submission order preserved)
``easy-backfill``         an EASY backfill never moves the head request's
                          shadow (guaranteed start) time later
``cbf-reservation``       a CBF request never starts after its at-submit
                          prediction (waived for clusters whose daemon
                          suffered an outage — guarantees cannot survive
                          a suspended scheduler), and no pending
                          reservation is ever left overdue after a
                          scheduling pass
``profile``               the CBF availability profile satisfies its
                          representation invariants
                          (:meth:`~repro.sched.profile.Profile.check_invariants`,
                          promoted here from test-only use) **and** equals
                          a from-scratch reconstruction out of the running
                          holds and pending reservations (capacity leaks in
                          the incremental bookkeeping cannot hide)
``duplicate-start``       a job never runs on two clusters after its winner
                          starts unless the losing copy's cancellation is
                          explicitly accounted as lost (fault draw or
                          downed daemon) or still legally in flight
                          (positive cancellation latency / delay draws)
``protocol``              end-of-run: winner uniqueness, loser states, and
                          request/queue bookkeeping across the platform
========================  ==================================================

Violations carry the offending simulated time, cluster/request/job ids
and — when a :class:`~repro.obs.trace.TraceRecorder` is attached — the
tail of the lifecycle trace leading up to the violation, so a report
shows *what the simulation was doing* when the invariant broke.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..obs.trace import format_event
from ..sched.job import Request, RequestState
from ..sched.profile import Profile, ProfileError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cluster.platform import Platform
    from ..core.config import ExperimentConfig
    from ..core.coordinator import Coordinator
    from ..core.results import ExperimentResult
    from ..sched.base import Scheduler
    from ..sim.engine import Simulator
    from ..sim.events import Event

#: absolute slack for floating-point time comparisons (seconds)
TIME_EPS = 1e-6

#: violation kinds the auditor can report, in rough lifecycle order
VIOLATION_KINDS = (
    "event-time",
    "capacity",
    "state",
    "fcfs-order",
    "easy-backfill",
    "cbf-reservation",
    "profile",
    "duplicate-start",
    "protocol",
)


class AuditError(AssertionError):
    """Raised (in ``raise`` mode) the instant an invariant is violated.

    Subclasses ``AssertionError`` so callers that treated invariant
    checks as assertions keep working, but is raised explicitly so
    ``python -O`` cannot strip the checks.
    """


@dataclass(frozen=True)
class Violation:
    """One observed invariant violation, with obs-layer context."""

    time: float
    kind: str
    message: str
    cluster: int = -1
    request_id: int = -1
    job_id: int = -1
    #: tail of the lifecycle trace leading up to the violation —
    #: ``(time, type, cluster, request, job)`` tuples, oldest first —
    #: empty when no tracer was attached
    trace_context: tuple = ()

    def describe(self) -> str:
        """Multi-line human-readable rendering (used by ``repro check``)."""
        where = []
        if self.cluster >= 0:
            where.append(f"cluster={self.cluster}")
        if self.request_id >= 0:
            where.append(f"request={self.request_id}")
        if self.job_id >= 0:
            where.append(f"job={self.job_id}")
        head = (
            f"[{self.kind}] t={self.time:.3f}"
            + (f" ({', '.join(where)})" if where else "")
            + f": {self.message}"
        )
        if not self.trace_context:
            return head
        lines = [head, "  trace context (most recent last):"]
        for event in self.trace_context:
            lines.append(f"    {format_event(event)}")
        return "\n".join(lines)


class InvariantAuditor:
    """Per-event invariant checks over one simulated run.

    Parameters
    ----------
    mode:
        ``"raise"`` (default) raises :class:`AuditError` on the first
        violation — the debugging posture.  ``"collect"`` records every
        violation (up to ``max_violations``) and lets the run finish —
        the ``repro check`` reporting posture.
    tracer:
        Optional :class:`~repro.obs.trace.TraceRecorder` shared with the
        run; the last ``context_events`` lifecycle events are attached
        to every violation.
    context_events:
        How many trailing trace events each violation captures.
    cbf_profile_every:
        Run the (relatively expensive) from-scratch CBF profile
        reconstruction on every Nth scheduling pass per scheduler; the
        cheap representation-invariant check still runs on every pass.
    """

    def __init__(
        self,
        mode: str = "raise",
        tracer=None,
        context_events: int = 8,
        max_violations: int = 100,
        cbf_profile_every: int = 4,
    ) -> None:
        if mode not in ("raise", "collect"):
            raise ValueError(f"mode must be 'raise' or 'collect', got {mode!r}")
        if cbf_profile_every < 1:
            raise ValueError(
                f"cbf_profile_every must be >= 1, got {cbf_profile_every}"
            )
        self.mode = mode
        self.tracer = tracer
        self.context_events = int(context_events)
        self.max_violations = int(max_violations)
        self.cbf_profile_every = int(cbf_profile_every)
        self.violations: list[Violation] = []
        #: violations beyond ``max_violations`` (counted, not stored)
        self.suppressed = 0
        #: individual invariant checks evaluated (observability counter)
        self.checks = 0
        self._pass_counts: dict[int, int] = {}
        #: request ids whose sibling cancellation was recorded as lost —
        #: these copies may legally run beside their winner
        self._lost_cancel_ids: set[int] = set()
        #: per-scheduler key of the last started request, for the O(1)
        #: FCFS monotone-start check
        self._fcfs_last_start: dict[int, tuple[float, int]] = {}
        #: schedulers whose daemon went down at least once — at-submit
        #: start guarantees cannot survive an outage (passes are
        #: suspended and overdue reservations are re-placed on recovery),
        #: so the prediction check is waived for these clusters
        self._outage_scheds: set[int] = set()

    # -- reporting ---------------------------------------------------------

    @property
    def ok(self) -> bool:
        return not self.violations and self.suppressed == 0

    @property
    def total_violations(self) -> int:
        return len(self.violations) + self.suppressed

    def _violate(
        self,
        time: float,
        kind: str,
        message: str,
        cluster: int = -1,
        request: Optional[Request] = None,
    ) -> None:
        context: tuple = ()
        if self.tracer is not None and self.tracer.events:
            context = tuple(self.tracer.events[-self.context_events:])
        violation = Violation(
            time=time,
            kind=kind,
            message=message,
            cluster=cluster,
            request_id=request.request_id if request is not None else -1,
            job_id=(
                getattr(request.group, "job_id", -1)
                if request is not None
                else -1
            ),
            trace_context=context,
        )
        if self.mode == "raise":
            raise AuditError(violation.describe())
        if len(self.violations) < self.max_violations:
            self.violations.append(violation)
        else:
            self.suppressed += 1

    def _check(
        self,
        condition: bool,
        time: float,
        kind: str,
        message: str,
        cluster: int = -1,
        request: Optional[Request] = None,
    ) -> None:
        self.checks += 1
        if not condition:
            self._violate(time, kind, message, cluster, request)

    # -- kernel hook -------------------------------------------------------

    def on_event(self, sim: "Simulator", event: "Event") -> None:
        """Called by the kernel for every event about to execute."""
        self._check(
            event.time >= sim.now - TIME_EPS and event.time == event.time,
            event.time,
            "event-time",
            f"event at t={event.time} executes before the clock "
            f"(now={sim.now}) or carries a NaN timestamp",
        )

    # -- scheduler hooks ---------------------------------------------------

    def _check_capacity(self, sched: "Scheduler") -> None:
        cluster = sched.cluster
        now = sched.sim.now
        held = sum(r.nodes for r in sched.running)
        self._check(
            0 <= cluster.free_nodes <= cluster.total_nodes,
            now,
            "capacity",
            f"{sched.name}: free_nodes={cluster.free_nodes} outside "
            f"[0, {cluster.total_nodes}]",
            cluster=cluster.index,
        )
        self._check(
            held == cluster.busy_nodes,
            now,
            "capacity",
            f"{sched.name}: running requests hold {held} nodes but the "
            f"cluster accounts {cluster.busy_nodes} busy "
            f"(allocated + free != total)",
            cluster=cluster.index,
        )
        self._check(
            all(r.state is RequestState.RUNNING for r in sched.running),
            now,
            "state",
            f"{sched.name}: non-RUNNING request in the running set",
            cluster=cluster.index,
        )

    def after_submit(self, sched: "Scheduler", request: Request) -> None:
        now = sched.sim.now
        idx = sched.cluster.index
        self._check(
            request.state is RequestState.PENDING,
            now,
            "state",
            f"{sched.name}: submitted request {request.request_id} is "
            f"{request.state.value}, not pending",
            cluster=idx,
            request=request,
        )
        if sched.algorithm == "cbf":
            rs = request.reserved_start
            self._check(
                rs is not None and rs >= now - TIME_EPS,
                now,
                "cbf-reservation",
                f"{sched.name}: request {request.request_id} submitted "
                f"without a future reservation (reserved_start={rs})",
                cluster=idx,
                request=request,
            )

    def after_start(self, sched: "Scheduler", request: Request) -> None:
        now = sched.sim.now
        idx = sched.cluster.index
        self._check_capacity(sched)
        if sched.algorithm == "fcfs":
            key = (request.submitted_at, request.request_id)
            last = self._fcfs_last_start.get(id(sched))
            self._check(
                last is None or key >= last,
                now,
                "fcfs-order",
                f"{sched.name}: request {request.request_id} "
                f"(submitted t={request.submitted_at}) started after a "
                f"later-submitted request (FCFS order broken)",
                cluster=idx,
                request=request,
            )
            self._fcfs_last_start[id(sched)] = key
            earlier = [
                r
                for r in sched.queue
                if r.is_pending
                and (r.submitted_at, r.request_id) < key
            ]
            self._check(
                not earlier,
                now,
                "fcfs-order",
                f"{sched.name}: request {request.request_id} started while "
                f"{len(earlier)} earlier-submitted request(s) stayed pending "
                f"(first: {earlier[0].request_id if earlier else '-'})",
                cluster=idx,
                request=request,
            )
        elif sched.algorithm == "cbf":
            predicted = request.predicted_start_at_submit
            if predicted is not None and id(sched) not in self._outage_scheds:
                self._check(
                    request.start_time <= predicted + TIME_EPS,
                    now,
                    "cbf-reservation",
                    f"{sched.name}: request {request.request_id} started at "
                    f"t={request.start_time} after its at-submit guarantee "
                    f"t={predicted}",
                    cluster=idx,
                    request=request,
                )

    def after_cancel(self, sched: "Scheduler", request: Request) -> None:
        now = sched.sim.now
        idx = sched.cluster.index
        self._check(
            request.state is RequestState.CANCELLED
            and request not in sched.running,
            now,
            "state",
            f"{sched.name}: cancelled request {request.request_id} is "
            f"{request.state.value} or still in the running set",
            cluster=idx,
            request=request,
        )
        if sched.algorithm == "cbf":
            self._check(
                request.reserved_start is None,
                now,
                "cbf-reservation",
                f"{sched.name}: cancelled request {request.request_id} still "
                f"holds a reservation at t={request.reserved_start}",
                cluster=idx,
                request=request,
            )

    def after_finish(self, sched: "Scheduler", request: Request) -> None:
        now = sched.sim.now
        self._check_capacity(sched)
        self._check(
            request.end_time is not None
            and request.start_time is not None
            and abs(request.end_time - request.start_time - request.runtime)
            <= TIME_EPS,
            now,
            "state",
            f"{sched.name}: request {request.request_id} finished at "
            f"t={request.end_time} but started t={request.start_time} with "
            f"runtime {request.runtime}",
            cluster=sched.cluster.index,
            request=request,
        )

    def after_pass(self, sched: "Scheduler") -> None:
        self._check_capacity(sched)
        if sched.algorithm == "cbf":
            self._audit_cbf_pass(sched)

    # -- EASY backfill legality --------------------------------------------

    def check_easy_backfill(
        self, sched: "Scheduler", head: Request, request: Request,
        shadow_before: float,
    ) -> None:
        """A backfill must never delay the head's guaranteed start.

        Called by the EASY pass right after a backfilled start, with the
        shadow time computed *before* the start; the auditor recomputes
        the shadow from the post-start running set and requires it not
        to have moved later.  ``head`` may have been cancelled
        reentrantly by the start's sibling-cancellation callbacks, in
        which case there is no reservation left to protect.
        """
        if not head.is_pending:
            return
        now = sched.sim.now
        shadow_after, _ = sched._head_reservation(head.nodes)
        self._check(
            shadow_after <= shadow_before + TIME_EPS,
            now,
            "easy-backfill",
            f"{sched.name}: backfilling request {request.request_id} moved "
            f"head request {head.request_id}'s shadow time from "
            f"t={shadow_before} to t={shadow_after} (illegal backfill)",
            cluster=sched.cluster.index,
            request=request,
        )

    # -- CBF profile audit -------------------------------------------------

    def _audit_cbf_pass(self, sched: "Scheduler") -> None:
        now = sched.sim.now
        idx = sched.cluster.index
        profile = sched.profile
        self.checks += 1
        try:
            profile.check_invariants()
        except (AssertionError, ProfileError) as exc:
            self._violate(
                now, "profile",
                f"{sched.name}: profile representation invariant broken: {exc}",
                cluster=idx,
            )
            return
        for req in sched.queue:
            if req.is_pending:
                rs = req.reserved_start
                self._check(
                    rs is not None and rs >= now - TIME_EPS,
                    now,
                    "cbf-reservation",
                    f"{sched.name}: request {req.request_id}'s reservation "
                    f"t={rs} is overdue after the pass (a backfill delayed "
                    f"an earlier-arriving job's reserved start?)",
                    cluster=idx,
                    request=req,
                )
        count = self._pass_counts.get(id(sched), 0) + 1
        self._pass_counts[id(sched)] = count
        if count % self.cbf_profile_every == 0:
            self._reconstruct_cbf_profile(sched)

    def _reconstruct_cbf_profile(self, sched: "Scheduler") -> None:
        """Rebuild the availability profile from scratch and diff it.

        The incremental profile must equal ``capacity − running holds −
        pending reservations`` at every breakpoint from ``now`` on; any
        drift means a window was leaked or double-released somewhere in
        the submit/cancel/backfill/early-finish bookkeeping.
        """
        now = sched.sim.now
        idx = sched.cluster.index
        total = sched.cluster.total_nodes
        expected = Profile(now, total, total)
        try:
            for run in sched.running:
                end = run.expected_end
                if end > now:
                    expected.adjust(now, end, -run.nodes)
            for req in sched.queue:
                if not req.is_pending:
                    continue
                rs = req.reserved_start
                if rs is None:
                    continue  # already reported by the overdue check
                start = max(rs, now)
                end = rs + req.requested_time
                if end > start:
                    expected.adjust(start, end, -req.nodes)
        except ProfileError as exc:
            self._violate(
                now, "profile",
                f"{sched.name}: running holds + reservations oversubscribe "
                f"the cluster: {exc}",
                cluster=idx,
            )
            return
        actual = sched.profile
        points = sorted(
            {t for t in actual.times if t >= now} | set(expected.times)
        )
        self.checks += 1
        for t in points:
            want = expected.free_at(t)
            got = actual.free_at(t)
            if got != want:
                self._violate(
                    now, "profile",
                    f"{sched.name}: incremental profile drifted from "
                    f"reconstruction at t={t}: profile says {got} free, "
                    f"running holds + reservations imply {want} "
                    f"(capacity leak in the profile bookkeeping)",
                    cluster=idx,
                )
                return

    def note_outage(self, sched: "Scheduler") -> None:
        """Record that ``sched``'s daemon went down (called by go_down).

        A downed daemon suspends scheduling passes, so reservations can
        go overdue and at-submit start guarantees become unkeepable; the
        CBF prediction check is waived for this scheduler from here on.
        """
        self._outage_scheds.add(id(sched))

    # -- coordinator hooks -------------------------------------------------

    def note_cancel_lost(self, request: Request) -> None:
        """Record that ``request``'s sibling cancellation was lost.

        Lost copies are the *explicitly accounted* exception to the
        one-winner rule: they may start beside the winner later, and
        :meth:`on_duplicate_start` treats them as explained.
        """
        self._lost_cancel_ids.add(request.request_id)

    def on_duplicate_start(
        self, coordinator: "Coordinator", job, request: Request
    ) -> None:
        now = coordinator.sim.now
        injector = coordinator.fault_injector
        explained = (
            request.request_id in self._lost_cancel_ids
            or coordinator.cancellation_latency > 0
            or (injector is not None and injector.has_cancel_delay)
            # Under cancel-on-complete losers legally start while the
            # winner still runs: the cancellation sweep has not been
            # dispatched yet, so a duplicate start is the protocol
            # working as designed, not an anomaly.
            or coordinator.policy.expects_duplicate_starts
        )
        self._check(
            explained,
            now,
            "duplicate-start",
            f"job {job.job_id}: request {request.request_id} started on "
            f"cluster {request.cluster.cluster.index} although the winner "
            f"(request {job.winner.request_id}) already runs on cluster "
            f"{job.winner.cluster.cluster.index} — and no lost cancellation "
            f"or in-flight latency accounts for it",
            cluster=request.cluster.cluster.index,
            request=request,
        )

    # -- end-of-run audit --------------------------------------------------

    def final_check(
        self, platform: "Platform", coordinator: Optional["Coordinator"] = None
    ) -> None:
        """Audit the quiesced platform and the first-start-wins protocol."""
        now = platform.sim.now
        for sched in platform.schedulers:
            self._check_capacity(sched)
            pending = sum(1 for r in sched.queue if r.is_pending)
            self._check(
                pending == sched.queue_length,
                now,
                "state",
                f"{sched.name}: cached pending count {sched.queue_length} "
                f"!= {pending} actually pending",
                cluster=sched.cluster.index,
            )
            self._check(
                all(r.state is not RequestState.CREATED for r in sched.queue),
                now,
                "state",
                f"{sched.name}: unsubmitted (CREATED) request in the queue",
                cluster=sched.cluster.index,
            )
            if sched.algorithm == "fcfs":
                keys = [
                    (r.submitted_at, r.request_id)
                    for r in sched.queue
                    if r.is_pending
                ]
                self._check(
                    keys == sorted(keys),
                    now,
                    "fcfs-order",
                    f"{sched.name}: pending queue is not in submission order",
                    cluster=sched.cluster.index,
                )
        if coordinator is None:
            return
        duplicate_ids = {r.request_id for r in coordinator.duplicate_starts}
        ran = (RequestState.RUNNING, RequestState.COMPLETED)
        for job in coordinator.jobs:
            if job.winner is None:
                self._check(
                    not any(r.state in ran for r in job.requests),
                    now,
                    "protocol",
                    f"job {job.job_id}: a request ran but the job has no "
                    f"winner",
                )
                continue
            self._check(
                job.winner.state in ran,
                now,
                "protocol",
                f"job {job.job_id}: winner request "
                f"{job.winner.request_id} is {job.winner.state.value}",
                request=job.winner,
            )
            for req in job.requests:
                if req is job.winner or req.state not in ran:
                    continue
                explained = (
                    req.request_id in duplicate_ids
                    and (
                        req.request_id in self._lost_cancel_ids
                        or coordinator.cancellation_latency > 0
                        or (
                            coordinator.fault_injector is not None
                            and coordinator.fault_injector.has_cancel_delay
                        )
                        # cancel-on-complete: running losers are the
                        # policy's design, still counted as waste above
                        or coordinator.policy.expects_duplicate_starts
                    )
                )
                self._check(
                    explained,
                    now,
                    "duplicate-start",
                    f"job {job.job_id}: loser request {req.request_id} ran "
                    f"on cluster {req.cluster.cluster.index} beside winner "
                    f"{job.winner.request_id} without an accounted lost or "
                    f"in-flight cancellation",
                    cluster=req.cluster.cluster.index,
                    request=req,
                )


def run_single_audited(
    config: "ExperimentConfig",
    replication: int = 0,
    mode: str = "collect",
    cbf_profile_every: int = 4,
) -> "tuple[ExperimentResult | None, InvariantAuditor]":
    """Run one replication with the auditor (and a tracer for context).

    Returns ``(result, auditor)``; in ``collect`` mode the run always
    finishes and ``auditor.violations`` holds what broke (empty = the
    run provably obeyed every audited invariant).  Request ids are
    reset on entry so violation reports are a pure function of
    ``(config, replication)``.
    """
    from ..core.experiment import run_single
    from ..obs.trace import TraceRecorder
    from ..sched.job import reset_request_ids

    reset_request_ids()
    tracer = TraceRecorder()
    auditor = InvariantAuditor(
        mode=mode, tracer=tracer, cbf_profile_every=cbf_profile_every
    )
    result = run_single(config, replication, tracer=tracer, auditor=auditor)
    return result, auditor
