"""Seeded fuzzing: random small scenarios swept with the auditor armed.

Each fuzz case is a deterministic function of ``(master_seed, index)``:
a small random platform (1-4 clusters, 8-32 nodes), a random algorithm,
scheme, load, estimate regime, cancellation latency and — in a third of
the cases — a random fault environment.  Every case runs to completion
with the :class:`~repro.sanitize.auditor.InvariantAuditor` in collect
mode; any violation (or crash) is reported with enough detail to replay
the exact case: ``fuzz_case_config(master_seed, index)`` rebuilds it.

The ``hypothesis``-driven twin of this harness lives in
``tests/sanitize/`` — this module is dependency-free so ``repro check``
can fuzz in environments without hypothesis installed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..core.config import ExperimentConfig
from ..faults import FaultConfig
from ..sim.rng import RngFactory
from .auditor import Violation, run_single_audited

#: default master seed for ``repro check`` fuzzing
DEFAULT_FUZZ_SEED = 20060619


def fuzz_case_config(master_seed: int, index: int) -> ExperimentConfig:
    """Build fuzz case ``index`` — a pure function of the two seeds."""
    rng = RngFactory(master_seed).generator("fuzz", index)
    n_clusters = int(rng.integers(1, 5))
    nodes = tuple(int(rng.choice((8, 16, 32))) for _ in range(n_clusters))
    algorithm = str(rng.choice(("fcfs", "easy", "cbf")))
    schemes = ("NONE",) if n_clusters == 1 else ("NONE", "R2", "R3", "ALL")
    scheme = str(rng.choice(schemes))
    faults = None
    if rng.random() < 1 / 3:
        faults = FaultConfig(
            p_cancel_loss=float(rng.choice((0.0, 0.1, 0.3))),
            cancel_delay_mean=float(rng.choice((0.0, 20.0))),
            outage_rate=float(rng.choice((0.0, 2.0, 6.0))),
            outage_duration=120.0,
            outage_drop_queue=bool(rng.integers(0, 2)),
            resubmit_policy=str(rng.choice(("resubmit", "abandon"))),
        )
        if not faults.enabled:
            faults = None
    compress = None
    if algorithm == "cbf":
        compress = [None, None, 0.0, 120.0][int(rng.integers(0, 4))]
    return ExperimentConfig(
        n_clusters=n_clusters,
        nodes_per_cluster=nodes,
        algorithm=algorithm,
        scheme=scheme,
        adoption_probability=float(rng.choice((1.0, 0.5))),
        duration=float(rng.uniform(150.0, 600.0)),
        drain=True,
        # Discrete load levels so the memoised load calibration is shared
        # across cases (a continuous draw would refit per case).
        offered_load=float(rng.choice((0.8, 1.2, 1.6, 2.0, 2.5))),
        estimates=str(rng.choice(("exact", "phi"))),
        cancellation_latency=float(rng.choice((0.0, 0.0, 5.0, 30.0))),
        faults=faults,
        cbf_compress_interval=compress,
        seed=int(rng.integers(0, 2**31)),
    )


@dataclass(frozen=True)
class FuzzFailure:
    """One fuzz case that violated an invariant (or crashed)."""

    index: int
    config: str
    #: exception text when the run itself crashed, else ``None``
    error: Optional[str]
    violations: tuple = ()

    def describe(self) -> str:
        head = f"case {self.index}: {self.config}"
        if self.error is not None:
            return f"{head}\n  crashed: {self.error}"
        lines = [head]
        lines.extend(
            "  " + v.describe().replace("\n", "\n  ") for v in self.violations
        )
        return "\n".join(lines)


@dataclass
class FuzzReport:
    """Outcome of one fuzz sweep."""

    master_seed: int
    n_cases: int
    failures: list[FuzzFailure] = field(default_factory=list)
    #: individual auditor checks evaluated across all cases
    checks: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        lines = [
            f"fuzz: {self.n_cases} case(s), master seed {self.master_seed}, "
            f"{self.checks} auditor checks"
        ]
        if self.ok:
            lines.append("  no violations")
        else:
            lines.append(f"  {len(self.failures)} failing case(s):")
            lines.extend(
                "  " + f.describe().replace("\n", "\n  ")
                for f in self.failures
            )
        return "\n".join(lines)


def run_fuzz(
    n_cases: int,
    master_seed: int = DEFAULT_FUZZ_SEED,
    progress: Optional[Callable[[str], None]] = None,
) -> FuzzReport:
    """Run ``n_cases`` auditor-armed fuzz cases; report every failure."""
    report = FuzzReport(master_seed=master_seed, n_cases=n_cases)
    for index in range(n_cases):
        config = fuzz_case_config(master_seed, index)
        if progress is not None:
            progress(f"fuzz case {index + 1}/{n_cases}: {config.describe()}")
        try:
            _, auditor = run_single_audited(config, mode="collect")
        # repro-lint: disable=EXC001 -- fuzzing *wants* the crash: it is
        # recorded as a FuzzFailure finding rather than propagated
        except Exception as exc:  # noqa: BLE001 - any crash is a finding
            report.failures.append(FuzzFailure(
                index=index, config=config.describe(), error=repr(exc),
            ))
            continue
        report.checks += auditor.checks
        if not auditor.ok:
            violations: tuple[Violation, ...] = tuple(auditor.violations)
            report.failures.append(FuzzFailure(
                index=index,
                config=config.describe(),
                error=None,
                violations=violations,
            ))
    return report
