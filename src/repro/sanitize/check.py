"""The ``repro check`` orchestrator: audit, differentiate, fuzz, report.

Three stages, each independently reportable:

1. **audited suite** — the seed registry's configuration space (all
   three algorithms x redundancy schemes, a faults environment matching
   the ``faults`` experiment, positive cancellation latency, and — at
   full scale — heterogeneous platforms and eager CBF compression) runs
   with the invariant auditor armed in collect mode;
2. **differential oracle** — FCFS/EASY/CBF cross-checks on >= 3 seeds
   (:mod:`repro.sanitize.oracle`);
3. **fuzz** — randomized small scenarios (:mod:`repro.sanitize.fuzz`),
   budget-bounded for CI via ``--quick`` / ``--fuzz N``.

Violations are rendered with the obs-layer trace context captured at
the offending event, so a red check pinpoints *what the simulation was
doing*, not just which invariant tripped.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional

from ..core.config import ExperimentConfig
from ..faults import FaultConfig
from ..obs.log import get_logger
from .auditor import Violation, run_single_audited
from .fuzz import DEFAULT_FUZZ_SEED, FuzzReport, run_fuzz
from .oracle import OracleReport, run_differential_oracle

_log = get_logger("sanitize.check")

#: fuzz budgets when ``--fuzz`` is not given
QUICK_FUZZ_CASES = 8
FULL_FUZZ_CASES = 25

#: the faults environment audited by the suite — the same shape as the
#: registry ``faults`` experiment's non-trivial cells (loss + delay +
#: queue-dropping outages)
SUITE_FAULTS = FaultConfig(
    p_cancel_loss=0.3,
    cancel_delay_mean=30.0,
    cancel_delay_distribution="exponential",
    outage_rate=2.0,
    outage_duration=300.0,
    outage_drop_queue=True,
    resubmit_policy="resubmit",
)


def suite_configs(quick: bool) -> list[ExperimentConfig]:
    """The audited configuration suite (a compressed registry cross-section)."""
    base = ExperimentConfig(
        n_clusters=3 if quick else 5,
        nodes_per_cluster=16 if quick else 32,
        duration=300.0 if quick else 900.0,
        offered_load=2.0,
        drain=True,
        seed=20060619,
    )
    schemes = ("NONE", "R2") if quick else ("NONE", "R2", "ALL")
    configs = [
        base.with_(algorithm=algorithm, scheme=scheme)
        for algorithm in ("fcfs", "easy", "cbf")
        for scheme in schemes
    ]
    # The faults experiment's environment, and the latency ablation.
    configs.append(base.with_(scheme="R2", faults=SUITE_FAULTS))
    configs.append(base.with_(scheme="R2", cancellation_latency=30.0))
    # The policy zoo: cancel-on-complete legalises duplicate starts, so
    # its waiver logic must hold with and without fault injection.
    configs.append(
        base.with_(scheme="R2", cancellation_policy="cancel-on-complete")
    )
    configs.append(
        base.with_(
            scheme="ALL",
            cancellation_policy="cancel-on-complete",
            faults=SUITE_FAULTS,
        )
    )
    if not quick:
        configs.append(
            base.with_(algorithm="cbf", scheme="ALL", faults=SUITE_FAULTS)
        )
        configs.append(base.with_(scheme="R2", heterogeneous=True))
        configs.append(
            base.with_(
                algorithm="cbf", scheme="R2", cbf_compress_interval=0.0
            )
        )
        configs.append(base.with_(scheme="R2", estimates="phi"))
        configs.append(
            base.with_(
                scheme="R3",
                cancellation_policy="cancel-on-complete",
                service_regime="bimodal",
                placement="balanced",
            )
        )
        configs.append(base.with_(scheme="R2", service_regime="bernoulli"))
    return configs


def config_from_spec(spec: str) -> ExperimentConfig:
    """Build a config from an inline JSON object or a JSON file path.

    Keys are :class:`~repro.core.config.ExperimentConfig` fields; a
    ``faults`` object is converted to a
    :class:`~repro.faults.FaultConfig`.  Unspecified fields take the
    audited suite's defaults (small drained platform, calibrated load).
    """
    text = spec.strip()
    if not text.startswith(("{", "[")):
        text = Path(spec).read_text()
    overrides = json.loads(text)
    if not isinstance(overrides, dict):
        raise ValueError(f"--config must be a JSON object, got {spec!r}")
    if isinstance(overrides.get("faults"), dict):
        overrides["faults"] = FaultConfig(**overrides["faults"])
    if isinstance(overrides.get("nodes_per_cluster"), list):
        overrides["nodes_per_cluster"] = tuple(overrides["nodes_per_cluster"])
    defaults = dict(
        n_clusters=3,
        nodes_per_cluster=16,
        duration=300.0,
        offered_load=2.0,
        drain=True,
        seed=20060619,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


@dataclass(frozen=True)
class SuiteFailure:
    """One audited-suite config that violated an invariant (or crashed)."""

    config: str
    error: Optional[str]
    violations: tuple = ()

    def describe(self) -> str:
        if self.error is not None:
            return f"{self.config}\n  crashed: {self.error}"
        lines = [self.config]
        lines.extend(
            "  " + v.describe().replace("\n", "\n  ") for v in self.violations
        )
        return "\n".join(lines)


@dataclass
class CheckReport:
    """Everything ``repro check`` found, ready to render or inspect."""

    quick: bool
    suite_size: int = 0
    suite_failures: list[SuiteFailure] = field(default_factory=list)
    oracle: Optional[OracleReport] = None
    fuzz: Optional[FuzzReport] = None
    #: individual auditor checks evaluated across every stage
    checks: int = 0

    @property
    def ok(self) -> bool:
        return (
            not self.suite_failures
            and (self.oracle is None or self.oracle.ok)
            and (self.fuzz is None or self.fuzz.ok)
        )

    def render(self) -> str:
        lines = [
            f"repro check ({'quick' if self.quick else 'full'}): "
            f"{self.checks} invariant checks"
        ]
        lines.append(
            f"audited suite: {self.suite_size} config(s), "
            f"{len(self.suite_failures)} failure(s)"
        )
        for failure in self.suite_failures:
            lines.append("  " + failure.describe().replace("\n", "\n  "))
        if self.oracle is not None:
            lines.append(self.oracle.render())
        if self.fuzz is not None:
            lines.append(self.fuzz.render())
        lines.append("PASS" if self.ok else "FAIL")
        return "\n".join(lines)


def run_check(
    quick: bool = False,
    fuzz_cases: Optional[int] = None,
    config_spec: Optional[str] = None,
    fuzz_seed: int = DEFAULT_FUZZ_SEED,
    progress: Optional[Callable[[str], None]] = None,
) -> CheckReport:
    """Run the sanitizer (suite + oracle + fuzz) and report.

    ``config_spec`` (inline JSON or a JSON file path) replaces the
    audited suite with that single configuration — the debugging entry
    point; the oracle and fuzz stages are skipped.  ``fuzz_cases=0``
    skips fuzzing.
    """
    note = progress if progress is not None else (lambda msg: _log.info("%s", msg))
    report = CheckReport(quick=quick)

    if config_spec is not None:
        configs = [config_from_spec(config_spec)]
    else:
        configs = suite_configs(quick)
    report.suite_size = len(configs)
    for cfg in configs:
        note(f"auditing: {cfg.describe()}")
        try:
            _, auditor = run_single_audited(cfg, mode="collect")
        # repro-lint: disable=EXC001 -- the audit harness records any
        # crash (including invariant errors) as a suite failure; the
        # report, not the exception, is the product here
        except Exception as exc:  # noqa: BLE001 - a crash is a finding
            report.suite_failures.append(
                SuiteFailure(config=cfg.describe(), error=repr(exc))
            )
            continue
        report.checks += auditor.checks
        if not auditor.ok:
            report.suite_failures.append(SuiteFailure(
                config=cfg.describe(),
                error=None,
                violations=tuple(auditor.violations),
            ))
    if config_spec is not None:
        return report

    oracle_base = ExperimentConfig(
        n_clusters=3,
        nodes_per_cluster=16,
        duration=300.0 if quick else 600.0,
        offered_load=1.5,
        drain=True,
    )
    report.oracle = run_differential_oracle(oracle_base, progress=progress)
    report.checks += report.oracle.checks

    if fuzz_cases is None:
        fuzz_cases = QUICK_FUZZ_CASES if quick else FULL_FUZZ_CASES
    if fuzz_cases > 0:
        report.fuzz = run_fuzz(
            fuzz_cases, master_seed=fuzz_seed, progress=progress
        )
        report.checks += report.fuzz.checks
    return report
