"""Differential scheduler oracle: cross-check FCFS, EASY and CBF.

The auditor (:mod:`repro.sanitize.auditor`) checks each scheduler
against its *own* rules; the oracle checks the three algorithms against
*each other*.  The same seeded workload (common random numbers — the
job stream depends only on ``(seed, replication, cluster)``, never on
the algorithm) is run under FCFS, EASY and CBF with no redundancy, and
these relations must hold:

``completed-set``
    With ``drain=True`` and no redundancy, every algorithm must
    complete exactly the same set of jobs (scheduling changes *when*
    jobs run, never *whether* they run).
``easy-wait-le-fcfs``
    EASY is FCFS plus backfilling into slots FCFS provably leaves idle
    (the head request is protected by its shadow reservation), so the
    average queue wait under EASY must not exceed FCFS's.
``cbf-prediction``
    CBF's at-submit reservation is a guaranteed *latest* start: no job
    may start after its predicted wait (backfilling and compression
    only move starts earlier).

Every run also executes with the invariant auditor armed, so a
violation of the per-scheduler rules surfaces here too (as
``auditor:<kind>`` findings).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..core.config import ExperimentConfig
from ..core.results import ExperimentResult
from .auditor import run_single_audited

#: master seeds the oracle sweeps by default (>= 3 independent workloads)
DEFAULT_ORACLE_SEEDS = (20060619, 777, 424242)

#: the algorithms under differential test, in comparison order
ORACLE_ALGORITHMS = ("fcfs", "easy", "cbf")

#: relative + absolute slack for cross-algorithm float comparisons
_REL_EPS = 1e-9
_ABS_EPS = 1e-6


@dataclass(frozen=True)
class OracleFinding:
    """One violated cross-scheduler relation (or forwarded audit hit)."""

    seed: int
    relation: str
    message: str

    def describe(self) -> str:
        return f"[{self.relation}] seed={self.seed}: {self.message}"


@dataclass
class OracleReport:
    """Outcome of one differential-oracle sweep."""

    seeds: tuple
    findings: list[OracleFinding] = field(default_factory=list)
    #: per-(seed, algorithm) summary rows: (seed, algorithm, jobs, avg_wait)
    runs: list[tuple] = field(default_factory=list)
    #: individual auditor checks evaluated across all runs
    checks: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def render(self) -> str:
        lines = [
            f"differential oracle: {len(self.seeds)} seed(s) x "
            f"{len(ORACLE_ALGORITHMS)} algorithms, "
            f"{self.checks} auditor checks"
        ]
        for seed, algorithm, jobs, avg_wait in self.runs:
            lines.append(
                f"  seed={seed:<10} {algorithm:<5} jobs={jobs:<5} "
                f"avg_wait={avg_wait:.1f}s"
            )
        if self.ok:
            lines.append("  all cross-scheduler relations hold")
        else:
            lines.append(f"  {len(self.findings)} violation(s):")
            lines.extend(f"  {f.describe()}" for f in self.findings)
        return "\n".join(lines)


def _avg_wait(result: ExperimentResult) -> float:
    waits = [j.start_time - j.submit_time for j in result.jobs]
    return sum(waits) / len(waits) if waits else 0.0


def run_differential_oracle(
    base_config: Optional[ExperimentConfig] = None,
    seeds: Sequence[int] = DEFAULT_ORACLE_SEEDS,
    progress: Optional[Callable[[str], None]] = None,
) -> OracleReport:
    """Run the oracle over ``seeds`` and return what (if anything) broke.

    ``base_config`` supplies the platform/workload shape; the oracle
    forces the relations' preconditions (``scheme="NONE"``,
    ``drain=True``, no faults, zero cancellation latency) and sweeps
    ``algorithm`` itself.
    """
    if base_config is None:
        base_config = ExperimentConfig(
            n_clusters=3,
            nodes_per_cluster=16,
            duration=600.0,
            offered_load=1.5,
            drain=True,
        )
    base_config = base_config.with_(
        scheme="NONE", drain=True, faults=None, cancellation_latency=0.0
    )
    report = OracleReport(seeds=tuple(seeds))
    for seed in seeds:
        results: dict[str, ExperimentResult] = {}
        for algorithm in ORACLE_ALGORITHMS:
            cfg = base_config.with_(seed=seed, algorithm=algorithm)
            if progress is not None:
                progress(f"oracle: seed={seed} algorithm={algorithm}")
            result, auditor = run_single_audited(cfg, mode="collect")
            report.checks += auditor.checks
            for v in auditor.violations:
                report.findings.append(
                    OracleFinding(seed, f"auditor:{v.kind}", v.describe())
                )
            results[algorithm] = result
            report.runs.append(
                (seed, algorithm, len(result.jobs), _avg_wait(result))
            )

        # completed-set: same jobs complete under every algorithm.
        reference = {j.job_id for j in results["fcfs"].jobs}
        for algorithm in ORACLE_ALGORITHMS[1:]:
            completed = {j.job_id for j in results[algorithm].jobs}
            if completed != reference:
                only_ref = sorted(reference - completed)[:5]
                only_alg = sorted(completed - reference)[:5]
                report.findings.append(OracleFinding(
                    seed,
                    "completed-set",
                    f"fcfs and {algorithm} completed different job sets "
                    f"(fcfs-only: {only_ref}, {algorithm}-only: {only_alg})",
                ))

        # easy-wait-le-fcfs: backfilling must not hurt the average wait.
        fcfs_wait = _avg_wait(results["fcfs"])
        easy_wait = _avg_wait(results["easy"])
        if easy_wait > fcfs_wait * (1 + _REL_EPS) + _ABS_EPS:
            report.findings.append(OracleFinding(
                seed,
                "easy-wait-le-fcfs",
                f"EASY average wait {easy_wait:.3f}s exceeds FCFS's "
                f"{fcfs_wait:.3f}s",
            ))

        # cbf-prediction: no start later than the at-submit guarantee.
        for job in results["cbf"].jobs:
            if job.predicted_wait_local is None:
                continue
            actual_wait = job.start_time - job.submit_time
            if actual_wait > job.predicted_wait_local + _ABS_EPS:
                report.findings.append(OracleFinding(
                    seed,
                    "cbf-prediction",
                    f"job {job.job_id} waited {actual_wait:.3f}s, past its "
                    f"predicted {job.predicted_wait_local:.3f}s",
                ))
    return report
