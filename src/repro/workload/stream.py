"""Per-cluster job streams with common-random-number discipline.

Each cluster receives its own stream of jobs (Section 3.1.1).  For the
paired comparisons the paper makes ("relative to the scheme using no
redundant requests", averaged over 50 experiments on the *same* job
streams), stream content must depend only on (replication, cluster) —
never on the redundancy scheme under test.  This module owns that
discipline: the workload stream, the estimate stream and the
redundancy-adoption stream are all keyed independently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..sim.rng import RngFactory
from .estimates import EstimateModel, ExactEstimates
from .lublin import LublinGenerator, LublinParams
from .regimes import RegimeGenerator, ServiceRegime


@dataclass(frozen=True)
class StreamJob:
    """A fully specified job, ready for submission.

    Attributes
    ----------
    origin:
        Index of the cluster where the user submits (their "local"
        cluster; one request always goes here).
    arrival:
        Absolute submission time in seconds.
    nodes, runtime:
        Size and actual execution time.
    requested_time:
        The user's estimate (>= runtime).
    uses_redundancy:
        Whether this job's user employs redundant requests (drawn
        per-job with the experiment's adoption probability ``p``;
        Figure 4 sweeps ``p``).
    """

    origin: int
    arrival: float
    nodes: int
    runtime: float
    requested_time: float
    uses_redundancy: bool


def generate_cluster_stream(
    rng_factory: RngFactory,
    replication: int,
    cluster_index: int,
    max_nodes: int,
    duration: float,
    params: Optional[LublinParams] = None,
    estimate_model: Optional[EstimateModel] = None,
    adoption_probability: float = 1.0,
    regime: Optional[ServiceRegime] = None,
) -> list[StreamJob]:
    """Generate the job stream arriving at one cluster.

    Three independent random streams are used so that changing the
    estimate model or the adoption probability never perturbs the
    workload itself (arrival times, sizes, runtimes).  An optional
    service ``regime`` (:mod:`repro.workload.regimes`) swaps the
    runtime marginal while keeping Lublin arrivals and node counts.
    """
    if not 0.0 <= adoption_probability <= 1.0:
        raise ValueError(f"adoption probability must be in [0,1], got "
                         f"{adoption_probability}")
    params = params or LublinParams()
    estimate_model = estimate_model or ExactEstimates()
    work_rng = rng_factory.generator("rep", replication, "cluster", cluster_index,
                                     "workload")
    est_rng = rng_factory.generator("rep", replication, "cluster", cluster_index,
                                    "estimates")
    adopt_rng = rng_factory.generator("rep", replication, "cluster", cluster_index,
                                      "adoption")
    if regime is not None:
        gen: LublinGenerator = RegimeGenerator(params, max_nodes, work_rng, regime)
    else:
        gen = LublinGenerator(params, max_nodes, work_rng)
    jobs: list[StreamJob] = []
    for raw in gen.jobs_until(duration):
        requested = estimate_model.requested_time(raw.runtime, est_rng)
        uses = bool(adopt_rng.random() < adoption_probability)
        jobs.append(
            StreamJob(
                origin=cluster_index,
                arrival=raw.arrival,
                nodes=raw.nodes,
                runtime=raw.runtime,
                requested_time=requested,
                uses_redundancy=uses,
            )
        )
    return jobs


def generate_platform_streams(
    rng_factory: RngFactory,
    replication: int,
    node_counts: Sequence[int],
    duration: float,
    params_per_cluster: Optional[Sequence[LublinParams]] = None,
    estimate_model: Optional[EstimateModel] = None,
    adoption_probability: float = 1.0,
    regime: Optional[ServiceRegime] = None,
) -> list[list[StreamJob]]:
    """Generate one stream per cluster.

    ``params_per_cluster`` allows the heterogeneous setup of Table 3
    (different arrival rates at different sites); by default every
    cluster uses the same parameters, i.e. statistically identical
    streams (the paper's homogeneous setup).
    """
    if params_per_cluster is not None and len(params_per_cluster) != len(node_counts):
        raise ValueError(
            f"{len(params_per_cluster)} parameter sets for {len(node_counts)} clusters"
        )
    streams = []
    for i, max_nodes in enumerate(node_counts):
        params = params_per_cluster[i] if params_per_cluster is not None else None
        streams.append(
            generate_cluster_stream(
                rng_factory,
                replication,
                i,
                max_nodes,
                duration,
                params=params,
                estimate_model=estimate_model,
                adoption_probability=adoption_probability,
                regime=regime,
            )
        )
    return streams


def merge_streams(streams: Sequence[Sequence[StreamJob]]) -> list[StreamJob]:
    """All jobs across clusters in global arrival order.

    Ties (identical arrivals at different clusters) are broken by origin
    index for determinism.
    """
    merged = [job for stream in streams for job in stream]
    merged.sort(key=lambda j: (j.arrival, j.origin))
    return merged
