"""Standard Workload Format (SWF) support.

The paper cross-checked its model-based results against traces from the
Parallel Workloads Archive and "expectedly, did not observe
significantly different results".  This module lets a user with real
traces repeat that cross-check: it parses and writes the archive's SWF
format and converts records to the simulator's job streams.

SWF is a whitespace-separated text format with 18 fields per job and
``;`` header/comment lines; the fields used here are:

====  =======================  ==================================
 #    field                    use
====  =======================  ==================================
 1    job number               identity
 2    submit time (s)          arrival
 4    run time (s)             actual runtime
 5    number of allocated      nodes (falls back to field 8,
      processors               requested processors)
 9    requested time (s)       requested_time (falls back to
                               run time when missing)
====  =======================  ==================================

Missing values are encoded as ``-1`` throughout SWF.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Optional, Union

from .stream import StreamJob

PathLike = Union[str, Path]


class SWFError(ValueError):
    """Raised for malformed SWF content."""


@dataclass(frozen=True)
class SWFRecord:
    """One SWF job line (fields not used by the simulator are kept raw)."""

    job_id: int
    submit_time: float
    wait_time: float
    run_time: float
    allocated_procs: int
    requested_procs: int
    requested_time: float
    status: int

    @property
    def nodes(self) -> int:
        """Processor count, preferring the allocation over the request."""
        if self.allocated_procs > 0:
            return self.allocated_procs
        if self.requested_procs > 0:
            return self.requested_procs
        raise SWFError(f"job {self.job_id}: no processor count")

    @property
    def effective_requested_time(self) -> float:
        """Requested time, never below the actual runtime."""
        if self.requested_time > 0:
            return max(self.requested_time, self.run_time)
        return self.run_time


def parse_swf_line(line: str) -> SWFRecord:
    """Parse one non-comment SWF line."""
    fields = line.split()
    if len(fields) < 18:
        raise SWFError(f"SWF line has {len(fields)} fields, expected 18: {line!r}")
    try:
        return SWFRecord(
            job_id=int(fields[0]),
            submit_time=float(fields[1]),
            wait_time=float(fields[2]),
            run_time=float(fields[3]),
            allocated_procs=int(fields[4]),
            requested_procs=int(fields[7]),
            requested_time=float(fields[8]),
            status=int(fields[10]),
        )
    except ValueError as exc:
        raise SWFError(f"unparseable SWF line {line!r}: {exc}") from exc


def read_swf(path: PathLike) -> Iterator[SWFRecord]:
    """Yield records from an SWF file, skipping comments and blanks."""
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line or line.startswith(";"):
                continue
            yield parse_swf_line(line)


def write_swf(
    path: PathLike,
    records: Iterable[SWFRecord],
    header_comments: Optional[list[str]] = None,
) -> int:
    """Write records in SWF; returns the number of jobs written."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for comment in header_comments or []:
            fh.write(f"; {comment}\n")
        for r in records:
            fields = [
                r.job_id, int(r.submit_time), int(r.wait_time), int(r.run_time),
                r.allocated_procs, -1, -1, r.requested_procs,
                int(r.requested_time), -1, r.status,
                -1, -1, -1, -1, -1, -1, -1,
            ]
            fh.write(" ".join(str(f) for f in fields) + "\n")
            count += 1
    return count


def records_to_stream(
    records: Iterable[SWFRecord],
    origin: int = 0,
    max_nodes: Optional[int] = None,
    adoption_probability: float = 1.0,
    rng=None,
) -> list[StreamJob]:
    """Convert SWF records into a simulator job stream for one cluster.

    Jobs with non-positive runtimes (failed or cancelled submissions in
    the trace) are skipped, matching common replay practice.  Jobs wider
    than ``max_nodes`` are clamped so the trace remains runnable on the
    chosen cluster.
    """
    jobs: list[StreamJob] = []
    for r in records:
        if r.run_time <= 0:
            continue
        nodes = r.nodes
        if max_nodes is not None:
            nodes = min(nodes, max_nodes)
        if adoption_probability >= 1.0:
            uses = True
        elif adoption_probability <= 0.0 or rng is None:
            uses = False
        else:
            uses = bool(rng.random() < adoption_probability)
        jobs.append(
            StreamJob(
                origin=origin,
                arrival=r.submit_time,
                nodes=nodes,
                runtime=r.run_time,
                requested_time=r.effective_requested_time,
                uses_redundancy=uses,
            )
        )
    jobs.sort(key=lambda j: j.arrival)
    return jobs


def stream_to_records(jobs: Iterable[StreamJob], start_id: int = 1) -> list[SWFRecord]:
    """Convert a generated stream to SWF records (for export)."""
    records = []
    for i, j in enumerate(jobs, start=start_id):
        records.append(
            SWFRecord(
                job_id=i,
                submit_time=j.arrival,
                wait_time=-1,
                run_time=j.runtime,
                allocated_procs=j.nodes,
                requested_procs=j.nodes,
                requested_time=j.requested_time,
                status=1,
            )
        )
    return records
