"""The Lublin–Feitelson rigid-job workload model (JPDC 2003).

The paper generates all synthetic workloads from this model
(Section 3.1.1): Gamma inter-arrival times ("peak hour" regime),
two-stage log-uniform node counts biased towards powers of two, and
hyper-Gamma runtimes whose short-job mixture probability ``p`` depends
linearly on the node count (larger jobs run longer).

Parameter provenance: the inter-arrival parameters (α = 10.23, β = 0.49,
mean 5.01 s) are printed in the paper itself.  The node-count and
runtime constants below follow the published ``lublin99`` reference
implementation's batch-job parameter set; the runtime mixture samples
log-space values that are exponentiated, giving the short-jobs-around-a-
minute / long-jobs-around-hours shape of the original model.  All
constants are dataclass fields, so any calibration can be swapped in.

Note the model is deliberately *overloading* in the peak-hour regime:
one job every ~5 s outstrips any of the simulated clusters, so queues
grow (the paper measures ≈700 requests/hour, Section 4.1, independent of
cluster size) — the interesting dynamics of redundant requests all play
out in this growing-queue regime.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Iterator, Optional

import numpy as np

from .distributions import HyperGamma, gamma_interarrival, log_uniform_nodes

#: the paper's peak-hour inter-arrival Gamma parameters
PEAK_ALPHA = 10.23
PEAK_BETA = 0.49


@dataclass(frozen=True)
class LublinParams:
    """All knobs of the Lublin–Feitelson model.

    Attributes
    ----------
    arrival_alpha, arrival_beta:
        Gamma(shape, scale) inter-arrival parameters in seconds.
        Figure 3 varies ``arrival_alpha`` over [4, 20] (≈2–10 s means).
    serial_prob:
        Probability a job is serial (1 node).
    pow2_prob:
        Probability a parallel job's size is rounded to a power of two.
    ulow, umed, uprob:
        Two-stage uniform parameters in log₂(nodes) space; the upper
        bound is ``log₂(max_nodes)`` of the target cluster.
    runtime_hg:
        Hyper-Gamma over log-runtime; samples are exponentiated.
    p_a, p_b:
        Mixture weight of the short-runtime component:
        ``p = p_a * nodes + p_b`` (clamped to [0, 1]); ``p_a < 0`` makes
        bigger jobs longer.
    min_runtime, max_runtime:
        Clamp bounds for sampled runtimes, in seconds.  The cap plays
        the role of the queue limits real sites impose.
    runtime_scale:
        Multiplier applied to sampled runtimes before clamping.  This is
        the *load calibration knob* (see DESIGN.md): the paper pairs the
        Lublin job-size model with a 5 s inter-arrival time, which with
        authentic job sizes oversubscribes a 128-node cluster ~100× —
        a regime in which every queue is always saturated and the
        load-balancing benefit the paper reports cannot arise.  Scaling
        runtimes down (or arrivals apart) tunes the offered load ρ;
        :func:`scaled_for_load` computes the scale for a target ρ.
    """

    arrival_alpha: float = PEAK_ALPHA
    arrival_beta: float = PEAK_BETA
    serial_prob: float = 0.244
    pow2_prob: float = 0.576
    ulow: float = 0.8
    umed: float = 4.5
    uprob: float = 0.86
    runtime_hg: HyperGamma = field(
        default_factory=lambda: HyperGamma(a1=4.2, b1=0.94, a2=312.0, b2=0.03)
    )
    p_a: float = -0.0054
    p_b: float = 0.78
    min_runtime: float = 1.0
    max_runtime: float = 60.0 * 3600.0
    runtime_scale: float = 1.0

    @property
    def mean_interarrival(self) -> float:
        """Mean inter-arrival time α·β in seconds (5.01 s at defaults)."""
        return self.arrival_alpha * self.arrival_beta

    def with_mean_interarrival(self, mean: float) -> "LublinParams":
        """Scale ``arrival_alpha`` to hit a target mean (β fixed).

        This mirrors the paper's Figure 3 protocol, which varies α with
        β = 0.49 fixed.
        """
        if mean <= 0:
            raise ValueError(f"mean inter-arrival must be positive, got {mean}")
        return replace(self, arrival_alpha=mean / self.arrival_beta)


@dataclass(frozen=True)
class GeneratedJob:
    """One sampled job: arrival offset, size and actual runtime.

    ``requested_time`` is attached later by an estimate model
    (:mod:`repro.workload.estimates`).
    """

    arrival: float
    nodes: int
    runtime: float


class LublinGenerator:
    """Stream of :class:`GeneratedJob` for one cluster.

    Parameters
    ----------
    params:
        Model parameters.
    max_nodes:
        Size of the target cluster; jobs never request more than this
        (the paper's heterogeneity rule, Section 3.3).
    rng:
        Private random stream for this generator.
    """

    def __init__(
        self,
        params: LublinParams,
        max_nodes: int,
        rng: np.random.Generator,
    ) -> None:
        if max_nodes < 1:
            raise ValueError(f"max_nodes must be >= 1, got {max_nodes}")
        self.params = params
        self.max_nodes = int(max_nodes)
        self.rng = rng

    def sample_nodes(self) -> int:
        """Draw one node count in ``[1, max_nodes]``."""
        p = self.params
        return log_uniform_nodes(
            self.rng,
            self.max_nodes,
            serial_prob=p.serial_prob,
            pow2_prob=p.pow2_prob,
            ulow=p.ulow,
            umed=p.umed,
            uprob=p.uprob,
        )

    def sample_runtime(self, nodes: int) -> float:
        """Draw one actual runtime (seconds) for a ``nodes``-node job."""
        p = self.params
        weight = p.p_a * nodes + p.p_b
        log_rt = p.runtime_hg.sample(self.rng, weight)
        runtime = p.runtime_scale * math.exp(min(log_rt, 700.0))
        return float(min(max(runtime, p.min_runtime), p.max_runtime))

    def sample_interarrival(self) -> float:
        """Draw one inter-arrival gap (seconds)."""
        p = self.params
        return gamma_interarrival(self.rng, p.arrival_alpha, p.arrival_beta)

    def jobs_until(self, horizon: float, start: float = 0.0) -> Iterator[GeneratedJob]:
        """Yield jobs with arrival times in ``(start, horizon]``.

        The first arrival is offset by one inter-arrival gap from
        ``start``, so independently seeded clusters are not phase-locked.
        """
        t = start
        while True:
            t += self.sample_interarrival()
            if t > horizon:
                return
            nodes = self.sample_nodes()
            runtime = self.sample_runtime(nodes)
            yield GeneratedJob(arrival=t, nodes=nodes, runtime=runtime)

    def generate(self, horizon: float, start: float = 0.0) -> list[GeneratedJob]:
        """Materialise :meth:`jobs_until` as a list."""
        return list(self.jobs_until(horizon, start))


def empirical_mean_area(
    params: Optional[LublinParams] = None,
    max_nodes: int = 128,
    n: int = 20_000,
    seed: int = 0,
) -> float:
    """Monte-Carlo estimate of the mean job area (node·seconds)."""
    params = params or LublinParams()
    # repro-lint: disable=DET001,PURE001 -- pinned calibration stream:
    # seeded from the explicit ``seed`` argument (default 0), so the fit
    # is a pure function of its inputs; the runtime_scale it produces is
    # baked into every experiment and the golden traces and rekeying it
    # would shift all expectations
    gen = LublinGenerator(params, max_nodes, np.random.default_rng(seed))
    total = 0.0
    for _ in range(n):
        nodes = gen.sample_nodes()
        total += nodes * gen.sample_runtime(nodes)
    return total / n


def offered_load(
    params: LublinParams, max_nodes: int, n: int = 20_000, seed: int = 0
) -> float:
    """Offered load ρ = mean area / (mean inter-arrival × nodes).

    ρ < 1 means the cluster can keep up on average; ρ > 1 means the
    queue grows without bound at rate ≈ (1 − 1/ρ) × arrival rate.
    """
    area = empirical_mean_area(params, max_nodes, n=n, seed=seed)
    return area / (params.mean_interarrival * max_nodes)


def scaled_for_load(
    rho: float,
    max_nodes: int = 128,
    params: Optional[LublinParams] = None,
    n: int = 20_000,
    seed: int = 0,
) -> LublinParams:
    """Return params whose ``runtime_scale`` hits offered load ``rho``.

    This is the calibration entry point for the paper's Section 3
    experiments (see DESIGN.md §"load calibration"): job sizes, runtime
    *shape* and arrival process stay authentic Lublin; only the runtime
    scale is adjusted so the per-cluster offered load matches ``rho``.
    The clamping floor slightly perturbs the result, so the scale is
    refined with one fixed-point iteration.
    """
    if rho <= 0:
        raise ValueError(f"rho must be positive, got {rho}")
    params = params or LublinParams()
    base = replace(params, runtime_scale=1.0, min_runtime=0.0)
    area = empirical_mean_area(base, max_nodes, n=n, seed=seed)
    scale = rho * params.mean_interarrival * max_nodes / area
    candidate = replace(params, runtime_scale=scale)
    achieved = offered_load(candidate, max_nodes, n=n, seed=seed)
    if achieved > 0:
        scale *= rho / achieved
    return replace(params, runtime_scale=scale)


def empirical_mean_runtime(
    params: Optional[LublinParams] = None,
    max_nodes: int = 128,
    n: int = 20_000,
    seed: int = 0,
) -> float:
    """Monte-Carlo estimate of the model's mean runtime (calibration aid)."""
    params = params or LublinParams()
    # repro-lint: disable=DET001 -- pinned calibration stream, as above
    gen = LublinGenerator(params, max_nodes, np.random.default_rng(seed))
    total = 0.0
    for _ in range(n):
        total += gen.sample_runtime(gen.sample_nodes())
    return total / n
