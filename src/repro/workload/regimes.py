"""Service-time regimes beyond Lublin–Feitelson.

The harmfulness verdict on redundant requests is not universal: the
modern redundancy-d literature shows it flips with the *service-time
regime*.  Raaijmakers, Borst & Boxma study **scaled Bernoulli** service
requirements (almost all jobs tiny, a rare factor-``f`` giant) where
redundancy with cancel-on-start is provably helpful for any degree;
Behrouzi-Far & Soljanin and Anton et al.'s stability survey use
**bi-modal** runtimes to locate the helpful/harmful crossover.  This
module adds both regimes alongside the paper's Lublin model so the
phase-diagram experiment (:mod:`repro.policies.phase`) can actually
reach the crossover.

A regime replaces only the *runtime* marginal: arrival times, node
counts and estimate/adoption draws keep their Lublin machinery and
their keyed RNG streams.  The common-random-numbers discipline that
matters for paired comparisons — every scheme/policy/degree under test
sees the *same* job streams as its NONE baseline — is preserved
because streams are keyed on (replication, cluster) only, never on the
scheme or policy (:mod:`repro.workload.stream`).  Runtimes are sampled
independently of the node count, which makes the offered load analytic:

    rho = E[nodes] * E[runtime] / (mean_interarrival * max_nodes)

so calibration needs one Monte-Carlo estimate of ``E[nodes]`` (memoised,
pinned stream) and no fixed-point iteration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from functools import lru_cache
from typing import Optional, Union

import numpy as np

from .lublin import LublinGenerator, LublinParams

#: accepted ``ExperimentConfig.service_regime`` values; "lublin" means
#: the paper's model (no regime object, the null behaviour)
REGIME_NAMES = ("lublin", "bernoulli", "bimodal")


@dataclass(frozen=True)
class ScaledBernoulliRegime:
    """Scaled-Bernoulli runtimes: rare giants among tiny jobs.

    ``runtime = scale * short * (factor with prob. p_large, else 1)``.
    With the defaults, 98 % of jobs take a minute and 2 % take 100
    minutes — the heavy-tailed two-point law of Raaijmakers et al.,
    where a redundant copy's chance to dodge a giant-clogged queue is
    what makes redundancy pay.
    """

    short: float = 60.0
    factor: float = 100.0
    p_large: float = 0.02
    scale: float = 1.0

    def __post_init__(self) -> None:
        if self.short <= 0 or self.factor <= 0 or self.scale <= 0:
            raise ValueError("short, factor and scale must be positive")
        if not 0.0 <= self.p_large <= 1.0:
            raise ValueError(f"p_large must be in [0,1], got {self.p_large}")

    def sample(self, rng: np.random.Generator, nodes: int) -> float:
        # ``nodes`` is accepted for signature uniformity with Lublin's
        # node-dependent runtimes but deliberately unused: the two-point
        # law is independent of job size.
        base = self.scale * self.short
        if rng.random() < self.p_large:
            return base * self.factor
        return base

    def mean_runtime(self) -> float:
        """Analytic mean (no Monte-Carlo needed for calibration)."""
        return self.scale * self.short * (1.0 + self.p_large * (self.factor - 1.0))

    def with_scale(self, scale: float) -> "ScaledBernoulliRegime":
        return replace(self, scale=scale)


@dataclass(frozen=True)
class BimodalRegime:
    """Bi-modal runtimes: a short mode and a long mode, nothing between.

    ``runtime = scale * (r_long with prob. p_long, else r_short)``.  The
    defaults (1 min / 1 h, 10 % long) put substantial mass on both
    modes, the shape Behrouzi-Far & Soljanin use to exhibit the
    redundancy crossover as load varies.
    """

    r_short: float = 60.0
    r_long: float = 3600.0
    p_long: float = 0.1
    scale: float = 1.0

    def __post_init__(self) -> None:
        if self.r_short <= 0 or self.r_long <= 0 or self.scale <= 0:
            raise ValueError("r_short, r_long and scale must be positive")
        if not 0.0 <= self.p_long <= 1.0:
            raise ValueError(f"p_long must be in [0,1], got {self.p_long}")

    def sample(self, rng: np.random.Generator, nodes: int) -> float:
        if rng.random() < self.p_long:
            return self.scale * self.r_long
        return self.scale * self.r_short

    def mean_runtime(self) -> float:
        return self.scale * (
            self.p_long * self.r_long + (1.0 - self.p_long) * self.r_short
        )

    def with_scale(self, scale: float) -> "BimodalRegime":
        return replace(self, scale=scale)


ServiceRegime = Union[ScaledBernoulliRegime, BimodalRegime]


def make_service_regime(name: str) -> Optional[ServiceRegime]:
    """Resolve a config-facing regime name; ``"lublin"`` maps to ``None``."""
    key = name.lower()
    if key == "lublin":
        return None
    if key == "bernoulli":
        return ScaledBernoulliRegime()
    if key == "bimodal":
        return BimodalRegime()
    raise ValueError(
        f"unknown service regime {name!r}; choose from {REGIME_NAMES}"
    )


class RegimeGenerator(LublinGenerator):
    """Lublin arrivals and node counts with regime-drawn runtimes.

    Only :meth:`sample_runtime` is overridden; it draws from the same
    keyed workload stream the Lublin runtime sampler would use, so the
    generator remains a pure function of (replication, cluster, params,
    regime) — deterministic and scheme/policy-independent.
    """

    def __init__(
        self,
        params: LublinParams,
        max_nodes: int,
        rng: np.random.Generator,
        regime: ServiceRegime,
    ) -> None:
        super().__init__(params, max_nodes, rng)
        self.regime = regime

    def sample_runtime(self, nodes: int) -> float:
        return self.regime.sample(self.rng, nodes)


@lru_cache(maxsize=32)
def empirical_mean_nodes(params: LublinParams, max_nodes: int,
                         n: int = 20_000, seed: int = 0) -> float:
    """Monte-Carlo estimate of the Lublin mean node count (calibration)."""
    # repro-lint: disable=DET001,PURE001 -- pinned calibration stream:
    # the generator is seeded from the explicit ``seed`` argument (default
    # 0), so this is a pure function of its inputs; the regime scale it
    # produces is baked into every phase-diagram experiment and rekeying
    # it would shift all calibrated loads
    gen = LublinGenerator(params, max_nodes, np.random.default_rng(seed))
    return sum(gen.sample_nodes() for _ in range(n)) / n


def regime_scaled_for_load(
    regime: ServiceRegime,
    rho: float,
    max_nodes: int,
    params: Optional[LublinParams] = None,
) -> ServiceRegime:
    """Return the regime rescaled so the per-cluster offered load is ``rho``.

    Unlike Lublin calibration (where nodes and runtime are dependent and
    the clamp floor perturbs the fit), the regimes draw runtimes
    independently of job size, so the load factorises and the scale is
    exact given ``E[nodes]``.
    """
    if rho <= 0:
        raise ValueError(f"rho must be positive, got {rho}")
    params = params or LublinParams()
    mean_nodes = empirical_mean_nodes(params, max_nodes)
    base = regime.with_scale(1.0)
    target_mean_runtime = rho * params.mean_interarrival * max_nodes / mean_nodes
    scale = target_mean_runtime / base.mean_runtime()
    if not math.isfinite(scale) or scale <= 0:  # pragma: no cover - defensive
        raise ValueError(f"degenerate calibration scale {scale}")
    return base.with_scale(scale)
