"""Workload models: Lublin–Feitelson generator, runtime estimates, SWF traces."""

from .distributions import HyperGamma, gamma_interarrival, log_uniform_nodes, two_stage_uniform
from .estimates import (
    ESTIMATE_MODELS,
    EstimateModel,
    ExactEstimates,
    InflatedEstimates,
    PhiModelEstimates,
    PHI_MODEL_MEAN_FACTOR,
    make_estimate_model,
)
from .lublin import (
    PEAK_ALPHA,
    PEAK_BETA,
    GeneratedJob,
    LublinGenerator,
    LublinParams,
    empirical_mean_runtime,
)
from .stream import (
    StreamJob,
    generate_cluster_stream,
    generate_platform_streams,
    merge_streams,
)
from .dailycycle import (
    DailyCycle,
    DailyCycleGenerator,
    hourly_arrival_counts,
)
from .swf import (
    SWFError,
    SWFRecord,
    parse_swf_line,
    read_swf,
    records_to_stream,
    stream_to_records,
    write_swf,
)

__all__ = [
    "HyperGamma",
    "gamma_interarrival",
    "log_uniform_nodes",
    "two_stage_uniform",
    "EstimateModel",
    "ExactEstimates",
    "PhiModelEstimates",
    "InflatedEstimates",
    "ESTIMATE_MODELS",
    "PHI_MODEL_MEAN_FACTOR",
    "make_estimate_model",
    "LublinParams",
    "LublinGenerator",
    "GeneratedJob",
    "PEAK_ALPHA",
    "PEAK_BETA",
    "empirical_mean_runtime",
    "StreamJob",
    "generate_cluster_stream",
    "generate_platform_streams",
    "merge_streams",
    "SWFRecord",
    "SWFError",
    "parse_swf_line",
    "read_swf",
    "write_swf",
    "records_to_stream",
    "stream_to_records",
    "DailyCycle",
    "DailyCycleGenerator",
    "hourly_arrival_counts",
]
