"""Daily-cycle arrival modulation (the full Lublin–Feitelson model).

The paper deliberately runs the *constant peak-hour* arrival process
for its whole window (Section 3.1.1), which permanently oversubscribes
the clusters.  The original Lublin model, however, modulates the
arrival rate over the day — nights and early mornings are quiet, and
the queue built during peak hours drains.  This module provides that
modulation so the repository can also study the steady-state regime in
which the paper's Section 4.1 claim about queue sizes ("redundant
requests are cancelled upon the start of job execution ... does not
cause significantly more requests to be in the system") actually lives.

The rate profile is a smooth two-bump weekday shape (mid-morning and
early-afternoon peaks, deep night trough) normalised to a chosen daily
mean, sampled through a thinned renewal process.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from .lublin import GeneratedJob, LublinGenerator, LublinParams

SECONDS_PER_DAY = 24 * 3600.0


@dataclass(frozen=True)
class DailyCycle:
    """Arrival-rate multiplier as a function of time-of-day.

    The profile is ``base + a1·bump(morning) + a2·bump(afternoon)``
    with Gaussian bumps, normalised so its daily mean is 1 — i.e. it
    redistributes a day's arrivals without changing their count.

    Attributes
    ----------
    trough:
        Night-time multiplier before normalisation (relative units).
    morning_peak_hour, afternoon_peak_hour:
        Centres of the two activity bumps (hours, 0-24).
    peak_width_hours:
        Standard deviation of each bump.
    peak_height:
        Height of each bump over the trough (relative units).
    """

    trough: float = 0.35
    morning_peak_hour: float = 10.5
    afternoon_peak_hour: float = 14.5
    peak_width_hours: float = 2.2
    peak_height: float = 1.0

    def __post_init__(self) -> None:
        if self.trough <= 0:
            raise ValueError(f"trough must be positive, got {self.trough}")
        if self.peak_width_hours <= 0:
            raise ValueError("peak width must be positive")

    def _raw(self, hour: float) -> float:
        def bump(center: float) -> float:
            # Wrap around midnight so 23:00 feels close to 01:00.
            d = min(abs(hour - center), 24.0 - abs(hour - center))
            return math.exp(-0.5 * (d / self.peak_width_hours) ** 2)

        return self.trough + self.peak_height * (
            bump(self.morning_peak_hour) + bump(self.afternoon_peak_hour)
        )

    def _daily_mean(self) -> float:
        hours = np.linspace(0.0, 24.0, 480, endpoint=False)
        return float(np.mean([self._raw(h) for h in hours]))

    def multiplier(self, t: float) -> float:
        """Rate multiplier at absolute simulation time ``t`` (seconds)."""
        hour = (t % SECONDS_PER_DAY) / 3600.0
        return self._raw(hour) / self._daily_mean()

    def peak_multiplier(self) -> float:
        """The largest multiplier over the day."""
        hours = np.linspace(0.0, 24.0, 480, endpoint=False)
        return max(self._raw(h) for h in hours) / self._daily_mean()


class DailyCycleGenerator:
    """Lublin job stream whose arrival rate follows a daily cycle.

    Arrivals are produced by thinning: candidate arrivals are drawn at
    the *peak* rate from the underlying Gamma renewal process and kept
    with probability ``multiplier(t) / peak_multiplier``, preserving the
    Gamma-ness of gaps within any (locally constant-rate) hour while
    matching the daily profile in expectation.

    Parameters
    ----------
    params:
        Lublin parameters; ``params.mean_interarrival`` is the *daily
        mean* inter-arrival time.
    """

    def __init__(
        self,
        params: LublinParams,
        max_nodes: int,
        rng: np.random.Generator,
        cycle: Optional[DailyCycle] = None,
    ) -> None:
        self.cycle = cycle or DailyCycle()
        self.peak = self.cycle.peak_multiplier()
        peak_params = params.with_mean_interarrival(
            params.mean_interarrival / self.peak
        )
        self._gen = LublinGenerator(peak_params, max_nodes, rng)
        self.rng = rng

    def jobs_until(self, horizon: float, start: float = 0.0) -> Iterator[GeneratedJob]:
        t = start
        while True:
            t += self._gen.sample_interarrival()
            if t > horizon:
                return
            keep_p = self.cycle.multiplier(t) / self.peak
            if self.rng.random() >= keep_p:
                continue
            nodes = self._gen.sample_nodes()
            runtime = self._gen.sample_runtime(nodes)
            yield GeneratedJob(arrival=t, nodes=nodes, runtime=runtime)

    def generate(self, horizon: float, start: float = 0.0) -> list[GeneratedJob]:
        return list(self.jobs_until(horizon, start))


def hourly_arrival_counts(
    jobs: list[GeneratedJob], horizon: float
) -> np.ndarray:
    """Arrivals per hour bin over ``[0, horizon)`` (diagnostics/tests)."""
    n_bins = int(math.ceil(horizon / 3600.0))
    counts = np.zeros(n_bins, dtype=int)
    for job in jobs:
        b = int(job.arrival // 3600.0)
        if 0 <= b < n_bins:
            counts[b] += 1
    return counts
