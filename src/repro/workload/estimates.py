"""User runtime-estimate models.

Batch schedulers plan with the *requested* time, which users
notoriously over-estimate.  The paper runs each experiment under two
regimes (Table 1):

* **exact estimates** — ``requested = runtime``;
* **real estimates** — the "φ model" of Zhang et al. with φ = 0.10,
  "which leads to a uniformly distributed overestimation factor with
  mean 2.16" (paper, Section 3.3).

We implement exactly that published characterisation: the
over-estimation factor is drawn uniformly from ``[1, 2·mean − 1]`` so
that requested times are never below the actual runtime and the mean
factor is the paper's 2.16.  The φ parameter is kept as the
conventional label/knob: the mean factor is ``(1 + 1/φ·φ̄)``-style in
the original formulation; here it is supplied directly.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

#: mean over-estimation factor quoted by the paper for φ = 0.10
PHI_MODEL_MEAN_FACTOR = 2.16


class EstimateModel(abc.ABC):
    """Maps an actual runtime to a requested (estimated) runtime."""

    name: str = "abstract"

    @abc.abstractmethod
    def requested_time(self, runtime: float, rng: np.random.Generator) -> float:
        """Return the user's estimate for a job with ``runtime`` seconds.

        Implementations must guarantee ``requested >= runtime`` — the
        schedulers rely on jobs never overrunning their request.
        """


@dataclass(frozen=True)
class ExactEstimates(EstimateModel):
    """Users request precisely what they need (Table 1, "Exact")."""

    name: str = "exact"

    def requested_time(self, runtime: float, rng: np.random.Generator) -> float:
        return runtime


@dataclass(frozen=True)
class PhiModelEstimates(EstimateModel):
    """The φ model: a uniform over-estimation factor (Table 1, "Real").

    Parameters
    ----------
    mean_factor:
        Mean of the uniform over-estimation factor; the factor is drawn
        from ``U[1, 2·mean_factor − 1]``.  Defaults to the paper's 2.16
        (φ = 0.10).
    phi:
        The original model's parameter, retained for provenance.
    """

    mean_factor: float = PHI_MODEL_MEAN_FACTOR
    phi: float = 0.10
    name: str = "phi"

    def __post_init__(self) -> None:
        if self.mean_factor < 1.0:
            raise ValueError(
                f"mean over-estimation factor must be >= 1, got {self.mean_factor}"
            )

    @property
    def max_factor(self) -> float:
        return 2.0 * self.mean_factor - 1.0

    def requested_time(self, runtime: float, rng: np.random.Generator) -> float:
        factor = rng.uniform(1.0, self.max_factor)
        return runtime * factor


@dataclass(frozen=True)
class InflatedEstimates(EstimateModel):
    """Wrap another model, inflating the request by a constant factor.

    Models the Section 3.1.2 robustness check: users of redundant
    requests pad their requested time (by 10 % or 50 %) to leave room
    for uploading input data after a remote allocation ("late binding").
    """

    base: EstimateModel
    inflation: float = 0.10
    name: str = "inflated"

    def __post_init__(self) -> None:
        if self.inflation < 0:
            raise ValueError(f"inflation must be >= 0, got {self.inflation}")

    def requested_time(self, runtime: float, rng: np.random.Generator) -> float:
        return self.base.requested_time(runtime, rng) * (1.0 + self.inflation)


ESTIMATE_MODELS = {
    "exact": ExactEstimates,
    "phi": PhiModelEstimates,
}


def make_estimate_model(name: str, **kwargs) -> EstimateModel:
    """Instantiate an estimate model by name (``exact`` or ``phi``)."""
    try:
        cls = ESTIMATE_MODELS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown estimate model {name!r}; choose from {sorted(ESTIMATE_MODELS)}"
        ) from None
    return cls(**kwargs)
