"""Distribution primitives used by the Lublin–Feitelson workload model.

The paper (Section 3.1.1) models:

* request inter-arrival times with a Gamma distribution ("peak hour"
  model: α = 10.23, β = 0.49, mean α·β ≈ 5.01 s);
* requested node counts with a two-stage log-uniform distribution
  biased towards powers of two;
* requested compute times with a hyper-Gamma distribution whose mixture
  weight ``p`` depends linearly on the node count.

These helpers are deliberately thin wrappers over
``numpy.random.Generator`` so that every component draws from an
explicitly passed, reproducible stream.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


def gamma_interarrival(rng: np.random.Generator, alpha: float, beta: float) -> float:
    """One inter-arrival sample from Gamma(shape=α, scale=β), in seconds.

    The paper gives the peak-hour parameters α = 10.23, β = 0.49 and
    varies α in [4, 20] to explore different load levels (Figure 3).
    """
    if alpha <= 0 or beta <= 0:
        raise ValueError(f"gamma parameters must be positive: α={alpha}, β={beta}")
    return float(rng.gamma(alpha, beta))


def two_stage_uniform(
    rng: np.random.Generator, low: float, med: float, high: float, prob: float
) -> float:
    """Sample from the two-stage uniform distribution of Lublin–Feitelson.

    With probability ``prob`` the value is uniform on ``[low, med]``,
    otherwise uniform on ``[med, high]``.  Used in log₂ space for node
    counts, where it captures the prevalence of small-to-medium jobs.
    """
    if not low <= med <= high:
        raise ValueError(f"need low <= med <= high, got {low}, {med}, {high}")
    if not 0.0 <= prob <= 1.0:
        raise ValueError(f"prob must be in [0, 1], got {prob}")
    if rng.random() < prob:
        return float(rng.uniform(low, med))
    return float(rng.uniform(med, high))


@dataclass(frozen=True)
class HyperGamma:
    """Two-component Gamma mixture: Gamma(a1, b1) w.p. ``p``, else Gamma(a2, b2).

    In the Lublin–Feitelson runtime model the first component captures
    short jobs and the second long jobs; ``p`` is supplied per sample
    because it depends on the job's node count.
    """

    a1: float
    b1: float
    a2: float
    b2: float

    def __post_init__(self) -> None:
        for name in ("a1", "b1", "a2", "b2"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    def sample(self, rng: np.random.Generator, p: float) -> float:
        """Draw one sample with first-component probability ``p``."""
        p = min(1.0, max(0.0, p))
        if rng.random() < p:
            return float(rng.gamma(self.a1, self.b1))
        return float(rng.gamma(self.a2, self.b2))

    def mean(self, p: float) -> float:
        """Mixture mean for a given ``p`` (Gamma mean = shape·scale)."""
        p = min(1.0, max(0.0, p))
        return p * self.a1 * self.b1 + (1.0 - p) * self.a2 * self.b2


def log_uniform_nodes(
    rng: np.random.Generator,
    max_nodes: int,
    serial_prob: float,
    pow2_prob: float,
    ulow: float,
    umed: float,
    uprob: float,
) -> int:
    """Sample a node count from the two-stage log-uniform model.

    With probability ``serial_prob`` the job is serial (1 node).
    Otherwise ``log₂(nodes)`` is drawn from the two-stage uniform on
    ``[ulow, umed, uhi]`` with ``uhi = log₂(max_nodes)``; with
    probability ``pow2_prob`` the exponent is rounded to the nearest
    integer (a power-of-two job).  The result is clamped to
    ``[1, max_nodes]``.
    """
    if max_nodes < 1:
        raise ValueError(f"max_nodes must be >= 1, got {max_nodes}")
    if max_nodes == 1:
        return 1
    if rng.random() < serial_prob:
        return 1
    uhi = math.log2(max_nodes)
    med = min(umed, uhi - 0.5) if uhi > ulow else ulow
    med = max(med, ulow)
    exponent = two_stage_uniform(rng, ulow, med, max(uhi, med), uprob)
    if rng.random() < pow2_prob:
        nodes = 2 ** round(exponent)
    else:
        nodes = math.ceil(2 ** exponent)
    return int(min(max(nodes, 1), max_nodes))
