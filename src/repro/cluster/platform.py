"""Multi-site platforms: a set of clusters, each with its own scheduler.

Builders cover the paper's two platform families:

* homogeneous — N identical clusters of 128 nodes (Figures 1-4);
* heterogeneous — node counts drawn from {16, 32, 64, 128, 256} and
  per-cluster arrival rates drawn from [2 s, 20 s] (Table 3).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..sched import Scheduler, make_scheduler
from ..sim.engine import Simulator
from .cluster import Cluster

#: node counts the paper samples for heterogeneous platforms (Table 3)
HETEROGENEOUS_NODE_CHOICES = (16, 32, 64, 128, 256)


class Platform:
    """A federation of independently scheduled clusters.

    Parameters
    ----------
    sim:
        Shared simulator.
    node_counts:
        Nodes per cluster; one cluster is created per entry.
    algorithm:
        Scheduler algorithm name used at every cluster (the paper always
        runs the same algorithm platform-wide).
    scheduler_kwargs:
        Extra keyword arguments forwarded to every scheduler.
    """

    def __init__(
        self,
        sim: Simulator,
        node_counts: Sequence[int],
        algorithm: str = "easy",
        scheduler_kwargs: Optional[dict] = None,
    ) -> None:
        if not node_counts:
            raise ValueError("platform needs at least one cluster")
        self.sim = sim
        self.algorithm = algorithm
        self.clusters: list[Cluster] = [
            Cluster(i, n) for i, n in enumerate(node_counts)
        ]
        kwargs = scheduler_kwargs or {}
        self.schedulers: list[Scheduler] = [
            make_scheduler(algorithm, sim, c, **kwargs) for c in self.clusters
        ]

    @property
    def n_clusters(self) -> int:
        return len(self.clusters)

    @property
    def node_counts(self) -> list[int]:
        return [c.total_nodes for c in self.clusters]

    def scheduler_at(self, index: int) -> Scheduler:
        return self.schedulers[index]

    def eligible_clusters(self, nodes: int) -> list[int]:
        """Indices of clusters on which a ``nodes``-node request can run."""
        return [c.index for c in self.clusters if c.can_ever_fit(nodes)]

    # -- observability -----------------------------------------------------

    def attach_tracer(self, tracer) -> None:
        """Attach a lifecycle-event recorder to every scheduler.

        ``tracer`` is a :class:`~repro.obs.trace.TraceRecorder` (or any
        object with its ``emit`` signature); ``None`` detaches.
        """
        for sched in self.schedulers:
            sched.tracer = tracer

    def attach_auditor(self, auditor) -> None:
        """Attach a runtime invariant auditor to every scheduler.

        ``auditor`` is a :class:`~repro.sanitize.auditor.InvariantAuditor`
        (or any object with its scheduler-hook signatures); ``None``
        detaches.
        """
        for sched in self.schedulers:
            sched.auditor = auditor

    # -- outages -----------------------------------------------------------

    def begin_outage(self, index: int, drop_queue: bool = False):
        """Take cluster ``index``'s scheduler down.

        Returns the pending requests lost when ``drop_queue`` is set
        (empty list otherwise) so the caller can route them to the
        coordinator's resubmission policy.
        """
        return self.schedulers[index].go_down(drop_queue=drop_queue)

    def end_outage(self, index: int) -> None:
        """Restart cluster ``index``'s scheduler."""
        self.schedulers[index].come_up()

    def check_invariants(self) -> None:
        for sched in self.schedulers:
            sched.check_invariants()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Platform({self.algorithm}, nodes={self.node_counts})"


def homogeneous_platform(
    sim: Simulator,
    n_clusters: int,
    nodes_per_cluster: int = 128,
    algorithm: str = "easy",
    scheduler_kwargs: Optional[dict] = None,
) -> Platform:
    """N identical clusters (the paper's Figures 1-4 setup)."""
    if n_clusters < 1:
        raise ValueError(f"need >=1 cluster, got {n_clusters}")
    return Platform(
        sim, [nodes_per_cluster] * n_clusters, algorithm, scheduler_kwargs
    )


def heterogeneous_platform(
    sim: Simulator,
    n_clusters: int,
    rng: np.random.Generator,
    node_choices: Sequence[int] = HETEROGENEOUS_NODE_CHOICES,
    algorithm: str = "easy",
    scheduler_kwargs: Optional[dict] = None,
) -> Platform:
    """Clusters with node counts sampled from ``node_choices`` (Table 3)."""
    counts = [int(rng.choice(node_choices)) for _ in range(n_clusters)]
    return Platform(sim, counts, algorithm, scheduler_kwargs)
