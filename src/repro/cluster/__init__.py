"""Cluster and multi-site platform models."""

from .cluster import AllocationError, Cluster
from .platform import (
    HETEROGENEOUS_NODE_CHOICES,
    Platform,
    heterogeneous_platform,
    homogeneous_platform,
)

__all__ = [
    "Cluster",
    "AllocationError",
    "Platform",
    "homogeneous_platform",
    "heterogeneous_platform",
    "HETEROGENEOUS_NODE_CHOICES",
]
