"""Compute-node accounting for one site.

A cluster is a pool of identical, interchangeable nodes (the paper limits
heterogeneity to *counts* of nodes across sites, Section 3.1.1), so the
model is a counting semaphore with over/under-flow assertions that the
scheduler invariant tests lean on.
"""

from __future__ import annotations


class AllocationError(RuntimeError):
    """Raised when allocation/release would violate node accounting."""


class Cluster:
    """A pool of ``total_nodes`` identical compute nodes.

    Parameters
    ----------
    index:
        Position of the cluster in the platform (0-based).
    total_nodes:
        Number of compute nodes; must be positive.
    name:
        Human-readable label; defaults to ``"C{index}"`` as in the paper.
    """

    def __init__(self, index: int, total_nodes: int, name: str | None = None) -> None:
        if total_nodes < 1:
            raise ValueError(f"cluster needs >=1 node, got {total_nodes}")
        if index < 0:
            raise ValueError(f"cluster index must be >=0, got {index}")
        self.index = int(index)
        self.total_nodes = int(total_nodes)
        self.name = name if name is not None else f"C{index}"
        self._free = int(total_nodes)

    @property
    def free_nodes(self) -> int:
        """Nodes currently not allocated to any running request."""
        return self._free

    @property
    def busy_nodes(self) -> int:
        """Nodes currently held by running requests."""
        return self.total_nodes - self._free

    @property
    def utilization(self) -> float:
        """Fraction of nodes busy, in [0, 1]."""
        return self.busy_nodes / self.total_nodes

    def can_fit(self, nodes: int) -> bool:
        """Whether ``nodes`` nodes are free right now."""
        return 0 < nodes <= self._free

    def can_ever_fit(self, nodes: int) -> bool:
        """Whether a request for ``nodes`` nodes is runnable here at all."""
        return 0 < nodes <= self.total_nodes

    def allocate(self, nodes: int) -> None:
        """Take ``nodes`` nodes from the free pool."""
        if nodes < 1:
            raise AllocationError(f"cannot allocate {nodes} nodes")
        if nodes > self._free:
            raise AllocationError(
                f"{self.name}: allocate({nodes}) with only {self._free} free"
            )
        self._free -= nodes

    def release(self, nodes: int) -> None:
        """Return ``nodes`` nodes to the free pool."""
        if nodes < 1:
            raise AllocationError(f"cannot release {nodes} nodes")
        if self._free + nodes > self.total_nodes:
            raise AllocationError(
                f"{self.name}: release({nodes}) would exceed {self.total_nodes} total"
            )
        self._free += nodes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Cluster({self.name}, {self.busy_nodes}/{self.total_nodes} busy)"
