"""Behavioural contracts checked statically by ``repro lint``.

The work-queue executor, the result cache and the paired-replication
design are only sound because ``run_single(config, replication)`` is a
*pure* function of its arguments: recomputing a task on another worker,
deduplicating it through the content-addressed cache, or replaying it
after a crash must all yield the same bytes.  Before this module that
invariant lived in docstrings; :func:`declared_pure` turns it into a
machine-checked contract.

Decorating a function does nothing at runtime beyond setting a marker
attribute — the function object is returned unchanged, so pickling by
qualified name (process-pool dispatch) still works.  The lint pass
(rule **PURE001**, see ``repro.lint.rules.purity``) resolves the
project call graph and rejects any declared-pure function whose
*transitive* effect set contains RNG draws outside keyed streams,
wall-clock reads, filesystem/network I/O, module-global writes, or
blocking calls.  Host *timing* reads (``time.perf_counter``) are
tolerated: they feed only the ``wall_time_s``/``phase_timings``
diagnostics that every canonical payload strips.
"""

from __future__ import annotations

from typing import Callable, TypeVar

_F = TypeVar("_F", bound=Callable[..., object])

#: attribute set on functions carrying the purity contract
PURITY_ATTRIBUTE = "__declared_pure__"


def declared_pure(fn: _F) -> _F:
    """Mark ``fn`` as pure-modulo-host-timing; enforced by PURE001.

    "Pure" here means: the result depends only on the arguments, and
    calling the function leaves no trace observable outside the call —
    no module/global writes, no I/O, no unkeyed randomness.  Mutating
    objects constructed *inside* the call (the simulation state a run
    builds and discards) is fine; memoisation caches
    (``functools.lru_cache``) are treated as observationally pure.
    """
    setattr(fn, PURITY_ATTRIBUTE, True)
    return fn
