"""Reproducible random-number stream management.

Every stochastic component in the reproduction draws from its own
``numpy.random.Generator`` derived from a master seed through named
``SeedSequence`` spawning.  This gives the paper's "common random
numbers" property (Section 3.3: all redundancy schemes are evaluated on
the *same* job streams): the stream for ``("rep", 7, "workload", 3)`` is
identical regardless of which scheme consumes it, because stream identity
depends only on the key, never on draw order elsewhere.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Union

import numpy as np

Key = Union[int, str]


def _key_entropy(key: Iterable[Key]) -> list[int]:
    """Hash a structured key into SeedSequence-compatible entropy words."""
    h = hashlib.sha256()
    for part in key:
        h.update(repr(part).encode("utf-8"))
        h.update(b"\x00")
    digest = h.digest()
    return [int.from_bytes(digest[i:i + 4], "little") for i in range(0, 16, 4)]


class RngFactory:
    """Factory of independent, key-addressed random generators.

    Parameters
    ----------
    master_seed:
        Root seed for the whole experiment.  Two factories with the same
        master seed produce identical generators for identical keys.

    Examples
    --------
    >>> f = RngFactory(42)
    >>> g1 = f.generator("rep", 0, "workload", 2)
    >>> g2 = RngFactory(42).generator("rep", 0, "workload", 2)
    >>> float(g1.random()) == float(g2.random())
    True
    """

    def __init__(self, master_seed: int) -> None:
        if not isinstance(master_seed, (int, np.integer)):
            raise TypeError(f"master_seed must be int, got {type(master_seed)!r}")
        self.master_seed = int(master_seed)

    def seed_sequence(self, *key: Key) -> np.random.SeedSequence:
        """Return the SeedSequence for a structured key."""
        return np.random.SeedSequence([self.master_seed] + _key_entropy(key))

    def generator(self, *key: Key) -> np.random.Generator:
        """Return a PCG64 generator addressed by ``key``."""
        return np.random.Generator(np.random.PCG64(self.seed_sequence(*key)))

    def child(self, *key: Key) -> "RngFactory":
        """Derive a sub-factory whose keys are namespaced under ``key``."""
        sub = RngFactory(self.master_seed)
        prefix = tuple(key)

        class _Namespaced(RngFactory):
            def seed_sequence(self, *k: Key) -> np.random.SeedSequence:  # noqa: D102
                return RngFactory.seed_sequence(sub, *prefix, *k)

        ns = _Namespaced(self.master_seed)
        return ns
