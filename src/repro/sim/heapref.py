"""Reference binary-heap event queue (the pre-calendar kernel).

This is the original object-per-event binary heap, preserved verbatim
behind the same queue interface as
:class:`~repro.sim.calendar.CalendarQueue`.  It is **not** used by
default — it exists as the differential reference:

* ``tests/sim/test_calendar_lockstep.py`` runs the two queues in
  lockstep under hypothesis-driven schedule/cancel/compact
  interleavings and asserts identical execution order;
* ``tests/integration/test_kernel_equivalence.py`` runs full traced
  experiments on both kernels and asserts byte-identical traces.

Ordering uses :meth:`Event.__lt__ <repro.sim.events.Event.__lt__>`
(the Python-level ``(time, priority, seq)`` comparison), exactly as the
old engine did, so any divergence between the structures is a calendar
bug, not a shared assumption.
"""

from __future__ import annotations

import heapq
from typing import Iterator, Optional

from .calendar import COMPACT_MIN_TOMBSTONES
from .events import Event


class BinaryHeapQueue:
    """Single binary heap of events ordered by ``(time, priority, seq)``."""

    __slots__ = ("_heap", "tombstones", "compactions")

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self.tombstones = 0
        self.compactions = 0

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, event: Event) -> None:
        event.owner = self
        heapq.heappush(self._heap, event)

    def pop(self) -> Optional[Event]:
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)
            event.owner = None
            if event.cancelled:
                if self.tombstones > 0:
                    self.tombstones -= 1
                continue
            return event
        return None

    def peek(self) -> Optional[Event]:
        heap = self._heap
        while heap:
            event = heap[0]
            if not event.cancelled:
                return event
            heapq.heappop(heap)
            event.owner = None
            if self.tombstones > 0:
                self.tombstones -= 1
        return None

    def note_cancelled(self, event: Event) -> None:
        self.tombstones += 1
        if (
            self.tombstones >= COMPACT_MIN_TOMBSTONES
            and self.tombstones * 2 >= len(self._heap)
        ):
            self.compact()

    def compact(self) -> None:
        """Rebuild the heap without tombstones (one filter + heapify)."""
        heap = self._heap
        heap[:] = [ev for ev in heap if not ev.cancelled]
        heapq.heapify(heap)
        self.tombstones = 0
        self.compactions += 1

    def clear(self) -> None:
        for event in self._heap:
            event.owner = None
        self._heap.clear()
        self.tombstones = 0

    def iter_pending(self) -> Iterator[Event]:
        return (ev for ev in self._heap if not ev.cancelled)
