"""Calendar event queue: time-bucketed storage with C-level ordering.

The kernel's former event store was one binary heap of
:class:`~repro.sim.events.Event` objects whose every sift called the
Python-level ``Event.__lt__`` — at fig1 scale those comparisons alone
were ~25 % of the event-loop budget (see ``repro bench --profile``).
This queue removes interpreted comparisons from the hot path entirely:

* events live in *buckets* keyed by ``floor(time / bucket_width)``;
  an insert is a dict lookup plus a push into a small per-bucket heap
  of ``(time, priority, seq, event)`` tuples, so every comparison is a
  C tuple comparison (``seq`` is unique, the tie-break never reaches
  the event object);
* the set of non-empty buckets is itself a tiny min-heap of plain
  ``int`` bucket keys, so "which bucket holds the global minimum" is
  O(log n_buckets) over machine integers;
* extraction pops from the minimum bucket's heap — because buckets
  partition the time axis, the earliest event always lives in the
  lowest non-empty bucket, and the ``(time, priority, seq)`` total
  order of the old heap is preserved *exactly*
  (``tests/sim/test_calendar_lockstep.py`` proves the two structures
  execution-order equivalent under hypothesis-driven interleavings).

Cancellation stays lazy (tombstone flag, dropped at extraction), but
accounting is now unified on the event side: :meth:`Event.cancel
<repro.sim.events.Event.cancel>` notifies its owning queue, so direct
``Event.cancel()`` calls and :meth:`Simulator.cancel
<repro.sim.engine.Simulator.cancel>` feed the same compaction trigger.
Compaction purges tombstones bucket-locally — each bucket is filtered
and re-heapified in place and emptied buckets are dropped — one O(n)
sweep once tombstones dominate.

``bucket_width`` is a structural parameter only: it shifts work between
the bucket-index heap and the per-bucket heaps but can never change the
execution order, so any width is determinism-safe.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Iterator, Optional

from .events import Event

#: compact once at least this many tombstones exist *and* they
#: outnumber live events (amortised O(1) per cancellation)
COMPACT_MIN_TOMBSTONES = 512

#: default simulated seconds per bucket.  The paper's workloads space
#: kernel events seconds-to-minutes apart, which keeps per-bucket heaps
#: small; a degenerate width (everything in one bucket) just recovers a
#: single tuple-keyed heap, which is still strictly cheaper than the
#: old object heap.
DEFAULT_BUCKET_WIDTH = 16.0

_Entry = tuple[float, int, int, Event]


class CalendarQueue:
    """Bucketed event queue ordered by ``(time, priority, seq)``."""

    __slots__ = (
        "_width", "_buckets", "_bucket_heap", "_size",
        "tombstones", "compactions",
    )

    def __init__(self, bucket_width: float = DEFAULT_BUCKET_WIDTH) -> None:
        if not bucket_width > 0:
            raise ValueError(f"bucket width must be positive, got {bucket_width}")
        self._width = float(bucket_width)
        #: bucket key -> per-bucket heap of (time, priority, seq, event)
        self._buckets: dict[int, list[_Entry]] = {}
        #: min-heap of bucket keys that may be non-empty (lazily cleaned;
        #: a key can appear twice if its bucket emptied and was re-created)
        self._bucket_heap: list[int] = []
        self._size = 0  # entries in buckets, tombstones included
        #: cancelled events still sitting in buckets
        self.tombstones = 0
        #: bucket-local purge sweeps performed (observability counter)
        self.compactions = 0

    # -- sizing ----------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    # -- insertion -------------------------------------------------------

    def push(self, event: Event) -> None:
        """Insert ``event`` (also used to restore an unexecuted pop)."""
        event.owner = self
        key = int(event.time / self._width)
        bucket = self._buckets.get(key)
        if bucket is None:
            self._buckets[key] = bucket = []
            heappush(self._bucket_heap, key)
        heappush(bucket, (event.time, event.priority, event.seq, event))
        self._size += 1

    # -- extraction ------------------------------------------------------

    def _min_bucket(self) -> Optional[list[_Entry]]:
        """Heap of the lowest non-empty bucket, dropping stale keys."""
        bucket_heap = self._bucket_heap
        buckets = self._buckets
        while bucket_heap:
            key = bucket_heap[0]
            bucket = buckets.get(key)
            if bucket:
                return bucket
            # Emptied (or duplicated) key: retire it.
            if bucket is not None:
                del buckets[key]
            heappop(bucket_heap)
        return None

    def pop(self) -> Optional[Event]:
        """Remove and return the next *live* event, or ``None`` if empty.

        Tombstones encountered on the way out are discarded and
        uncounted, mirroring the old heap's pop-time filtering.
        """
        while True:
            bucket = self._min_bucket()
            if bucket is None:
                return None
            event = heappop(bucket)[3]
            self._size -= 1
            event.owner = None
            if event.cancelled:
                if self.tombstones > 0:
                    self.tombstones -= 1
                continue
            return event

    def peek(self) -> Optional[Event]:
        """The next live event without removing it (``None`` if empty).

        Cancelled events at the front are permanently discarded, so a
        subsequent :meth:`pop` is O(1) amortised.
        """
        while True:
            bucket = self._min_bucket()
            if bucket is None:
                return None
            event = bucket[0][3]
            if not event.cancelled:
                return event
            heappop(bucket)
            self._size -= 1
            event.owner = None
            if self.tombstones > 0:
                self.tombstones -= 1

    # -- cancellation ----------------------------------------------------

    def note_cancelled(self, event: Event) -> None:
        """Account one tombstone; compact when they dominate.

        Called by :meth:`Event.cancel <repro.sim.events.Event.cancel>`
        for every event cancelled while it still sits in this queue —
        the unified path that makes direct ``Event.cancel()`` churn
        trigger compaction exactly like ``Simulator.cancel`` churn.
        """
        self.tombstones += 1
        if (
            self.tombstones >= COMPACT_MIN_TOMBSTONES
            and self.tombstones * 2 >= self._size
        ):
            self.compact()

    def compact(self) -> None:
        """Purge tombstones bucket-by-bucket (filter + re-heapify each)."""
        buckets = self._buckets
        emptied = []
        size = 0
        for key, bucket in buckets.items():
            live = [entry for entry in bucket if not entry[3].cancelled]
            if live:
                if len(live) != len(bucket):
                    heapify(live)
                    buckets[key] = live
                size += len(live)
            else:
                emptied.append(key)
        for key in emptied:
            del buckets[key]
        # Stale keys in the bucket-index heap are retired lazily by
        # _min_bucket; rebuilding it here keeps the worst case bounded.
        self._bucket_heap = sorted(buckets)
        self._size = size
        self.tombstones = 0
        self.compactions += 1

    # -- bulk operations -------------------------------------------------

    def clear(self) -> None:
        """Discard every entry (live and tombstoned)."""
        for bucket in self._buckets.values():
            for entry in bucket:
                entry[3].owner = None
        self._buckets.clear()
        self._bucket_heap.clear()
        self._size = 0
        self.tombstones = 0

    def iter_pending(self) -> Iterator[Event]:
        """Live events in bucket order (unordered within a bucket)."""
        for key in sorted(self._buckets):
            for entry in self._buckets[key]:
                if not entry[3].cancelled:
                    yield entry[3]
