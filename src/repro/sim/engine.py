"""Heap-based discrete-event simulation engine.

The paper used SimGrid purely as a discrete-event substrate with zero
network overhead (Section 3.1.2), so any deterministic event loop is an
equivalent foundation.  This one is deliberately minimal: a binary heap of
:class:`~repro.sim.events.Event` objects ordered by
``(time, priority, seq)`` and executed one at a time.

Cancellation is lazy: cancelling marks a tombstone flag and the loop
drops flagged events when they surface at the heap top — no mid-heap
removal, no re-sift.  The simulator counts tombstones created through
:meth:`Simulator.cancel` and compacts the heap in one O(n) filter +
heapify once they dominate, so churn-heavy runs (the CBF reservation
timer cancels constantly) never drag a mostly-dead heap around.

Typical usage::

    sim = Simulator()
    sim.at(10.0, lambda: print("fires at t=10"), EventPriority.CONTROL)
    sim.run()
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable, Iterable, Optional

from .events import Event, EventPriority

#: compact the heap once at least this many tracked tombstones exist
#: and they outnumber live events (amortised O(1) per cancellation)
_COMPACT_MIN_TOMBSTONES = 512


class SimulationError(RuntimeError):
    """Raised on misuse of the simulator (e.g. scheduling in the past)."""


class Simulator:
    """Single-threaded discrete-event simulator.

    The simulator owns the clock.  Components schedule callbacks with
    :meth:`at` (absolute time) or :meth:`after` (relative delay) and the
    loop in :meth:`run` advances the clock to each event's timestamp
    before invoking its callback.  Callbacks may schedule further events,
    including at the current instant (they run after all previously
    scheduled events at that instant with the same priority).
    """

    def __init__(self) -> None:
        self._now: float = 0.0
        self._heap: list[Event] = []
        self._seq: int = 0
        self._running: bool = False
        self._executed: int = 0
        #: tombstones known to sit in the heap (only those created via
        #: :meth:`cancel`; direct ``Event.cancel`` calls are untracked
        #: and merely surface lazily as before)
        self._tombstones: int = 0
        #: heap compaction sweeps performed (observability counter; the
        #: metrics registry surfaces it per run)
        self.compactions: int = 0
        #: optional invariant auditor (``None`` = auditing off; see
        #: :mod:`repro.sanitize.auditor`).  With no auditor attached the
        #: event loop pays one attribute load per event and nothing else.
        self.auditor = None

    # -- clock ----------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._executed

    @property
    def pending_events(self) -> int:
        """Number of events still in the heap (including cancelled)."""
        return len(self._heap)

    # -- scheduling -----------------------------------------------------

    def at(
        self,
        time: float,
        callback: Callable[[], None],
        priority: int = EventPriority.CONTROL,
        tag: Any = None,
    ) -> Event:
        """Schedule ``callback`` at absolute simulated ``time``.

        Returns the :class:`Event`, which may be cancelled with
        :meth:`cancel` (or :meth:`Event.cancel`) as long as it has not
        fired.
        """
        if math.isnan(time):
            raise SimulationError("event time is NaN")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time} before now={self._now}"
            )
        ev = Event(time=float(time), priority=int(priority), seq=self._seq,
                   callback=callback, tag=tag)
        self._seq += 1
        heapq.heappush(self._heap, ev)
        return ev

    def after(
        self,
        delay: float,
        callback: Callable[[], None],
        priority: int = EventPriority.CONTROL,
        tag: Any = None,
    ) -> Event:
        """Schedule ``callback`` after ``delay`` seconds (must be >= 0)."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.at(self._now + delay, callback, priority, tag)

    def cancel(self, event: Event) -> None:
        """Cancel ``event`` lazily, tracking the tombstone for compaction.

        Idempotent.  The event object stays in the heap (no re-sift);
        it is dropped when popped, or swept out wholesale when
        tombstones outnumber live events.
        """
        if event.cancelled:
            return
        event.cancelled = True
        self._tombstones += 1
        if (
            self._tombstones >= _COMPACT_MIN_TOMBSTONES
            and self._tombstones * 2 >= len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without tombstones (one filter + heapify).

        In-place slice assignment keeps the list object's identity, so
        the execution loop's local binding never goes stale.
        """
        heap = self._heap
        heap[:] = [ev for ev in heap if not ev.cancelled]
        heapq.heapify(heap)
        self._tombstones = 0
        self.compactions += 1

    def _note_popped_tombstone(self) -> None:
        if self._tombstones > 0:
            self._tombstones -= 1

    # -- execution ------------------------------------------------------

    def step(self) -> bool:
        """Execute the next non-cancelled event.

        Returns ``True`` if an event was executed, ``False`` if the heap
        is exhausted.
        """
        heap = self._heap
        while heap:
            ev = heapq.heappop(heap)
            if ev.cancelled:
                self._note_popped_tombstone()
                continue
            if self.auditor is not None:
                self.auditor.on_event(self, ev)
            self._now = ev.time
            self._executed += 1
            ev.callback()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the heap drains, ``until`` is reached, or ``max_events``.

        When ``until`` is given, all events with ``time <= until`` are
        executed and the clock is left at ``min(until, last event time)``;
        later events stay queued for a subsequent :meth:`run` call.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        # The heap list object is never replaced (only mutated in
        # place, see _compact/drain), so local bindings stay valid
        # across callbacks that schedule or cancel events.
        heap = self._heap
        heappop = heapq.heappop
        try:
            executed = 0
            while heap:
                ev = heap[0]
                if ev.cancelled:
                    heappop(heap)
                    self._note_popped_tombstone()
                    continue
                if max_events is not None and executed >= max_events:
                    return
                if until is not None and ev.time > until:
                    self._now = max(self._now, until)
                    return
                heappop(heap)
                if self.auditor is not None:
                    self.auditor.on_event(self, ev)
                self._now = ev.time
                self._executed += 1
                ev.callback()
                executed += 1
            if until is not None:
                self._now = max(self._now, until)
        finally:
            self._running = False

    def drain(self) -> None:
        """Discard all pending events without executing them."""
        self._heap.clear()
        self._tombstones = 0

    # -- introspection ---------------------------------------------------

    def peek_time(self) -> float:
        """Time of the next pending event, or ``inf`` when empty."""
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
            self._note_popped_tombstone()
        return heap[0].time if heap else math.inf

    def iter_pending(self) -> Iterable[Event]:
        """Iterate over live (non-cancelled) pending events, unordered."""
        return (ev for ev in self._heap if not ev.cancelled)
