"""Discrete-event simulation engine over a calendar event queue.

The paper used SimGrid purely as a discrete-event substrate with zero
network overhead (Section 3.1.2), so any deterministic event loop is an
equivalent foundation.  This one executes
:class:`~repro.sim.events.Event` callbacks one at a time in exact
``(time, priority, seq)`` order; the events themselves live in a
pluggable *event queue*:

* :class:`~repro.sim.calendar.CalendarQueue` (the default) — buckets
  events by time and orders them with C-level tuple comparisons; O(1)
  amortised insert/extract and bucket-local tombstone purging;
* :class:`~repro.sim.heapref.BinaryHeapQueue` — the original binary
  heap, kept as the differential reference for lockstep and
  byte-identical-trace testing.

Cancellation is lazy everywhere: cancelling marks a tombstone flag
(counted by the owning queue — see :meth:`Event.cancel
<repro.sim.events.Event.cancel>`) and the queue drops flagged events at
extraction or in an amortised purge sweep once they dominate, so
churn-heavy runs (the CBF reservation timer cancels constantly) never
drag a mostly-dead queue around.

Typical usage::

    sim = Simulator()
    sim.at(10.0, lambda: print("fires at t=10"), EventPriority.CONTROL)
    sim.run()
"""

from __future__ import annotations

import math
from typing import Any, Callable, Iterable, Optional, Protocol

from .calendar import COMPACT_MIN_TOMBSTONES as _COMPACT_MIN_TOMBSTONES
from .calendar import CalendarQueue
from .events import Event, EventPriority

__all__ = ["EventQueue", "SimulationError", "Simulator"]


class EventQueue(Protocol):
    """What the simulator needs from an event store.

    Implementations must preserve the global ``(time, priority, seq)``
    total order across :meth:`pop`/:meth:`peek` and keep tombstone
    accounting consistent with :meth:`Event.cancel
    <repro.sim.events.Event.cancel>` notifications.
    """

    tombstones: int
    compactions: int

    def __len__(self) -> int: ...
    def push(self, event: Event) -> None: ...
    def pop(self) -> Optional[Event]: ...
    def peek(self) -> Optional[Event]: ...
    def note_cancelled(self, event: Event) -> None: ...
    def compact(self) -> None: ...
    def clear(self) -> None: ...
    def iter_pending(self) -> Iterable[Event]: ...


#: queue class used by ``Simulator()`` when none is injected; tests
#: monkeypatch this to run whole experiments on the reference kernel
_DEFAULT_QUEUE_FACTORY: Callable[[], Any] = CalendarQueue


class SimulationError(RuntimeError):
    """Raised on misuse of the simulator (e.g. scheduling in the past)."""


class Simulator:
    """Single-threaded discrete-event simulator.

    The simulator owns the clock.  Components schedule callbacks with
    :meth:`at` (absolute time) or :meth:`after` (relative delay) and the
    loop in :meth:`run` advances the clock to each event's timestamp
    before invoking its callback.  Callbacks may schedule further events,
    including at the current instant (they run after all previously
    scheduled events at that instant with the same priority).

    Parameters
    ----------
    queue:
        Event store to use; defaults to a fresh
        :class:`~repro.sim.calendar.CalendarQueue`.
    """

    def __init__(self, queue: Optional[EventQueue] = None) -> None:
        #: current simulated time in seconds.  A plain attribute, not a
        #: property: ``sim.now`` is read on every submit/cancel/pass in
        #: the scheduler layer and the descriptor call was measurable.
        #: Owned by the event loop — components must never assign it.
        self.now: float = 0.0
        self._queue: EventQueue = (
            queue if queue is not None else _DEFAULT_QUEUE_FACTORY()
        )
        self._seq: int = 0
        self._running: bool = False
        self._executed: int = 0
        #: optional invariant auditor (``None`` = auditing off; see
        #: :mod:`repro.sanitize.auditor`).  With no auditor attached the
        #: event loop pays one attribute load per event and nothing else.
        self.auditor = None

    # -- clock ----------------------------------------------------------

    @property
    def events_executed(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._executed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled)."""
        return len(self._queue)

    @property
    def compactions(self) -> int:
        """Tombstone purge sweeps performed by the event queue."""
        return self._queue.compactions

    @property
    def _tombstones(self) -> int:
        """Cancelled events still sitting in the queue (introspection)."""
        return self._queue.tombstones

    # -- scheduling -----------------------------------------------------

    def at(
        self,
        time: float,
        callback: Callable[[], None],
        priority: int = EventPriority.CONTROL,
        tag: Any = None,
    ) -> Event:
        """Schedule ``callback`` at absolute simulated ``time``.

        Returns the :class:`Event`, which may be cancelled with
        :meth:`cancel` (or :meth:`Event.cancel`) as long as it has not
        fired.
        """
        if math.isnan(time):
            raise SimulationError("event time is NaN")
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at t={time} before now={self.now}"
            )
        ev = Event(time=float(time), priority=int(priority), seq=self._seq,
                   callback=callback, tag=tag)
        self._seq += 1
        self._queue.push(ev)
        return ev

    def after(
        self,
        delay: float,
        callback: Callable[[], None],
        priority: int = EventPriority.CONTROL,
        tag: Any = None,
    ) -> Event:
        """Schedule ``callback`` after ``delay`` seconds (must be >= 0)."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.at(self.now + delay, callback, priority, tag)

    def cancel(self, event: Event) -> None:
        """Cancel ``event`` lazily.

        Idempotent.  Equivalent to :meth:`Event.cancel`: the event stays
        queued (no re-sift), is dropped when popped, or is swept out
        wholesale once tombstones outnumber live events.
        """
        event.cancel()

    # -- execution ------------------------------------------------------

    def step(self) -> bool:
        """Execute the next non-cancelled event.

        Returns ``True`` if an event was executed, ``False`` if the
        queue is exhausted.
        """
        ev = self._queue.pop()
        if ev is None:
            return False
        if self.auditor is not None:
            self.auditor.on_event(self, ev)
        self.now = ev.time
        self._executed += 1
        ev.callback()
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` is reached, or ``max_events``.

        When ``until`` is given, all events with ``time <= until`` are
        executed and the clock is left at ``min(until, last event time)``;
        later events stay queued for a subsequent :meth:`run` call.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        queue = self._queue
        pop = queue.pop
        bounded = until is not None or max_events is not None
        try:
            if not bounded:
                # Hot path: no per-event bound checks beyond the pop.
                while True:
                    ev = pop()
                    if ev is None:
                        return
                    if self.auditor is not None:
                        self.auditor.on_event(self, ev)
                    self.now = ev.time
                    self._executed += 1
                    ev.callback()
            executed = 0
            while True:
                ev = pop()
                if ev is None:
                    break
                if max_events is not None and executed >= max_events:
                    queue.push(ev)  # unexecuted: restore verbatim
                    return
                if until is not None and ev.time > until:
                    queue.push(ev)
                    self.now = max(self.now, until)
                    return
                if self.auditor is not None:
                    self.auditor.on_event(self, ev)
                self.now = ev.time
                self._executed += 1
                ev.callback()
                executed += 1
            if until is not None:
                self.now = max(self.now, until)
        finally:
            self._running = False

    def drain(self) -> None:
        """Discard all pending events without executing them."""
        self._queue.clear()

    # -- introspection ---------------------------------------------------

    def peek_time(self) -> float:
        """Time of the next pending event, or ``inf`` when empty."""
        ev = self._queue.peek()
        return ev.time if ev is not None else math.inf

    def iter_pending(self) -> Iterable[Event]:
        """Iterate over live (non-cancelled) pending events, unordered."""
        return self._queue.iter_pending()
