"""Event objects for the discrete-event simulation kernel.

Events are totally ordered by ``(time, priority, seq)``.  ``seq`` is a
monotonically increasing sequence number assigned by the simulator at
scheduling time, which makes the execution order of same-time,
same-priority events deterministic (FIFO in scheduling order).  This
determinism is load-bearing for the redundant-request study: when several
clusters react to the same simulated instant, replaying a seed must always
produce the same schedule.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable


class EventPriority(enum.IntEnum):
    """Priority classes for same-time events (lower runs first).

    The ordering encodes the causality the paper assumes:

    * ``CANCEL`` runs before scheduling passes so that a request cancelled
      "at the same instant" a sibling starts can never itself be started.
    * ``FINISH`` (node release) runs before ``SUBMIT`` so a job arriving
      exactly when nodes free up sees them available, matching batch
      schedulers that process completion notifications eagerly.
    * ``SCHEDULE`` passes run after all state changes at an instant.
    * ``PROBE`` observation events run last of all, so a sampler sees
      the settled end-of-instant state (post-cancellation, post-pass)
      and can never perturb same-instant causality.
    """

    CANCEL = 0
    FINISH = 1
    SUBMIT = 2
    SCHEDULE = 3
    CONTROL = 4
    PROBE = 5


@dataclass(eq=False, slots=True)
class Event:
    """A scheduled callback.

    Millions of these live in the kernel heap of an overloaded run, so
    the layout is tuned: ``slots=True`` removes the per-instance dict
    (smaller objects, faster attribute access in heap sift loops) and
    the hand-written :meth:`__lt__` below avoids the tuple allocation a
    dataclass-generated comparison would perform on every heap sift.
    The class cannot be ``frozen`` because lazy cancellation mutates
    ``cancelled`` in place; identity (``eq=False``) is the intended
    equality for handles to scheduled work.

    Attributes
    ----------
    time:
        Simulated time at which the callback fires (seconds).
    priority:
        :class:`EventPriority` tie-break for identical times.
    seq:
        Scheduling-order sequence number (final tie-break).
    callback:
        Zero-argument callable invoked when the event fires.
    cancelled:
        Events are removed lazily: cancelling marks the flag and the
        event loop skips flagged events when popped.
    owner:
        The event queue currently holding this event (``None`` once
        popped or never scheduled).  Set by the queue on push; lets
        :meth:`cancel` report the tombstone to whichever queue holds
        the event, so *every* cancellation path feeds the same
        compaction accounting.
    """

    time: float
    priority: int
    seq: int
    callback: Callable[[], None]
    cancelled: bool = field(default=False)
    tag: Any = field(default=None)
    owner: Any = field(default=None, repr=False, compare=False)

    def __lt__(self, other: "Event") -> bool:
        """Total order by ``(time, priority, seq)`` without tuple churn."""
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.seq < other.seq

    def cancel(self) -> None:
        """Mark the event so the event loop discards it when popped.

        Idempotent.  The tombstone is reported to the owning queue (when
        the event is still scheduled), so direct ``Event.cancel()``
        calls and :meth:`Simulator.cancel
        <repro.sim.engine.Simulator.cancel>` are now the same path and
        both feed the queue's amortised compaction trigger.
        """
        if self.cancelled:
            return
        self.cancelled = True
        owner = self.owner
        if owner is not None:
            owner.note_cancelled(self)
