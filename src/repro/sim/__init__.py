"""Discrete-event simulation kernel (SimGrid substitute).

Public API: :class:`Simulator`, :class:`Event`, :class:`EventPriority`,
:class:`RngFactory`, :exc:`SimulationError`.
"""

from .engine import SimulationError, Simulator
from .events import Event, EventPriority
from .rng import RngFactory

__all__ = ["Simulator", "Event", "EventPriority", "RngFactory", "SimulationError"]
