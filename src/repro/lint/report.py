"""Render a :class:`~repro.lint.engine.LintResult` as text or JSON.

Both renderers are deterministic: findings arrive pre-sorted from the
engine and JSON keys are emitted in a fixed order, so lint output can
itself be diffed or golden-tested.
"""

from __future__ import annotations

import json

from .engine import LintResult

REPORT_SCHEMA_VERSION = 1


def render_text(result: LintResult, show_suppressed: bool = False) -> str:
    """Human-readable report; suppressed findings shown on request."""
    lines = []
    for f in result.findings:
        if f.suppressed and not show_suppressed:
            continue
        lines.append(f.render())
    s = result.summary()
    lines.append(
        f"checked {s['files_checked']} files: "
        f"{s['errors']} errors, {s['warnings']} warnings "
        f"({s['waived']} waived, {s['baselined']} baselined)"
    )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-readable report (schema pinned by tests/lint)."""
    payload = {
        "schema": REPORT_SCHEMA_VERSION,
        "tool": "repro-lint",
        "summary": result.summary(),
        "findings": [f.to_dict() for f in result.findings],
        "exit_code": result.exit_code,
    }
    return json.dumps(payload, indent=2, sort_keys=False)
