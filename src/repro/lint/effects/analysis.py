"""Interprocedural propagation over the call graph.

Two propagation shapes cover all four rule families:

* :func:`transitive_acquires` — the classic monotone worklist fixpoint:
  every function's set of locks it may (transitively) acquire.  RACE002
  combines these with the per-region facts to build the lock-order
  graph and detect cycles.
* :func:`effect_chains` — per-root breadth-first search used by PURE001
  and BLK001.  Declared-pure roots and service coroutines are few, so a
  BFS per root is cheaper (and yields shortest witness chains for
  messages) than propagating full effect sets everywhere; cycles are
  handled by the visited set.

Both are deterministic: functions are processed in sorted-qualid order
and out-edges in document order, so two runs over the same tree emit
byte-identical reports.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional

from .callgraph import CallGraph
from .model import EffectRecord, FunctionFacts


def transitive_acquires(graph: CallGraph) -> dict[str, set[str]]:
    """Locks each function may acquire, directly or through any callee."""
    acquires: dict[str, set[str]] = {}
    callers: dict[str, set[str]] = {}
    for qualid, fn in graph.functions.items():
        acquires[qualid] = {
            ev.lock for ev in fn.acquires if ev.lock in graph.known_locks
        }
        for target, _ in graph.callees(qualid):
            callers.setdefault(target, set()).add(qualid)
    work = deque(sorted(graph.functions))
    queued = set(work)
    while work:
        qualid = work.popleft()
        queued.discard(qualid)
        merged = set(acquires[qualid])
        for target, _ in graph.callees(qualid):
            merged |= acquires[target]
        if merged != acquires[qualid]:
            acquires[qualid] = merged
            for caller in sorted(callers.get(qualid, ())):
                if caller not in queued:
                    queued.add(caller)
                    work.append(caller)
    return acquires


@dataclass(frozen=True)
class LockEdge:
    """Lock-order edge: ``held`` was held while ``acquired`` was taken."""

    held: str
    acquired: str
    holder: str  # qualid of the function holding ``held``
    line: int    # site (in ``holder``) where the inner acquisition starts


def lock_order_edges(
    graph: CallGraph, acquires: dict[str, set[str]]
) -> list[LockEdge]:
    """Every ``held -> acquired`` pair, first witness per pair."""
    witnesses: dict[tuple[str, str], LockEdge] = {}

    def note(held: str, acquired: str, holder: str, line: int) -> None:
        key = (held, acquired)
        if acquired != held and key not in witnesses:
            witnesses[key] = LockEdge(held, acquired, holder, line)

    for qualid in sorted(graph.functions):
        fn = graph.functions[qualid]
        for event in fn.acquires:
            if event.lock not in graph.known_locks:
                continue
            for inner_lock, line in event.inner_locks:
                if inner_lock in graph.known_locks:
                    note(event.lock, inner_lock, qualid, line)
            for rec in event.inner_calls:
                target = graph.resolve(rec)
                if target is None:
                    continue
                for inner_lock in sorted(acquires.get(target, ())):
                    note(event.lock, inner_lock, qualid, rec.line)
    return [witnesses[key] for key in sorted(witnesses)]


def lock_cycles(edges: list[LockEdge]) -> list[list[LockEdge]]:
    """Inconsistent acquisition orders: one witness path per cycle.

    The lock-order graph is tiny (one node per lock attribute), so a
    simple deterministic DFS over sorted adjacency finds each minimal
    cycle; every cycle is reported once, rooted at its smallest lock id.
    """
    adjacency: dict[str, list[LockEdge]] = {}
    for edge in edges:
        adjacency.setdefault(edge.held, []).append(edge)

    cycles: list[list[LockEdge]] = []
    seen_cycles: set[frozenset[str]] = set()

    def walk(root: str, node: str, path: list[LockEdge]) -> None:
        for edge in adjacency.get(node, ()):
            if edge.acquired == root:
                members = frozenset(e.held for e in path + [edge])
                if members not in seen_cycles:
                    seen_cycles.add(members)
                    cycles.append(path + [edge])
            elif edge.acquired > root and all(
                edge.acquired != e.held for e in path
            ):
                walk(root, edge.acquired, path + [edge])

    for root in sorted(adjacency):
        for edge in adjacency[root]:
            if edge.acquired == root:  # self-loop: re-acquiring own lock
                continue
            walk(root, edge.acquired, [edge])
    return cycles


@dataclass
class EffectChain:
    """Witness: how a root function reaches one direct effect."""

    kind: str
    effect: EffectRecord
    owner: str       # qualid of the function performing the effect
    owner_path: str  # display path of the owner's file
    steps: list[tuple[str, int]]  # (callee qualid, call-site line) hops

    def describe(self, root_name: str) -> str:
        hops = " -> ".join(
            [root_name] + [q.rsplit(".", 1)[-1] + "()" for q, _ in self.steps]
        )
        via = f" via {hops}" if self.steps else ""
        return (
            f"{self.effect.detail} at {self.owner_path}:{self.effect.line}"
            f"{via}"
        )


def effect_chains(
    graph: CallGraph,
    root: str,
    kinds: tuple[str, ...],
    suppress: Optional[
        Callable[[FunctionFacts, str, EffectRecord], bool]
    ] = None,
) -> dict[str, EffectChain]:
    """Shortest witness chain per effect kind reachable from ``root``.

    ``suppress(fn, path, effect)`` may veto individual effect records
    (waiver pragmas at the effect's origin line); a vetoed record is
    invisible to this rule but still marks its pragma as used.
    """
    found: dict[str, EffectChain] = {}
    remaining = set(kinds)
    parents: dict[str, tuple[str, int]] = {}  # qualid -> (caller, line)
    visited = {root}
    queue = deque([root])
    while queue and remaining:
        qualid = queue.popleft()
        fn = graph.functions.get(qualid)
        if fn is None:
            continue
        path = graph.function_path.get(qualid, "")
        for effect in fn.effects:
            if effect.kind not in remaining:
                continue
            if suppress is not None and suppress(fn, path, effect):
                continue
            steps: list[tuple[str, int]] = []
            cursor = qualid
            while cursor != root:
                caller, line = parents[cursor]
                steps.append((cursor, line))
                cursor = caller
            steps.reverse()
            found[effect.kind] = EffectChain(
                kind=effect.kind, effect=effect, owner=qualid,
                owner_path=path, steps=steps,
            )
            remaining.discard(effect.kind)
        for target, rec in graph.callees(qualid):
            if target not in visited:
                visited.add(target)
                parents[target] = (qualid, rec.line)
                queue.append(target)
    return found
