"""Per-file fact extraction: FileContext → :class:`ModuleFacts`.

One AST walk per file produces everything the project phase needs:

* per-function **direct effects** (RNG draws outside keyed streams,
  wall-clock and timing reads, filesystem I/O, module-global writes,
  blocking calls), classified with the same qualified-name tables the
  per-file determinism rules use;
* per-function **call records**, resolved as far as file-local
  knowledge reaches: module-level functions, absolute *and relative*
  imports, ``self.method()``, and methods on locals whose class is
  known from a constructor call or an annotation;
* per-function **lock events** (``with <lock>:`` regions) with the
  calls and nested acquisitions made while holding, for lock-order
  cycle detection;
* per-class **lock-discipline facts**: which attributes are written
  under the class's own lock (and are therefore *guarded*), and every
  access of a guarded attribute outside a lock region;
* **executor-boundary sites** where a statically unpicklable value
  (lambda, nested function, lock, open handle, tracer, ``self`` of a
  lock-owning class) is captured into a pool submission or pickle.

Nested function definitions and lambdas are *inlined* into their
enclosing function's summary: callbacks built inside ``run_single``
run during the simulation they configure, so attributing their effects
to the enclosing call is both simple and accurate.  Calls that cannot
be resolved (dynamic dispatch, stored callables) are recorded only if
they classify as a direct effect — the analysis is optimistic by
design and the per-file rules remain the backstop.
"""

from __future__ import annotations

import ast
from typing import Optional

from ..context import FileContext
from ..rules.determinism import (
    BLESSED_MODULES,
    ENTROPY,
    NUMPY_BANNED_TAILS,
    TIMING_CLOCKS,
    WALL_CLOCK,
)
from ..rules.parallel import MUTABLE_CONSTRUCTORS, MUTATING_METHODS
from .model import (
    AccessSite,
    BoundarySite,
    CallRecord,
    ClassFacts,
    EffectRecord,
    FunctionFacts,
    LockEvent,
    ModuleFacts,
)

# -- classification tables ------------------------------------------------

LOCK_CONSTRUCTORS = {"threading.Lock", "threading.RLock", "threading.Condition"}

#: attribute tails that read or write the filesystem regardless of the
#: receiver's type (pathlib-style file APIs); tails shared with common
#: str/dict methods (``replace``, ``rename``, ``update``) are
#: deliberately absent — ambiguity errs toward silence.
PATHLIKE_IO_TAILS = {
    "read_text",
    "write_text",
    "read_bytes",
    "write_bytes",
    "mkdir",
    "rmdir",
    "touch",
    "unlink",
    "rmtree",
    "hardlink_to",
    "symlink_to",
}

OS_IO_TAILS = {
    "remove",
    "unlink",
    "rename",
    "replace",
    "mkdir",
    "makedirs",
    "rmdir",
    "removedirs",
    "listdir",
    "scandir",
    "open",
    "fdopen",
    "chmod",
    "chown",
    "utime",
    "truncate",
    "link",
    "symlink",
}

BLOCKING_EXACT = {"time.sleep", "os.system", "os.popen"}
BLOCKING_PREFIXES = (
    "subprocess.",
    "socket.",
    "urllib.",
    "http.client.",
    "requests.",
)

INIT_METHODS = {"__init__", "__post_init__", "__new__"}

#: decorator names marking the purity contract (repro.contracts)
PURE_DECORATORS = {"declared_pure", "repro.contracts.declared_pure"}


def module_id_for(ctx: FileContext) -> str:
    """Dotted project id of a file (``repro.core.orchestrator``)."""
    return f"repro.{ctx.module}"


def _resolve_aliases(ctx: FileContext) -> dict[str, str]:
    """Import aliases including *relative* imports resolved to dotted ids.

    :class:`FileContext` keeps relative imports out of its alias table
    (per-file rules treat project-internal names as opaque); the
    interprocedural pass is exactly the consumer that needs them:
    ``from ..sim.engine import Simulator`` inside ``repro.core.x``
    resolves to ``repro.sim.engine.Simulator``.
    """
    aliases = dict(ctx.aliases)
    parts = ctx.module_parts  # e.g. ("core", "experiment")
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ImportFrom) or node.level == 0:
            continue
        if node.level > len(parts):
            continue  # escapes the repro package; unresolvable
        base = ("repro",) + parts[: len(parts) - node.level]
        if node.module:
            base = base + tuple(node.module.split("."))
        prefix = ".".join(base)
        for alias in node.names:
            local = alias.asname or alias.name
            aliases[local] = f"{prefix}.{alias.name}"
    return aliases


def _qualname(node: ast.AST, aliases: dict[str, str]) -> Optional[str]:
    """Dotted name of an attribute/name chain under the merged aliases."""
    tail: list[str] = []
    while isinstance(node, ast.Attribute):
        tail.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = aliases.get(node.id)
    if root is None:
        return None
    tail.append(root)
    return ".".join(reversed(tail))


class _ClassInfo:
    """File-local knowledge about one class, built before method walks."""

    def __init__(self, name: str, qualid: str, line: int) -> None:
        self.name = name
        self.qualid = qualid
        self.line = line
        self.bases: list[str] = []
        self.lock_attrs: list[str] = []
        self.attr_types: dict[str, str] = {}
        # (attr, line, col, method, write, locked) accesses of self.*
        self.accesses: list[tuple[str, int, int, str, bool, bool]] = []
        self.unlocked_helper_calls: list[AccessSite] = []


class _ModuleScan:
    """Module-level names the function walker consults."""

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.module_id = module_id_for(ctx)
        self.aliases = _resolve_aliases(ctx)
        self.blessed_rng = ctx.module in BLESSED_MODULES
        self.module_funcs: set[str] = set()
        self.local_classes: set[str] = set()
        self.module_names: set[str] = set()
        self.mutable_names: set[str] = set()
        self.module_consts: set[str] = set()
        for stmt in ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.module_funcs.add(stmt.name)
            elif isinstance(stmt, ast.ClassDef):
                self.local_classes.add(stmt.name)
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                targets = (
                    stmt.targets
                    if isinstance(stmt, ast.Assign)
                    else [stmt.target]
                )
                value = stmt.value
                for target in targets:
                    if not isinstance(target, ast.Name):
                        continue
                    self.module_names.add(target.id)
                    if value is not None and self._is_mutable(value):
                        self.mutable_names.add(target.id)
                    if isinstance(value, ast.Constant):
                        self.module_consts.add(target.id)

    def _is_mutable(self, node: ast.expr) -> bool:
        if isinstance(
            node,
            (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
             ast.SetComp),
        ):
            return True
        if isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Name)
                and node.func.id in MUTABLE_CONSTRUCTORS
            ):
                return True
            q = _qualname(node.func, self.aliases)
            return q is not None and q in MUTABLE_CONSTRUCTORS
        return False

    def resolve_class(self, name: str) -> Optional[str]:
        """Dotted id of a class name visible in this module, if any."""
        if name in self.local_classes:
            return f"{self.module_id}.{name}"
        return self.aliases.get(name)

    def annotation_type(self, node: Optional[ast.expr]) -> Optional[str]:
        """Dotted class id an annotation denotes, unwrapping Optional."""
        if node is None:
            return None
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                node = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(node, ast.Subscript):
            head = node.value
            tail = (
                head.attr if isinstance(head, ast.Attribute)
                else head.id if isinstance(head, ast.Name) else ""
            )
            if tail == "Optional":
                return self.annotation_type(node.slice)
            return None  # containers: element types are not tracked
        if isinstance(node, ast.Name):
            return self.resolve_class(node.id)
        if isinstance(node, ast.Attribute):
            return _qualname(node, self.aliases)
        return None


def _constant_expr(node: ast.expr, consts: set[str]) -> bool:
    """True when an expression is statically constant (literal, a
    module-level literal constant, or arithmetic over those)."""
    if isinstance(node, ast.Constant):
        return True
    if isinstance(node, ast.Name):
        return node.id in consts
    if isinstance(node, ast.UnaryOp):
        return _constant_expr(node.operand, consts)
    if isinstance(node, ast.BinOp):
        return _constant_expr(node.left, consts) and _constant_expr(
            node.right, consts
        )
    return False


class _FunctionWalker:
    """Single-pass walk of one function body, lock-region aware."""

    def __init__(
        self,
        scan: _ModuleScan,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        qualid: str,
        owner: Optional[_ClassInfo],
        boundary_sites: list[BoundarySite],
    ) -> None:
        self.scan = scan
        self.owner = owner
        self.method_name = node.name
        self.boundary_sites = boundary_sites
        self.facts = FunctionFacts(
            qualid=qualid,
            name=node.name,
            line=node.lineno,
            is_async=isinstance(node, ast.AsyncFunctionDef),
            declared_pure=_is_declared_pure(node, scan.aliases),
        )
        self.local_types: dict[str, str] = {}
        self.local_kinds: dict[str, str] = {}  # XPB001 hazard bindings
        self.nested_defs: set[str] = set()
        self.global_decls: set[str] = set()
        # stack of (event, is_own_class_lock)
        self.lock_stack: list[tuple[LockEvent, bool]] = []
        self._effects: set[EffectRecord] = set()

        self._collect_params(node.args)
        for deco in node.decorator_list:
            self._visit(deco)
        for stmt in node.body:
            self._visit(stmt)
        self.facts.effects = sorted(
            self._effects, key=lambda e: (e.line, e.kind, e.detail)
        )

    # -- scaffolding -----------------------------------------------------

    def _collect_params(self, args: ast.arguments) -> None:
        for arg in [
            *args.posonlyargs, *args.args, *args.kwonlyargs,
            *( [args.vararg] if args.vararg else [] ),
            *( [args.kwarg] if args.kwarg else [] ),
        ]:
            t = self.scan.annotation_type(arg.annotation)
            if t is not None:
                self.local_types[arg.arg] = t

    def _effect(self, kind: str, line: int, detail: str) -> None:
        self._effects.add(EffectRecord(kind=kind, line=line, detail=detail))

    def _in_own_lock(self) -> bool:
        return (
            any(own for _, own in self.lock_stack)
            or self.method_name.endswith("_locked")
        )

    # -- dispatch --------------------------------------------------------

    def _visit(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.nested_defs.add(node.name)
            self._collect_params(node.args)
            for deco in node.decorator_list:
                self._visit(deco)
            for stmt in node.body:
                self._visit(stmt)
        elif isinstance(node, ast.Lambda):
            self._visit(node.body)
        elif isinstance(node, ast.ClassDef):
            pass  # nested class bodies are out of scope
        elif isinstance(node, ast.Global):
            self.global_decls.update(node.names)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            self._visit_with(node)
        elif isinstance(node, ast.Assign):
            self._visit_assign(node.targets, node.value)
        elif isinstance(node, ast.AnnAssign):
            t = self.scan.annotation_type(node.annotation)
            if t is not None and isinstance(node.target, ast.Name):
                self.local_types[node.target.id] = t
            self._store_target(node.target)
            if node.value is not None:
                self._visit(node.value)
        elif isinstance(node, ast.AugAssign):
            self._store_target(node.target)
            self._visit(node.value)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                self._store_target(target, delete=True)
        elif isinstance(node, ast.Call):
            self._visit_call(node)
        elif isinstance(node, ast.Attribute):
            self._attr_access(node, write=isinstance(
                node.ctx, (ast.Store, ast.Del)
            ))
            self._visit(node.value)
        else:
            for child in ast.iter_child_nodes(node):
                self._visit(child)

    # -- lock regions ----------------------------------------------------

    def _lock_id(self, expr: ast.expr) -> Optional[tuple[str, bool]]:
        """(lock id, is-own-class-lock) when ``expr`` names a lock."""
        if not isinstance(expr, ast.Attribute):
            return None
        attr, base = expr.attr, expr.value
        if isinstance(base, ast.Name) and base.id == "self" and self.owner:
            if attr in self.owner.lock_attrs:
                return f"{self.owner.qualid}.{attr}", True
            return None
        if isinstance(base, ast.Name):
            t = self.local_types.get(base.id)
            if t is not None:
                return f"{t}.{attr}", False
            return None
        if (
            isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id == "self"
            and self.owner
        ):
            t = self.owner.attr_types.get(base.attr)
            if t is not None:
                return f"{t}.{attr}", False
        return None

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        pushed = 0
        for item in node.items:
            lock = self._lock_id(item.context_expr)
            if lock is not None:
                lid, own = lock
                event = LockEvent(lock=lid, line=item.context_expr.lineno)
                for held, _ in self.lock_stack:
                    held.inner_locks.append((lid, event.line))
                self.facts.acquires.append(event)
                self.lock_stack.append((event, own))
                pushed += 1
            else:
                self._visit(item.context_expr)
            if item.optional_vars is not None:
                self._store_target(item.optional_vars)
        for stmt in node.body:
            self._visit(stmt)
        if pushed:
            del self.lock_stack[-pushed:]

    # -- assignments and attribute accesses ------------------------------

    def _visit_assign(
        self, targets: list[ast.expr], value: ast.expr
    ) -> None:
        if len(targets) == 1 and isinstance(targets[0], ast.Name):
            name = targets[0].id
            if isinstance(value, ast.Call):
                ctor = self._constructed_class(value)
                if ctor is not None:
                    self.local_types[name] = ctor
                hazard = self._hazard_kind(value)
                if hazard is not None:
                    self.local_kinds[name] = hazard
        for target in targets:
            self._store_target(target)
        self._visit(value)

    def _constructed_class(self, call: ast.Call) -> Optional[str]:
        if isinstance(call.func, ast.Name):
            return self.scan.resolve_class(call.func.id)
        return _qualname(call.func, self.scan.aliases)

    def _hazard_kind(self, call: ast.Call) -> Optional[str]:
        """XPB001: does this constructor yield an unpicklable value?"""
        if isinstance(call.func, ast.Name) and call.func.id == "open":
            return "an open file handle"
        q = _qualname(call.func, self.scan.aliases)
        if q is None:
            return None
        if q in LOCK_CONSTRUCTORS or q == "threading.Event":
            return "a threading synchronisation primitive"
        if q in ("socket.socket", "socket.create_connection"):
            return "a socket"
        if q.rsplit(".", 1)[-1] == "TraceRecorder":
            return "a TraceRecorder (holds an open stream)"
        return None

    def _store_target(self, target: ast.expr, delete: bool = False) -> None:
        if isinstance(target, ast.Name):
            if (
                target.id in self.global_decls
                and target.id in self.scan.module_names
            ):
                self._effect(
                    "global_write", target.lineno,
                    f"rebinds module global {target.id!r}",
                )
        elif isinstance(target, ast.Attribute):
            self._attr_access(target, write=True)
            self._visit(target.value)
        elif isinstance(target, ast.Subscript):
            root = target.value
            while isinstance(root, (ast.Subscript, ast.Attribute)):
                if (
                    isinstance(root, ast.Attribute)
                    and isinstance(root.value, ast.Name)
                    and root.value.id == "self"
                ):
                    self._attr_access(root, write=True)
                    break
                root = (
                    root.value
                    if isinstance(root, (ast.Subscript, ast.Attribute))
                    else root
                )
            if (
                isinstance(target.value, ast.Name)
                and target.value.id in self.scan.mutable_names
            ):
                self._effect(
                    "global_write", target.lineno,
                    f"{'deletes from' if delete else 'writes into'} "
                    f"module-level {target.value.id!r}",
                )
            self._visit(target.value)
            self._visit(target.slice)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._store_target(elt, delete=delete)
        elif isinstance(target, ast.Starred):
            self._store_target(target.value, delete=delete)

    def _attr_access(self, node: ast.Attribute, write: bool) -> None:
        if (
            self.owner is not None
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            self.owner.accesses.append((
                node.attr, node.lineno, node.col_offset,
                self.method_name, write, self._in_own_lock(),
            ))

    # -- calls -----------------------------------------------------------

    def _visit_call(self, node: ast.Call) -> None:
        self._classify_effect(node)
        self._check_boundary(node)
        record = self._call_record(node)
        if record is not None:
            self.facts.calls.append(record)
            for held, _ in self.lock_stack:
                held.inner_calls.append(record)
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr in MUTATING_METHODS:
                if (
                    isinstance(func.value, ast.Name)
                    and func.value.id in self.scan.mutable_names
                ):
                    self._effect(
                        "global_write", node.lineno,
                        f"mutates module-level {func.value.id!r} "
                        f"via .{func.attr}()",
                    )
                elif (
                    isinstance(func.value, ast.Attribute)
                    and isinstance(func.value.value, ast.Name)
                    and func.value.value.id == "self"
                ):
                    self._attr_access(func.value, write=True)
            if (
                func.attr.endswith("_locked")
                and isinstance(func.value, ast.Name)
                and func.value.id == "self"
                and self.owner is not None
                and not self._in_own_lock()
                and self.method_name not in INIT_METHODS
            ):
                self.owner.unlocked_helper_calls.append(AccessSite(
                    attr=func.attr, line=node.lineno, col=node.col_offset,
                    method=self.method_name, write=False,
                ))
            self._visit(func.value)
        elif not isinstance(func, ast.Name):
            self._visit(func)  # subscripted/computed callables
        for arg in node.args:
            self._visit(arg)
        for kw in node.keywords:
            self._visit(kw.value)

    def _call_record(self, node: ast.Call) -> Optional[CallRecord]:
        func = node.func
        if isinstance(func, ast.Name):
            name = func.id
            if name in self.nested_defs:
                return None  # inlined into this summary already
            if name in self.scan.module_funcs:
                return CallRecord(
                    line=node.lineno, kind="direct",
                    target=f"{self.scan.module_id}.{name}",
                    display=f"{name}()",
                )
            target = self.scan.aliases.get(name)
            if target is not None:
                return CallRecord(
                    line=node.lineno, kind="direct", target=target,
                    display=f"{name}()",
                )
            ctor = self.scan.resolve_class(name)
            if ctor is not None:
                return CallRecord(
                    line=node.lineno, kind="method",
                    target=f"{ctor}|__init__", display=f"{name}()",
                )
            return None
        if isinstance(func, ast.Attribute):
            base = func.value
            if isinstance(base, ast.Name) and base.id == "self" and self.owner:
                return CallRecord(
                    line=node.lineno, kind="method",
                    target=f"{self.owner.qualid}|{func.attr}",
                    display=f"self.{func.attr}()",
                )
            if isinstance(base, ast.Name):
                t = self.local_types.get(base.id)
                if t is not None:
                    return CallRecord(
                        line=node.lineno, kind="method",
                        target=f"{t}|{func.attr}",
                        display=f"{base.id}.{func.attr}()",
                    )
            if (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self"
                and self.owner is not None
            ):
                t = self.owner.attr_types.get(base.attr)
                if t is not None:
                    return CallRecord(
                        line=node.lineno, kind="method",
                        target=f"{t}|{func.attr}",
                        display=f"self.{base.attr}.{func.attr}()",
                    )
            q = _qualname(func, self.scan.aliases)
            if q is not None:
                if q.startswith("repro."):
                    return CallRecord(
                        line=node.lineno, kind="direct", target=q,
                        display=f"{q.rsplit('.', 1)[-1]}()",
                    )
                ctor = self._constructed_class(node)
                if ctor is not None and ctor.startswith("repro."):
                    return CallRecord(
                        line=node.lineno, kind="method",
                        target=f"{ctor}|__init__",
                        display=f"{ctor.rsplit('.', 1)[-1]}()",
                    )
            return None
        return None

    # -- effect classification -------------------------------------------

    def _classify_effect(self, node: ast.Call) -> None:
        line = node.lineno
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "open":
                self._effect("io", line, "open()")
            elif func.id == "input":
                self._effect("blocking", line, "input()")
            elif func.id == "print":
                self._effect("io", line, "print()")
            return
        q = _qualname(func, self.scan.aliases)
        if q is None:
            if (
                isinstance(func, ast.Attribute)
                and func.attr in PATHLIKE_IO_TAILS
            ):
                self._effect("io", line, f".{func.attr}()")
            return
        if q in WALL_CLOCK:
            self._effect("wall_clock", line, q)
        elif q in TIMING_CLOCKS:
            self._effect("timing", line, q)
        elif q in BLOCKING_EXACT or q.startswith(BLOCKING_PREFIXES):
            self._effect("blocking", line, q)
        elif q in ENTROPY:
            self._effect("rng", line, q)
        elif q.startswith(("random.", "secrets.")):
            if not self.scan.blessed_rng:
                self._effect("rng", line, q)
        elif q.startswith("numpy.random."):
            if self.scan.blessed_rng:
                return
            tail = q.rsplit(".", 1)[-1]
            if tail in ("default_rng", "RandomState"):
                # a generator minted from a *constant* seed is a pinned
                # stream (calibration helpers); no-arg or computed seeds
                # are unkeyed randomness
                pinned = bool(node.args) and all(
                    _constant_expr(a, self.scan.module_consts)
                    for a in node.args
                ) and not node.keywords
                if not pinned:
                    self._effect("rng", line, q)
            elif tail in NUMPY_BANNED_TAILS:
                self._effect("rng", line, q)
        elif q in ("tempfile.mkstemp", "tempfile.mkdtemp") or q.startswith(
            ("tempfile.", "shutil.")
        ):
            self._effect("io", line, q)
        elif q == "io.open" or (
            q.startswith("os.") and q.rsplit(".", 1)[-1] in OS_IO_TAILS
        ):
            self._effect("io", line, q)

    # -- executor boundaries ---------------------------------------------

    def _check_boundary(self, node: ast.Call) -> None:
        func = node.func
        payload: list[ast.expr] = []
        if isinstance(func, ast.Attribute) and func.attr == "submit":
            payload = list(node.args) + [kw.value for kw in node.keywords]
        else:
            q = _qualname(func, self.scan.aliases)
            tail = q.rsplit(".", 1)[-1] if q else ""
            if tail == "ProcessPoolExecutor" or (
                q is not None
                and q.startswith("multiprocessing.")
                and tail in ("Pool", "Process")
            ):
                for kw in node.keywords:
                    if kw.arg in ("initializer", "target"):
                        payload.append(kw.value)
                    elif kw.arg in ("initargs", "args"):
                        if isinstance(kw.value, (ast.Tuple, ast.List)):
                            payload.extend(kw.value.elts)
                        else:
                            payload.append(kw.value)
            elif q == "pickle.dumps" and node.args:
                payload = [node.args[0]]
        for expr in payload:
            reason = self._unpicklable(expr)
            if reason is not None:
                self.boundary_sites.append(BoundarySite(
                    line=expr.lineno, col=expr.col_offset, reason=reason,
                ))

    def _unpicklable(self, expr: ast.expr) -> Optional[str]:
        if isinstance(expr, ast.Lambda):
            return "a lambda (unpicklable)"
        if isinstance(expr, ast.Starred):
            return self._unpicklable(expr.value)
        if isinstance(expr, (ast.Tuple, ast.List)):
            for elt in expr.elts:
                reason = self._unpicklable(elt)
                if reason is not None:
                    return reason
            return None
        if isinstance(expr, ast.Name):
            if expr.id in self.nested_defs:
                return f"nested function {expr.id!r} (unpicklable)"
            kind = self.local_kinds.get(expr.id)
            if kind is not None:
                return kind
            if expr.id == "self" and self._self_unpicklable():
                return (
                    f"'self' of {self.owner.name} "  # type: ignore[union-attr]
                    f"(owns a lock or tracer)"
                )
            return None
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and self.owner is not None
        ):
            if expr.attr in self.owner.lock_attrs:
                return f"lock attribute self.{expr.attr}"
            t = self.owner.attr_types.get(expr.attr)
            if t is not None and t.rsplit(".", 1)[-1] == "TraceRecorder":
                return f"tracer attribute self.{expr.attr}"
        return None

    def _self_unpicklable(self) -> bool:
        if self.owner is None:
            return False
        if self.owner.lock_attrs:
            return True
        return any(
            t.rsplit(".", 1)[-1] == "TraceRecorder"
            for t in self.owner.attr_types.values()
        )


def _is_declared_pure(
    node: ast.FunctionDef | ast.AsyncFunctionDef, aliases: dict[str, str]
) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        if isinstance(target, ast.Name) and target.id in PURE_DECORATORS:
            return True
        q = _qualname(target, aliases)
        if q is not None and (
            q in PURE_DECORATORS or q.endswith(".declared_pure")
        ):
            return True
    return False


def _scan_class(
    scan: _ModuleScan, node: ast.ClassDef
) -> _ClassInfo:
    info = _ClassInfo(
        name=node.name,
        qualid=f"{scan.module_id}.{node.name}",
        line=node.lineno,
    )
    for base in node.bases:
        if isinstance(base, ast.Name):
            resolved = scan.resolve_class(base.id)
            if resolved is not None:
                info.bases.append(resolved)
        else:
            q = _qualname(base, scan.aliases)
            if q is not None:
                info.bases.append(q)
    # first pass: lock attributes and instance-attribute types, so the
    # method walks that follow can classify regions and receivers
    for stmt in node.body:
        if (
            isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            and stmt.name == "__init__"
        ):
            params = {
                a.arg: scan.annotation_type(a.annotation)
                for a in [
                    *stmt.args.posonlyargs, *stmt.args.args,
                    *stmt.args.kwonlyargs,
                ]
            }
            for sub in ast.walk(stmt):
                if not isinstance(sub, ast.Assign):
                    continue
                for target in sub.targets:
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        continue
                    value = sub.value
                    if isinstance(value, ast.Call):
                        q = _qualname(value.func, scan.aliases)
                        if q in LOCK_CONSTRUCTORS:
                            info.lock_attrs.append(target.attr)
                            continue
                        ctor = None
                        if isinstance(value.func, ast.Name):
                            ctor = scan.resolve_class(value.func.id)
                        elif q is not None:
                            ctor = q
                        if ctor is not None:
                            info.attr_types[target.attr] = ctor
                    elif isinstance(value, ast.Name):
                        t = params.get(value.id)
                        if t is not None:
                            info.attr_types[target.attr] = t
    return info


def _class_facts(info: _ClassInfo) -> ClassFacts:
    """Fold recorded accesses into guarded attrs + discipline breaches."""
    guarded = sorted({
        attr
        for attr, _, _, method, write, locked in info.accesses
        if write and locked and method not in INIT_METHODS
    })
    guarded_set = set(guarded)
    # dedup by site; a write at a site dominates a read
    sites: dict[tuple[str, int, int, str], bool] = {}
    for attr, line, col, method, write, locked in info.accesses:
        if attr not in guarded_set or locked or method in INIT_METHODS:
            continue
        key = (attr, line, col, method)
        sites[key] = sites.get(key, False) or write
    unguarded = [
        AccessSite(attr=attr, line=line, col=col, method=method, write=write)
        for (attr, line, col, method), write in sorted(sites.items(),
                                                       key=lambda i: i[0][1:])
    ]
    return ClassFacts(
        name=info.name,
        qualid=info.qualid,
        line=info.line,
        bases=info.bases,
        lock_attrs=sorted(info.lock_attrs),
        attr_types=dict(sorted(info.attr_types.items())),
        guarded_attrs=guarded,
        unguarded_sites=unguarded,
        unlocked_helper_calls=sorted(
            info.unlocked_helper_calls, key=lambda s: (s.line, s.col)
        ),
    )


def extract_module(ctx: FileContext) -> ModuleFacts:
    """Extract all interprocedural facts from one parsed file."""
    scan = _ModuleScan(ctx)
    facts = ModuleFacts(
        module_id=scan.module_id, display_path=ctx.display_path
    )
    for stmt in ctx.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            walker = _FunctionWalker(
                scan, stmt, f"{scan.module_id}.{stmt.name}", None,
                facts.boundary_sites,
            )
            facts.functions.append(walker.facts)
        elif isinstance(stmt, ast.ClassDef):
            info = _scan_class(scan, stmt)
            for sub in stmt.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    walker = _FunctionWalker(
                        scan, sub, f"{info.qualid}.{sub.name}", info,
                        facts.boundary_sites,
                    )
                    facts.functions.append(walker.facts)
            facts.classes.append(_class_facts(info))
    facts.boundary_sites.sort(key=lambda b: (b.line, b.col))
    return facts
