"""ProjectContext: the whole-project view handed to project rules.

Assembled by the engine after every file's facts exist (freshly
extracted or loaded from the incremental cache).  Carries the call
graph, lazily computed lock-acquisition fixpoint, per-file source lines
(for finding snippets) and the engine's waiver tables — so a rule can
honour an *origin-line* pragma in one file while anchoring its finding
in another, and the pragma still counts as used for the LNT002 audit.
"""

from __future__ import annotations

from typing import Optional

from ..findings import Finding, Severity
from ..pragmas import WaiverTable
from .analysis import transitive_acquires
from .callgraph import CallGraph
from .model import ModuleFacts


class ProjectContext:
    """Everything a :class:`~repro.lint.rules.base.ProjectRule` may ask."""

    def __init__(
        self,
        modules: list[ModuleFacts],
        lines: dict[str, list[str]],
        waivers: Optional[dict[str, WaiverTable]] = None,
    ) -> None:
        self.modules = sorted(modules, key=lambda m: m.display_path)
        self.lines = lines
        self.waivers = waivers or {}
        self.graph = CallGraph(self.modules)
        self._acquires: Optional[dict[str, set[str]]] = None

    @property
    def acquires(self) -> dict[str, set[str]]:
        """Transitive lock-acquisition sets (computed once, on demand)."""
        if self._acquires is None:
            self._acquires = transitive_acquires(self.graph)
        return self._acquires

    def snippet(self, path: str, line: int) -> str:
        lines = self.lines.get(path, [])
        if 0 < line <= len(lines):
            return lines[line - 1].strip()
        return ""

    def try_waive(self, rule: str, path: str, line: int) -> bool:
        """Consume a waiver at an arbitrary project location.

        Used for origin-line suppression: a PURE001 pragma on the line
        *performing* an effect excuses every declared-pure chain that
        reaches it (and is marked used, keeping the LNT002 audit
        honest).
        """
        table = self.waivers.get(path)
        return table is not None and table.try_waive(rule, line)

    def finding(
        self,
        rule_id: str,
        severity: Severity,
        path: str,
        line: int,
        col: int,
        message: str,
    ) -> Finding:
        return Finding(
            rule=rule_id,
            severity=severity,
            path=path,
            line=line,
            col=col,
            message=message,
            snippet=self.snippet(path, line),
        )
