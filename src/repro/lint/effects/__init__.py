"""Interprocedural effect & concurrency analysis for ``repro.lint``.

The per-file rule pack (DET/PAR/EXC/API) sees one AST at a time; the
rules added in this package — purity contracts (PURE001/PURE002), lock
discipline (RACE001/RACE002), executor-boundary safety (XPB001) and
async blocking (BLK001) — need whole-project knowledge.  The pipeline:

* :mod:`~repro.lint.effects.extract` turns each
  :class:`~repro.lint.context.FileContext` into a
  :class:`~repro.lint.effects.model.ModuleFacts`: per-function direct
  effects, call sites, lock acquisitions, plus per-class lock-discipline
  facts — everything later phases need, with **no AST retained** (facts
  serialise to JSON for the incremental cache);
* :mod:`~repro.lint.effects.callgraph` indexes every module's facts and
  resolves call sites to project functions (imports, relative imports,
  ``self.method`` through base classes, locals bound to project-class
  constructors or annotations);
* :mod:`~repro.lint.effects.analysis` propagates summaries over the
  graph: transitive lock-acquisition sets to a fixpoint (RACE002) and
  shortest effect witness chains via BFS (PURE001/BLK001);
* :mod:`~repro.lint.effects.project` bundles the above with the
  engine's waiver tables into the :class:`ProjectContext` handed to
  every :class:`~repro.lint.rules.base.ProjectRule`.

Resolution is deliberately *optimistic*: a call that cannot be resolved
statically (dynamic dispatch through stored callables, ``getattr``,
higher-order arguments) is assumed effect-free.  The per-file rules
remain the backstop at every definition site, so an effect missed on
one path is still caught where it textually occurs.
"""

from .model import (
    EFFECT_KINDS,
    CallRecord,
    ClassFacts,
    EffectRecord,
    FunctionFacts,
    LockEvent,
    ModuleFacts,
)
from .project import ProjectContext

__all__ = [
    "EFFECT_KINDS",
    "CallRecord",
    "ClassFacts",
    "EffectRecord",
    "FunctionFacts",
    "LockEvent",
    "ModuleFacts",
    "ProjectContext",
]
