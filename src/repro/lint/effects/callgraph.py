"""Project call graph: index every module's facts, resolve call sites.

Resolution is name-based and optimistic: a :class:`CallRecord` either
resolves to exactly one project function (module function, imported
function, method found by walking the class-hierarchy chain recorded in
:class:`ClassFacts.bases`) or to nothing.  ``direct`` records whose
target names a project *class* resolve to its ``__init__`` when one is
defined — constructing an object runs its initialiser's effects.
"""

from __future__ import annotations

from typing import Optional

from .model import CallRecord, ClassFacts, FunctionFacts, ModuleFacts


class CallGraph:
    """Function/class/lock index over a set of extracted modules."""

    def __init__(self, modules: list[ModuleFacts]) -> None:
        self.functions: dict[str, FunctionFacts] = {}
        self.function_path: dict[str, str] = {}
        self.classes: dict[str, ClassFacts] = {}
        self.class_path: dict[str, str] = {}
        #: every ``<class id>.<attr>`` that names a real lock attribute
        self.known_locks: set[str] = set()
        for mod in sorted(modules, key=lambda m: m.display_path):
            for fn in mod.functions:
                self.functions.setdefault(fn.qualid, fn)
                self.function_path.setdefault(fn.qualid, mod.display_path)
            for cls in mod.classes:
                self.classes.setdefault(cls.qualid, cls)
                self.class_path.setdefault(cls.qualid, mod.display_path)
                for attr in cls.lock_attrs:
                    self.known_locks.add(f"{cls.qualid}.{attr}")
        # resolved out-edges per function, in call-record order, deduped
        self._out: dict[str, list[tuple[str, CallRecord]]] = {}
        for qualid, fn in self.functions.items():
            seen: set[str] = set()
            edges: list[tuple[str, CallRecord]] = []
            for rec in fn.calls:
                target = self.resolve(rec)
                if target is not None and target not in seen:
                    seen.add(target)
                    edges.append((target, rec))
            self._out[qualid] = edges

    def resolve(self, rec: CallRecord) -> Optional[str]:
        """Project function a call record denotes, or None."""
        if rec.kind == "direct":
            if rec.target in self.functions:
                return rec.target
            if rec.target in self.classes:
                return self.resolve_method(rec.target, "__init__")
            return None
        cls, _, method = rec.target.partition("|")
        return self.resolve_method(cls, method)

    def resolve_method(self, cls: str, method: str) -> Optional[str]:
        """Find ``method`` on ``cls`` or the nearest base defining it."""
        seen: set[str] = set()
        queue = [cls]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            qualid = f"{current}.{method}"
            if qualid in self.functions:
                return qualid
            info = self.classes.get(current)
            if info is not None:
                queue.extend(info.bases)
        return None

    def callees(self, qualid: str) -> list[tuple[str, CallRecord]]:
        """Resolved (target, call record) out-edges, document order."""
        return self._out.get(qualid, [])
