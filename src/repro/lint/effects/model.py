"""Fact model for the interprocedural analysis.

Every dataclass here is a plain, JSON-serialisable record: the
incremental lint cache persists :class:`ModuleFacts` keyed by file
content hash, so a warm run never re-parses an unchanged file.  The
``to_dict``/``from_dict`` pairs are the cache schema — bump
:data:`FACTS_SCHEMA_VERSION` when any field changes shape (the cache
also salts its keys with a hash of the lint package sources, so code
changes invalidate entries even without a bump).

Identifiers
-----------
Functions are keyed by *qualified id*: ``repro.<module>.<name>`` for
module-level functions and ``repro.<module>.<Class>.<name>`` for
methods (``repro.core.orchestrator.Orchestrator.record``).  Locks are
keyed by owner class and attribute:
``repro.core.orchestrator.Orchestrator._lock``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

FACTS_SCHEMA_VERSION = 1

#: effect kinds an extracted :class:`EffectRecord` may carry.
#: ``timing`` (``time.perf_counter`` and friends) is tracked but *not*
#: banned by PURE001: host timing feeds only the ``wall_time_s`` /
#: ``phase_timings`` diagnostics every canonical payload strips.
EFFECT_KINDS = (
    "rng",          # unkeyed randomness / OS entropy
    "wall_clock",   # host wall-clock reads
    "timing",       # host timing clocks (pure-tolerated)
    "io",           # filesystem access
    "global_write", # module-global mutation at call time
    "blocking",     # sleeps, subprocesses, sync network
)

#: kinds whose transitive presence violates a ``@declared_pure`` contract
PURE_BANNED_KINDS = ("rng", "wall_clock", "io", "global_write", "blocking")


@dataclass(frozen=True)
class EffectRecord:
    """One direct effect observed in a function body."""

    kind: str
    line: int
    detail: str  # e.g. "numpy.random.default_rng" or "open"

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "line": self.line, "detail": self.detail}

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "EffectRecord":
        return cls(kind=d["kind"], line=d["line"], detail=d["detail"])


@dataclass(frozen=True)
class CallRecord:
    """One call site, resolved as far as file-local knowledge allows.

    ``kind`` is ``"direct"`` when ``target`` is a dotted name (project
    function candidate or external qualname) and ``"method"`` when the
    receiver's class is known but the defining class may be a base:
    ``target`` is then ``"<class id>|<method name>"`` and the call
    graph walks the class hierarchy to find the definition.
    """

    line: int
    kind: str  # "direct" | "method"
    target: str
    display: str  # human-readable form for witness chains

    def to_dict(self) -> dict[str, Any]:
        return {
            "line": self.line,
            "kind": self.kind,
            "target": self.target,
            "display": self.display,
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "CallRecord":
        return cls(
            line=d["line"], kind=d["kind"], target=d["target"],
            display=d["display"],
        )


@dataclass
class LockEvent:
    """One ``with <lock>:`` region: what ran while the lock was held."""

    lock: str  # candidate lock id; validated against known locks later
    line: int
    inner_calls: list[CallRecord] = field(default_factory=list)
    inner_locks: list[tuple[str, int]] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "lock": self.lock,
            "line": self.line,
            "inner_calls": [c.to_dict() for c in self.inner_calls],
            "inner_locks": [list(t) for t in self.inner_locks],
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "LockEvent":
        return cls(
            lock=d["lock"],
            line=d["line"],
            inner_calls=[CallRecord.from_dict(c) for c in d["inner_calls"]],
            inner_locks=[(t[0], t[1]) for t in d["inner_locks"]],
        )


@dataclass
class FunctionFacts:
    """Per-function summary: direct effects, calls, lock acquisitions."""

    qualid: str
    name: str
    line: int
    is_async: bool = False
    declared_pure: bool = False
    effects: list[EffectRecord] = field(default_factory=list)
    calls: list[CallRecord] = field(default_factory=list)
    acquires: list[LockEvent] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "qualid": self.qualid,
            "name": self.name,
            "line": self.line,
            "is_async": self.is_async,
            "declared_pure": self.declared_pure,
            "effects": [e.to_dict() for e in self.effects],
            "calls": [c.to_dict() for c in self.calls],
            "acquires": [a.to_dict() for a in self.acquires],
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "FunctionFacts":
        return cls(
            qualid=d["qualid"],
            name=d["name"],
            line=d["line"],
            is_async=d["is_async"],
            declared_pure=d["declared_pure"],
            effects=[EffectRecord.from_dict(e) for e in d["effects"]],
            calls=[CallRecord.from_dict(c) for c in d["calls"]],
            acquires=[LockEvent.from_dict(a) for a in d["acquires"]],
        )


@dataclass(frozen=True)
class AccessSite:
    """A guarded-attribute access outside its lock (RACE001 evidence)."""

    attr: str
    line: int
    col: int
    method: str
    write: bool

    def to_dict(self) -> dict[str, Any]:
        return {
            "attr": self.attr, "line": self.line, "col": self.col,
            "method": self.method, "write": self.write,
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "AccessSite":
        return cls(
            attr=d["attr"], line=d["line"], col=d["col"],
            method=d["method"], write=d["write"],
        )


@dataclass
class ClassFacts:
    """Per-class lock-discipline facts (fully file-local).

    ``guarded_attrs`` are instance attributes written inside a
    ``with self.<lock>:`` region by any method other than
    ``__init__``/``__post_init__`` — writing under the lock is the
    class's own declaration that the attribute is shared.
    ``unguarded_sites`` are accesses (read or write) of those
    attributes outside any lock region; ``unlocked_helper_calls`` are
    calls of ``self.<x>_locked()`` helpers made without the lock held
    (the ``*_locked`` suffix is the project convention for
    "caller must hold the lock").
    """

    name: str
    qualid: str
    line: int
    bases: list[str] = field(default_factory=list)
    lock_attrs: list[str] = field(default_factory=list)
    attr_types: dict[str, str] = field(default_factory=dict)
    guarded_attrs: list[str] = field(default_factory=list)
    unguarded_sites: list[AccessSite] = field(default_factory=list)
    unlocked_helper_calls: list[AccessSite] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "qualid": self.qualid,
            "line": self.line,
            "bases": list(self.bases),
            "lock_attrs": list(self.lock_attrs),
            "attr_types": dict(self.attr_types),
            "guarded_attrs": list(self.guarded_attrs),
            "unguarded_sites": [s.to_dict() for s in self.unguarded_sites],
            "unlocked_helper_calls": [
                s.to_dict() for s in self.unlocked_helper_calls
            ],
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "ClassFacts":
        return cls(
            name=d["name"],
            qualid=d["qualid"],
            line=d["line"],
            bases=list(d["bases"]),
            lock_attrs=list(d["lock_attrs"]),
            attr_types=dict(d["attr_types"]),
            guarded_attrs=list(d["guarded_attrs"]),
            unguarded_sites=[
                AccessSite.from_dict(s) for s in d["unguarded_sites"]
            ],
            unlocked_helper_calls=[
                AccessSite.from_dict(s) for s in d["unlocked_helper_calls"]
            ],
        )


@dataclass(frozen=True)
class BoundarySite:
    """An unpicklable value crossing an executor boundary (XPB001)."""

    line: int
    col: int
    reason: str

    def to_dict(self) -> dict[str, Any]:
        return {"line": self.line, "col": self.col, "reason": self.reason}

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "BoundarySite":
        return cls(line=d["line"], col=d["col"], reason=d["reason"])


@dataclass
class ModuleFacts:
    """Everything the project phase needs to know about one file."""

    module_id: str  # dotted id, e.g. "repro.core.orchestrator"
    display_path: str
    functions: list[FunctionFacts] = field(default_factory=list)
    classes: list[ClassFacts] = field(default_factory=list)
    boundary_sites: list[BoundarySite] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": FACTS_SCHEMA_VERSION,
            "module_id": self.module_id,
            "display_path": self.display_path,
            "functions": [f.to_dict() for f in self.functions],
            "classes": [c.to_dict() for c in self.classes],
            "boundary_sites": [b.to_dict() for b in self.boundary_sites],
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> Optional["ModuleFacts"]:
        if d.get("schema") != FACTS_SCHEMA_VERSION:
            return None
        return cls(
            module_id=d["module_id"],
            display_path=d["display_path"],
            functions=[FunctionFacts.from_dict(f) for f in d["functions"]],
            classes=[ClassFacts.from_dict(c) for c in d["classes"]],
            boundary_sites=[
                BoundarySite.from_dict(b) for b in d["boundary_sites"]
            ],
        )
