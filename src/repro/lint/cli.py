"""``repro lint``: the CLI face of the static-analysis gate.

Exit codes follow CI conventions: 0 clean, 1 findings, 2 usage error.
The report goes to **stdout** (text or ``--format json``); diagnostics
flow through :mod:`repro.obs.log` to stderr like every other
subcommand, so piped output stays machine-readable.
"""

from __future__ import annotations

import argparse

from pathlib import Path

from ..obs.log import get_logger
from .baseline import Baseline, BaselineError
from .cache import DEFAULT_CACHE_DIR
from .engine import EXIT_USAGE, LintUsageError, run_lint
from .report import render_json, render_text
from .rules import catalogue

_log = get_logger("lint")


def _changed_paths(ref: str) -> set[Path]:
    """Files changed vs ``ref`` plus untracked files, resolved."""
    import subprocess

    out = b""
    for cmd in (
        ["git", "diff", "--name-only", "-z", ref, "--"],
        ["git", "ls-files", "--others", "--exclude-standard", "-z"],
    ):
        try:
            proc = subprocess.run(cmd, capture_output=True, check=True)
        except FileNotFoundError as exc:
            raise LintUsageError("--changed requires git on PATH") from exc
        except subprocess.CalledProcessError as exc:
            detail = exc.stderr.decode("utf-8", "replace").strip()
            raise LintUsageError(
                f"--changed: git failed ({detail or ref!r} not resolvable?)"
            ) from exc
        out += proc.stdout
    return {
        Path(name).resolve()
        for name in out.decode("utf-8", "replace").split("\0")
        if name
    }


def add_lint_parser(sub: "argparse._SubParsersAction") -> None:
    """Register the ``lint`` subcommand on the main parser."""
    lint = sub.add_parser(
        "lint",
        help="AST-based determinism & reproducibility linter",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files or directories to lint (e.g. src/)",
    )
    lint.add_argument(
        "--rule",
        dest="rules",
        action="append",
        metavar="RULE",
        help="only run this rule (repeatable; default: all)",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format on stdout (default: text)",
    )
    lint.add_argument(
        "--changed",
        nargs="?",
        const="HEAD",
        default=None,
        metavar="REF",
        help=(
            "only report findings for files changed vs the git ref "
            "(default HEAD) plus untracked files; the whole tree is "
            "still analyzed for project-wide effect summaries"
        ),
    )
    lint.add_argument(
        "--cache",
        nargs="?",
        const=DEFAULT_CACHE_DIR,
        default=None,
        metavar="DIR",
        help=(
            "incremental cache directory keyed by content hash "
            f"(default when enabled: {DEFAULT_CACHE_DIR})"
        ),
    )
    lint.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="tolerate findings recorded in this baseline file",
    )
    lint.add_argument(
        "--write-baseline",
        metavar="FILE",
        default=None,
        help="snapshot current unwaived findings to FILE and exit 0",
    )
    lint.add_argument(
        "--show-suppressed",
        action="store_true",
        help="include waived/baselined findings in the text report",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )


def cmd_lint(args: argparse.Namespace) -> int:
    """Run the linter; return the process exit code."""
    if args.list_rules:
        for rule_id, severity, summary in catalogue():
            print(f"{rule_id}  {severity:<7}  {summary}")
        return 0
    if not args.paths:
        _log.error("no paths given; try 'repro lint src/'")
        return EXIT_USAGE
    try:
        changed = (
            _changed_paths(args.changed) if args.changed is not None else None
        )
        result = run_lint(
            args.paths,
            rules=args.rules,
            baseline=args.baseline,
            changed=changed,
            cache_dir=args.cache,
        )
    except (LintUsageError, BaselineError) as exc:
        _log.error("%s", exc)
        return EXIT_USAGE
    if args.cache is not None:
        _log.info(
            "analyzed %d file(s), %d served from cache (%s)",
            result.files_checked, result.files_cached, args.cache,
        )
    if changed is not None:
        _log.info(
            "--changed %s: reporting findings for changed files only",
            args.changed,
        )

    if args.write_baseline is not None:
        unwaived = [f for f in result.findings if not f.waived]
        Baseline.snapshot(result.findings).write(
            args.write_baseline, findings=unwaived
        )
        _log.info(
            "wrote %s (%d findings grandfathered)",
            args.write_baseline,
            len(unwaived),
        )
        return 0

    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result, show_suppressed=args.show_suppressed))
    if result.active:
        _log.error(
            "lint failed: %d error(s), %d warning(s)",
            result.errors,
            result.warnings,
        )
    return result.exit_code
