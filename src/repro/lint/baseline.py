"""Checked-in baseline: grandfathered findings that don't fail the run.

The baseline is a JSON file mapping finding fingerprints (rule + path +
offending line content — line numbers excluded so pure line shifts
don't invalidate entries) to the count of occurrences tolerated.  The
engine marks matching findings ``baselined``; anything beyond the
recorded count (a *new* violation, even of a grandfathered kind) still
fails.  ``repro lint --write-baseline`` snapshots the current findings.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Iterable

from .findings import Finding

BASELINE_SCHEMA_VERSION = 1


class BaselineError(ValueError):
    """Malformed baseline file."""


class Baseline:
    """Fingerprint multiset with match bookkeeping."""

    def __init__(self, entries: dict[str, int] | None = None) -> None:
        self.entries: Counter[str] = Counter(entries or {})
        self._remaining: Counter[str] = Counter(self.entries)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        try:
            payload = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != BASELINE_SCHEMA_VERSION
            or not isinstance(payload.get("findings"), list)
        ):
            raise BaselineError(
                f"baseline {path} is not a schema-v{BASELINE_SCHEMA_VERSION} "
                f"repro-lint baseline"
            )
        entries: Counter[str] = Counter()
        for item in payload["findings"]:
            if not isinstance(item, dict) or "fingerprint" not in item:
                raise BaselineError(
                    f"baseline {path}: entry without fingerprint: {item!r}"
                )
            entries[str(item["fingerprint"])] += int(item.get("count", 1))
        return cls(dict(entries))

    @classmethod
    def snapshot(cls, findings: Iterable[Finding]) -> "Baseline":
        """Baseline tolerating exactly the given unwaived findings."""
        return cls(
            dict(Counter(f.fingerprint() for f in findings if not f.waived))
        )

    def absorb(self, finding: Finding) -> bool:
        """Mark the finding baselined if budget for its print remains."""
        fp = finding.fingerprint()
        if self._remaining[fp] > 0:
            self._remaining[fp] -= 1
            finding.baselined = True
            return True
        return False

    def write(
        self, path: str | Path, findings: Iterable[Finding] | None = None
    ) -> None:
        """Serialise; ``findings`` adds human-readable context per entry."""
        context: dict[str, dict[str, object]] = {}
        for f in findings or ():
            context.setdefault(
                f.fingerprint(),
                {"rule": f.rule, "path": f.path, "snippet": f.snippet},
            )
        payload = {
            "schema": BASELINE_SCHEMA_VERSION,
            "findings": [
                {"fingerprint": fp, "count": count, **context.get(fp, {})}
                for fp, count in sorted(self.entries.items())
            ],
        }
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=False) + "\n"
        )
