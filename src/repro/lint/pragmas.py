"""Waiver pragmas: ``# repro-lint: disable=RULE[,RULE] -- justification``.

Two forms are recognised:

* **Line pragma** — trailing comment on the offending line, or a
  comment-only line directly above it (continuation comment lines are
  allowed between pragma and code)::

      t0 = time.perf_counter()  # repro-lint: disable=DET001 -- timing

      # repro-lint: disable=DET001 -- host wall time feeds only the
      # wall_time_s metric, never simulation state
      t0 = time.perf_counter()

  (the justification must follow ``--`` on the pragma line itself);

* **File pragma** — a comment on a line of its own, waiving the listed
  rules for the whole file::

      # repro-lint: disable-file=DET001 -- phase timing instrumentation

Every pragma **must** carry a justification after ``--``; a bare
``disable=`` is itself a finding (LNT001).  Pragmas that waive nothing
are reported as LNT002 so stale waivers cannot accumulate, and unknown
rule ids in a pragma are LNT003.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from .findings import Finding, Severity

PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable|disable-file)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
    r"(?:\s*--\s*(?P<why>.*\S))?\s*$"
)

# Findings produced by the pragma machinery itself; they cannot be
# waived by pragmas (a waiver that excuses its own audit is useless).
UNJUSTIFIED_WAIVER = "LNT001"
UNUSED_WAIVER = "LNT002"
UNKNOWN_RULE = "LNT003"
META_RULES = (UNJUSTIFIED_WAIVER, UNUSED_WAIVER, UNKNOWN_RULE)


@dataclass
class Pragma:
    """One parsed pragma comment."""

    line: int
    kind: str  # "disable" | "disable-file"
    rules: tuple[str, ...]
    justification: str
    applies_to: int = 0  # code line the pragma covers (line pragmas)
    used: set[str] = field(default_factory=set)

    @property
    def file_scoped(self) -> bool:
        return self.kind == "disable-file"


def _comment_tokens(source: str) -> list[tuple[int, str]]:
    """(line, text) of every real comment token — docstrings and string
    literals that merely *mention* a pragma never count."""
    out: list[tuple[int, str]] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type == tokenize.COMMENT:
                out.append((tok.start[0], tok.string))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass  # unparseable files are reported as LNT000 by the engine
    return out


def parse_pragmas(source: str) -> list[Pragma]:
    """Extract every pragma comment from source text."""
    out: list[Pragma] = []
    for lineno, text in _comment_tokens(source):
        m = PRAGMA_RE.search(text)
        if m is None:
            continue
        rules = tuple(
            r.strip().upper() for r in m.group("rules").split(",") if r.strip()
        )
        out.append(
            Pragma(
                line=lineno,
                kind=m.group("kind"),
                rules=rules,
                justification=(m.group("why") or "").strip(),
            )
        )
    return out


def _resolve_target(pragma: Pragma, lines: list[str]) -> int:
    """The code line a line pragma covers.

    A trailing pragma covers its own line; a pragma on a comment-only
    line covers the next line holding code (intervening comment or
    blank lines — e.g. a continued justification — are skipped).
    """
    idx = pragma.line - 1
    if idx >= len(lines):
        return pragma.line
    own = lines[idx].strip()
    if not own.startswith("#"):
        return pragma.line
    for later in range(pragma.line, len(lines)):
        text = lines[later].strip()
        if text and not text.startswith("#"):
            return later + 1
    return pragma.line


class WaiverTable:
    """Pragma lookup plus bookkeeping for LNT001/LNT002/LNT003."""

    def __init__(self, path: str, source: str) -> None:
        self.path = path
        self.pragmas = parse_pragmas(source)
        lines = source.splitlines()
        self._by_line: dict[int, list[Pragma]] = {}
        self._file_wide: list[Pragma] = []
        for p in self.pragmas:
            if p.file_scoped:
                self._file_wide.append(p)
            else:
                p.applies_to = _resolve_target(p, lines)
                self._by_line.setdefault(p.applies_to, []).append(p)

    def try_waive(self, rule: str, line: int) -> bool:
        """Waive ``rule`` at ``line`` if a pragma covers it."""
        if rule in META_RULES:
            return False
        for p in self._by_line.get(line, ()):
            if rule in p.rules:
                p.used.add(rule)
                return True
        for p in self._file_wide:
            if rule in p.rules:
                p.used.add(rule)
                return True
        return False

    def audit(self, known_rules: set[str], lines: list[str]) -> list[Finding]:
        """Meta-findings: unjustified, unused, or unknown-rule pragmas."""
        out: list[Finding] = []

        def snippet(line: int) -> str:
            return lines[line - 1].strip() if 0 < line <= len(lines) else ""

        for p in self.pragmas:
            if not p.justification:
                out.append(
                    Finding(
                        rule=UNJUSTIFIED_WAIVER,
                        severity=Severity.ERROR,
                        path=self.path,
                        line=p.line,
                        col=0,
                        message=(
                            "waiver pragma lacks a justification; append "
                            "'-- <why this is safe>' to the pragma"
                        ),
                        snippet=snippet(p.line),
                    )
                )
            for rule in p.rules:
                if rule not in known_rules or rule in META_RULES:
                    out.append(
                        Finding(
                            rule=UNKNOWN_RULE,
                            severity=Severity.ERROR,
                            path=self.path,
                            line=p.line,
                            col=0,
                            message=(
                                f"pragma names unknown or unwaivable rule "
                                f"{rule!r}"
                            ),
                            snippet=snippet(p.line),
                        )
                    )
                elif rule not in p.used:
                    out.append(
                        Finding(
                            rule=UNUSED_WAIVER,
                            severity=Severity.WARNING,
                            path=self.path,
                            line=p.line,
                            col=0,
                            message=(
                                f"pragma waives {rule} but nothing on "
                                f"{'this file' if p.file_scoped else 'this line'} "
                                f"triggers it; delete the stale waiver"
                            ),
                            snippet=snippet(p.line),
                        )
                    )
        return out
