"""API001: public simulation APIs must be fully type-annotated.

mypy runs strict on ``repro.sim``/``repro.sched``/``repro.core`` (see
``pyproject.toml``); this rule catches annotation gaps in the public
surface of those packages without needing mypy installed, so `repro
lint` alone keeps the typing gate honest.  Public means: module-level
functions and methods of public classes whose names don't start with an
underscore (``__init__`` counts — strict mypy wants its ``-> None``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import FileContext
from ..findings import Finding, Severity
from .base import Rule, register

TYPED_PACKAGES = ("sim", "sched", "core")


def _is_public(name: str) -> bool:
    if name == "__init__":
        return True
    return not name.startswith("_")


def _missing_parts(func: ast.FunctionDef | ast.AsyncFunctionDef,
                   is_method: bool) -> list[str]:
    missing: list[str] = []
    args = func.args
    positional = [*args.posonlyargs, *args.args]
    if is_method and positional:
        positional = positional[1:]  # self/cls carries no annotation
    for arg in [*positional, *args.kwonlyargs]:
        if arg.annotation is None:
            missing.append(f"parameter {arg.arg!r}")
    if args.vararg is not None and args.vararg.annotation is None:
        missing.append(f"parameter '*{args.vararg.arg}'")
    if args.kwarg is not None and args.kwarg.annotation is None:
        missing.append(f"parameter '**{args.kwarg.arg}'")
    if func.returns is None:
        missing.append("return type")
    return missing


@register
class Api001MissingAnnotations(Rule):
    """Public repro.core/sched/sim callables missing type annotations."""

    id = "API001"
    severity = Severity.WARNING
    summary = (
        "public function in repro.core/repro.sched/repro.sim missing "
        "parameter or return annotations"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_packages(*TYPED_PACKAGES):
            return
        for stmt in ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _is_public(stmt.name):
                    yield from self._check_func(ctx, stmt, is_method=False)
            elif isinstance(stmt, ast.ClassDef) and _is_public(stmt.name):
                for item in stmt.body:
                    if isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ) and _is_public(item.name):
                        is_static = any(
                            isinstance(d, ast.Name) and d.id == "staticmethod"
                            for d in item.decorator_list
                        )
                        yield from self._check_func(
                            ctx, item, is_method=not is_static
                        )

    def _check_func(
        self,
        ctx: FileContext,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        is_method: bool,
    ) -> Iterator[Finding]:
        missing = _missing_parts(func, is_method)
        if missing:
            yield self.finding(
                ctx,
                func,
                f"public {'method' if is_method else 'function'} "
                f"{func.name}() is missing annotations: "
                f"{', '.join(missing)} (mypy runs strict on this package)",
            )
