"""PAR001: module-level state mutated inside functions.

The sweep engine (:mod:`repro.core.parallel`) dispatches task chunks to
*spawned* worker processes: module globals mutated at call time are
per-process, invisible to the parent, and make results depend on which
worker ran which chunk.  The rule flags both flavours of the hazard:

* rebinding a module-level name through a ``global`` statement, and
* in-place mutation (method call, subscript/augmented assignment) of a
  module-level name bound to a mutable literal or constructor.

Intentional per-process state (e.g. the worker-side config table that a
pool initializer installs exactly once before any task runs) must carry
a justified waiver.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import FileContext
from ..findings import Finding, Severity
from .base import Rule, register

MUTABLE_CONSTRUCTORS = {
    "list",
    "dict",
    "set",
    "bytearray",
    "collections.defaultdict",
    "collections.deque",
    "collections.Counter",
    "collections.OrderedDict",
}
MUTATING_METHODS = {
    "append",
    "extend",
    "insert",
    "add",
    "update",
    "setdefault",
    "pop",
    "popitem",
    "remove",
    "discard",
    "clear",
    "appendleft",
    "extendleft",
}


def _is_mutable_value(node: ast.expr, ctx: FileContext) -> bool:
    if isinstance(
        node,
        (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
    ):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name):
            if node.func.id in MUTABLE_CONSTRUCTORS:
                return True
        q = ctx.qualname(node.func)
        if q is not None and q in MUTABLE_CONSTRUCTORS:
            return True
    return False


@register
class Par001WorkerSharedState(Rule):
    """Module-level state mutated at call time breaks worker isolation."""

    id = "PAR001"
    severity = Severity.ERROR
    summary = (
        "module-level (mutable or rebound-via-global) state mutated "
        "inside a function"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        module_names: set[str] = set()
        mutable_names: set[str] = set()
        for stmt in ctx.tree.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                targets, value = [stmt.target], stmt.value
            for target in targets:
                if isinstance(target, ast.Name):
                    module_names.add(target.id)
                    if value is not None and _is_mutable_value(value, ctx):
                        mutable_names.add(target.id)

        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            declared_global: set[str] = set()
            for node in ast.walk(func):
                if isinstance(node, ast.Global):
                    declared_global.update(
                        n for n in node.names if n in module_names
                    )
            for node in ast.walk(func):
                finding = self._check_node(
                    ctx, func, node, declared_global, mutable_names
                )
                if finding is not None:
                    yield finding

    def _check_node(
        self,
        ctx: FileContext,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        node: ast.AST,
        declared_global: set[str],
        mutable_names: set[str],
    ) -> Finding | None:
        where = f"function {func.name}()"
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Name) and target.id in declared_global:
                    return self.finding(
                        ctx,
                        node,
                        f"{where} rebinds module global {target.id!r}; "
                        f"worker processes each rebind their own copy — "
                        f"pass state explicitly or return it",
                    )
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in mutable_names
                ):
                    return self.finding(
                        ctx,
                        node,
                        f"{where} writes into module-level "
                        f"{target.value.id!r}; cross-process mutation is "
                        f"invisible to the parent sweep",
                    )
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in mutable_names
                ):
                    return self.finding(
                        ctx,
                        node,
                        f"{where} deletes from module-level "
                        f"{target.value.id!r}; cross-process mutation is "
                        f"invisible to the parent sweep",
                    )
        elif isinstance(node, ast.Call):
            f = node.func
            if (
                isinstance(f, ast.Attribute)
                and f.attr in MUTATING_METHODS
                and isinstance(f.value, ast.Name)
                and f.value.id in mutable_names
            ):
                return self.finding(
                    ctx,
                    node,
                    f"{where} mutates module-level {f.value.id!r} via "
                    f".{f.attr}(); cross-process mutation is invisible "
                    f"to the parent sweep",
                )
        return None
