"""Purity contracts: PURE001 (declared pure ⇒ effect-free) and PURE002
(the functions correctness depends on must *be* declared pure).

The work-queue executor recomputes tasks on arbitrary workers, the
content-addressed cache deduplicates them across processes, and paired
replication reuses the NONE baseline across schemes — all sound only
because ``run_single`` is a pure function of ``(config, replication)``.
PURE001 checks the contract: a function decorated with
:func:`repro.contracts.declared_pure` must have a transitively empty
*banned* effect set (unkeyed RNG, wall clock, I/O, module-global
writes, blocking calls).  Host *timing* reads are tolerated — they feed
only the ``wall_time_s``/``phase_timings`` diagnostics the canonical
payloads strip.

PURE002 closes the other hole: deleting the decorator would silently
disable PURE001, so the registry below pins the functions that must
carry it whenever they exist in the analyzed tree.

Waiving: a ``disable=PURE001`` pragma on the ``def`` line excuses one
contract; a pragma on the *effect origin* line excuses that effect for
every chain that reaches it (both count as used for the LNT002 audit).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from ..effects.analysis import effect_chains
from ..effects.model import PURE_BANNED_KINDS, EffectRecord, FunctionFacts
from ..findings import Finding, Severity
from .base import ProjectRule, register

if TYPE_CHECKING:
    from ..effects.project import ProjectContext

#: qualified ids that must carry @declared_pure when present in the
#: analyzed tree (checked by PURE002; enforced effect-free by PURE001)
REQUIRED_PURE = (
    "repro.core.cache.config_fingerprint",
    "repro.core.experiment.run_single",
    "repro.obs.trace._dumps",
    "repro.service.jobs.canonical_grid_json",
    "repro.service.jobs.canonical_grid_payload",
)

KIND_LABEL = {
    "rng": "unkeyed randomness",
    "wall_clock": "a wall-clock read",
    "io": "filesystem I/O",
    "global_write": "a module-global write",
    "blocking": "a blocking call",
}


@register
class Pure001DeclaredPureEffects(ProjectRule):
    """A ``@declared_pure`` function transitively performs an effect."""

    id = "PURE001"
    severity = Severity.ERROR
    summary = (
        "@declared_pure function with a transitively non-empty effect "
        "set (RNG, wall clock, I/O, global write, blocking call)"
    )

    def check_project(self, project: "ProjectContext") -> Iterator[Finding]:
        graph = project.graph

        def suppress(
            owner: FunctionFacts, path: str, effect: EffectRecord
        ) -> bool:
            return project.try_waive(self.id, path, effect.line)

        for qualid in sorted(graph.functions):
            fn = graph.functions[qualid]
            if not fn.declared_pure:
                continue
            chains = effect_chains(
                graph, qualid, PURE_BANNED_KINDS, suppress
            )
            path = graph.function_path[qualid]
            for kind in PURE_BANNED_KINDS:
                chain = chains.get(kind)
                if chain is None:
                    continue
                yield project.finding(
                    self.id, self.severity, path, fn.line, 0,
                    f"{fn.name}() is @declared_pure but transitively "
                    f"performs {KIND_LABEL[kind]}: "
                    f"{chain.describe(fn.name + '()')}; make the callee "
                    f"pure, key the stream, or waive at the origin line",
                )


@register
class Pure002MissingPurityContract(ProjectRule):
    """A correctness-critical function lost its ``@declared_pure``."""

    id = "PURE002"
    severity = Severity.ERROR
    summary = (
        "cache/replay-critical function (run_single, fingerprinting, "
        "canonicalisation) missing its @declared_pure contract"
    )

    def check_project(self, project: "ProjectContext") -> Iterator[Finding]:
        for qualid in REQUIRED_PURE:
            fn = project.graph.functions.get(qualid)
            if fn is None or fn.declared_pure:
                continue
            path = project.graph.function_path[qualid]
            yield project.finding(
                self.id, self.severity, path, fn.line, 0,
                f"{fn.name}() underpins result caching and work-queue "
                f"replay; decorate it with @declared_pure "
                f"(repro.contracts) so PURE001 keeps enforcing its "
                f"effect-freedom",
            )
