"""Lock discipline: RACE001 (guarded attrs touched unlocked) and
RACE002 (lock-order cycles across classes).

The service layer is a small zoo of lock-owning classes —
``Orchestrator``, ``ChunkQueue``, ``JobStore``, ``SweepService``,
``RunJournal`` — each guarding its mutable state with one
``threading.Lock``.  The discipline model is declarative and local:

* an instance attribute **written inside ``with self.<lock>:`` by any
  method outside ``__init__``** is *guarded* — writing under the lock
  is the class's own statement that the attribute is shared;
* RACE001 then flags **every** access (read or write) of a guarded
  attribute outside a lock region.  ``__init__``/``__post_init__`` are
  exempt (no concurrent aliases exist yet), and so are methods named
  ``*_locked`` — the project convention for "caller must hold the
  lock"; calling such a helper *without* the lock is itself flagged;
* RACE002 builds the project-wide lock-order graph — an edge ``A → B``
  whenever some region holding ``A`` acquires ``B``, directly or
  through any transitively resolved call — and reports each cycle once:
  two threads taking the same pair of locks in opposite orders is a
  deadlock waiting for load.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from ..effects.analysis import lock_cycles, lock_order_edges
from ..findings import Finding, Severity
from .base import ProjectRule, register

if TYPE_CHECKING:
    from ..effects.project import ProjectContext


def _short(lock_id: str) -> str:
    """``repro.x.y.Cls._lock`` → ``Cls._lock`` for messages."""
    return ".".join(lock_id.rsplit(".", 2)[-2:])


@register
class Race001GuardedAttributeAccess(ProjectRule):
    """Guarded attribute touched outside its owner's lock region."""

    id = "RACE001"
    severity = Severity.ERROR
    summary = (
        "attribute of a lock-owning class accessed outside 'with "
        "self.<lock>' (guarded = written under the lock elsewhere)"
    )

    def check_project(self, project: "ProjectContext") -> Iterator[Finding]:
        for mod in project.modules:
            for cls in mod.classes:
                if not cls.lock_attrs:
                    continue
                lock = cls.lock_attrs[0]
                for site in cls.unguarded_sites:
                    verb = "writes" if site.write else "reads"
                    yield project.finding(
                        self.id, self.severity, mod.display_path,
                        site.line, site.col,
                        f"{cls.name}.{site.method}() {verb} "
                        f"self.{site.attr} outside 'with self.{lock}'; "
                        f"other methods write it under the lock, so this "
                        f"access races them — take the lock or copy the "
                        f"state out inside it",
                    )
                for site in cls.unlocked_helper_calls:
                    yield project.finding(
                        self.id, self.severity, mod.display_path,
                        site.line, site.col,
                        f"{cls.name}.{site.method}() calls "
                        f"self.{site.attr}() without holding "
                        f"self.{lock}; the '_locked' suffix means the "
                        f"caller must already own the lock",
                    )


@register
class Race002LockOrderCycle(ProjectRule):
    """Two lock-order paths acquire the same locks in opposite orders."""

    id = "RACE002"
    severity = Severity.ERROR
    summary = (
        "inconsistent lock acquisition order across classes (cycle in "
        "the project lock-order graph)"
    )

    def check_project(self, project: "ProjectContext") -> Iterator[Finding]:
        graph = project.graph
        edges = lock_order_edges(graph, project.acquires)
        for cycle in lock_cycles(edges):
            first = cycle[0]
            path = graph.function_path.get(first.holder, "")
            order = " -> ".join(
                [_short(e.held) for e in cycle] + [_short(cycle[0].held)]
            )
            holders = ", ".join(
                f"{_short(e.held)} before {_short(e.acquired)} in "
                f"{e.holder.rsplit('.', 1)[-1]}()"
                for e in cycle
            )
            yield project.finding(
                self.id, self.severity, path, first.line, 0,
                f"lock-order cycle {order}: {holders}; pick one global "
                f"acquisition order (or release before calling out) to "
                f"rule out deadlock",
            )
