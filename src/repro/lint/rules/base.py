"""Rule protocol and registry.

A rule is a class with an ``id``, a default :class:`Severity`, a
one-line ``summary`` (shown by ``repro lint --list-rules`` and in the
docs catalogue) and a ``check(ctx)`` generator yielding
:class:`~repro.lint.findings.Finding` objects.  Rules register
themselves with :func:`register`; the engine instantiates each rule
once per run and feeds it every file context.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Callable, Iterator, Type

from ..context import FileContext
from ..findings import Finding, Severity

if TYPE_CHECKING:
    from ..effects.project import ProjectContext


class Rule:
    """Base class: subclass, set the class attributes, implement check."""

    id: str = ""
    severity: Severity = Severity.ERROR
    summary: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        ctx: FileContext,
        node: ast.AST,
        message: str,
        severity: Severity | None = None,
    ) -> Finding:
        """Build a finding anchored at an AST node."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=self.id,
            severity=self.severity if severity is None else severity,
            path=ctx.display_path,
            line=line,
            col=col,
            message=message,
            snippet=ctx.line_at(line),
        )


class ProjectRule(Rule):
    """A rule that needs the whole-project interprocedural view.

    The engine runs ``check(ctx)`` per file for ordinary rules, then
    builds one :class:`~repro.lint.effects.project.ProjectContext` —
    every file's effect summaries, the call graph, the lock fixpoint —
    and runs ``check_project`` on it for rules subclassing this.
    Findings may anchor in *any* analyzed file.
    """

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project: "ProjectContext") -> Iterator[Finding]:
        raise NotImplementedError


_REGISTRY: dict[str, Rule] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and index the rule by id."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id}")
    # repro-lint: disable=PAR001 -- import-time registration; the table
    # is frozen before any linting (let alone worker dispatch) happens
    _REGISTRY[cls.id] = cls()
    return cls


def all_rules() -> dict[str, Rule]:
    """Registered rules keyed by id (insertion order = catalogue order)."""
    return dict(_REGISTRY)


def get_rule(rule_id: str) -> Rule:
    return _REGISTRY[rule_id]


def walk_functions(
    tree: ast.Module,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Every function definition in the module, at any nesting depth."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def body_contains(
    nodes: list[ast.stmt], pred: Callable[[ast.AST], bool]
) -> bool:
    """True if ``pred`` holds anywhere in ``nodes``, not descending into
    nested function/class definitions (their control flow is separate)."""
    stack: list[ast.AST] = list(nodes)
    while stack:
        node = stack.pop()
        if pred(node):
            return True
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return False
