"""EXC001: overbroad exception handlers that can swallow invariants.

``SchedulerDownError`` (fault layer) and ``InvariantError`` (sanitizer)
deliberately propagate through deep call stacks; a bare ``except:`` or
``except Exception:`` between raise site and handler silently converts
a correctness violation into a wrong number.  A broad handler is only
acceptable as a *boundary* that re-raises (possibly wrapped, preserving
the chain) — handlers containing a ``raise`` anywhere in their body are
therefore exempt.  Record-and-continue harnesses (the fuzzer, where a
crash *is* the finding) must carry a justified waiver.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import FileContext
from ..findings import Finding, Severity
from .base import Rule, body_contains, register

BROAD = {"Exception", "BaseException"}


def _broad_name(node: ast.expr | None) -> str | None:
    """The broad exception name a handler catches, if any."""
    if node is None:
        return "<bare>"
    if isinstance(node, ast.Name) and node.id in BROAD:
        return node.id
    if isinstance(node, ast.Attribute) and node.attr in BROAD:
        return node.attr
    if isinstance(node, ast.Tuple):
        for elt in node.elts:
            name = _broad_name(elt)
            if name is not None and name != "<bare>":
                return name
    return None


@register
class Exc001OverbroadExcept(Rule):
    """Broad except without re-raise can swallow invariant errors."""

    id = "EXC001"
    severity = Severity.WARNING
    summary = (
        "bare/Exception/BaseException handler that never re-raises "
        "(can swallow SchedulerDownError/InvariantError)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            name = _broad_name(node.type)
            if name is None:
                continue
            if body_contains(node.body, lambda n: isinstance(n, ast.Raise)):
                continue  # a re-raising boundary, not a swallow
            what = (
                "bare 'except:'" if name == "<bare>" else f"'except {name}:'"
            )
            yield self.finding(
                ctx,
                node,
                f"{what} swallows everything, including "
                f"SchedulerDownError and InvariantError; catch the "
                f"specific exceptions or re-raise",
            )
