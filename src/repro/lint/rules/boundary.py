"""Executor boundaries: XPB001 (unpicklable values crossing a process
boundary) and BLK001 (blocking calls inside service coroutines).

**XPB001** — every value captured into a ``ProcessPoolExecutor``
submission, a pool ``initargs`` tuple, a ``multiprocessing.Process``
target or a ``pickle.dumps`` payload is pickled in the parent and
rebuilt in a worker.  Lambdas, functions nested inside the submitting
scope, locks/events, open file handles, sockets and ``TraceRecorder``
instances (which hold an open stream) all fail at dispatch time — or
worse, *appear* to work under fork-start while silently sharing state.
The rule flags the capture site statically, before any pool exists.

**BLK001** — ``repro.service`` hosts an asyncio HTTP front end; a
coroutine that calls ``time.sleep``, ``subprocess``, or a sync
socket/network API — directly or through any resolved callee — stalls
the entire event loop, turning every in-flight request into a victim.
Sync *handlers* invoked from a coroutine are fine (that design is
documented in ``repro.service.http``); the rule only follows calls it
can resolve statically, and a waiver at the blocking call's origin line
excuses a deliberate exception.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from ..effects.analysis import effect_chains
from ..effects.model import EffectRecord, FunctionFacts
from ..findings import Finding, Severity
from .base import ProjectRule, register

if TYPE_CHECKING:
    from ..effects.project import ProjectContext


@register
class Xpb001UnpicklableBoundaryCapture(ProjectRule):
    """Statically unpicklable value captured into a process boundary."""

    id = "XPB001"
    severity = Severity.ERROR
    summary = (
        "lambda, nested function, lock, open handle or tracer captured "
        "into a pool submission / initargs / pickle payload"
    )

    def check_project(self, project: "ProjectContext") -> Iterator[Finding]:
        for mod in project.modules:
            for site in mod.boundary_sites:
                yield project.finding(
                    self.id, self.severity, mod.display_path,
                    site.line, site.col,
                    f"value crossing the executor/process boundary is "
                    f"{site.reason}; ship plain data (configs, indices, "
                    f"results) and rebuild stateful objects worker-side",
                )


@register
class Blk001BlockingInCoroutine(ProjectRule):
    """Blocking call reachable from an asyncio coroutine in the service."""

    id = "BLK001"
    severity = Severity.ERROR
    summary = (
        "blocking call (time.sleep, subprocess, sync socket/network) "
        "inside an asyncio coroutine in repro.service"
    )

    def check_project(self, project: "ProjectContext") -> Iterator[Finding]:
        graph = project.graph

        def suppress(
            owner: FunctionFacts, path: str, effect: EffectRecord
        ) -> bool:
            return project.try_waive(self.id, path, effect.line)

        for qualid in sorted(graph.functions):
            fn = graph.functions[qualid]
            if not fn.is_async or not qualid.startswith("repro.service."):
                continue
            chain = effect_chains(
                graph, qualid, ("blocking",), suppress
            ).get("blocking")
            if chain is None:
                continue
            # anchor at the first hop inside the coroutine itself: the
            # offending call site (or the direct effect's own line)
            line = chain.steps[0][1] if chain.steps else chain.effect.line
            path = graph.function_path[qualid]
            yield project.finding(
                self.id, self.severity, path, line, 0,
                f"coroutine {fn.name}() blocks the event loop: "
                f"{chain.describe(fn.name + '()')}; use asyncio "
                f"primitives or push the work onto a thread",
            )
