"""Rule registry: importing this package registers the rule pack.

The catalogue also covers the engine-level meta rules (LNT001–LNT003,
emitted by the waiver machinery rather than an AST visitor) so
``repro lint --list-rules`` and the docs show one complete table.
"""

from __future__ import annotations

from ..findings import Severity
from . import (  # noqa: F401  (registration)
    api,
    boundary,
    concurrency,
    determinism,
    exceptions,
    parallel,
    purity,
)
from .base import ProjectRule, Rule, all_rules, get_rule, register

# Descriptions of the meta rules the engine emits itself.
META_RULE_SUMMARIES: dict[str, tuple[Severity, str]] = {
    "LNT001": (
        Severity.ERROR,
        "waiver pragma without a '-- justification' clause",
    ),
    "LNT002": (
        Severity.WARNING,
        "waiver pragma that no finding uses (stale waiver)",
    ),
    "LNT003": (
        Severity.ERROR,
        "waiver pragma naming an unknown or unwaivable rule",
    ),
    "LNT000": (
        Severity.ERROR,
        "file could not be parsed (syntax error)",
    ),
}


def known_rule_ids() -> set[str]:
    """Every id valid in ``--rule`` filters and pragma audits."""
    return set(all_rules()) | set(META_RULE_SUMMARIES)


def catalogue() -> list[tuple[str, str, str]]:
    """(id, severity, summary) rows for --list-rules and the docs."""
    rows = [
        (rule.id, rule.severity.value, rule.summary)
        for rule in all_rules().values()
    ]
    rows.extend(
        (rule_id, sev.value, summary)
        for rule_id, (sev, summary) in META_RULE_SUMMARIES.items()
    )
    return sorted(rows)


__all__ = [
    "ProjectRule",
    "Rule",
    "register",
    "all_rules",
    "get_rule",
    "known_rule_ids",
    "catalogue",
    "META_RULE_SUMMARIES",
]
