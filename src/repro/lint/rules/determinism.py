"""Determinism rules: DET001 (entropy sources), DET002 (unordered
iteration), DET003 (unordered float accumulation).

The reproduction's results rest on a deterministic discrete-event
substrate: every random draw flows through :mod:`repro.sim.rng` (keyed
``SeedSequence`` spawning) and the trace layer asserts byte-identity
across worker counts.  These rules reject, *before a run*, the three
hazard classes that silently break that property:

* **DET001** — wall-clock reads, the stdlib :mod:`random`/:mod:`secrets`
  modules, ``os.urandom``/``uuid4`` and numpy's global or factory RNG
  entry points anywhere outside :mod:`repro.sim.rng`.  Timing clocks
  (``perf_counter`` and friends) are additionally rejected inside the
  simulation packages, where there is no legitimate host-time use —
  except for the explicitly allowlisted measurement modules in
  :data:`TIMING_BLESSED_MODULES` (the profiling harness), whose whole
  purpose is host timing and whose outputs never feed a trajectory.
* **DET002** — iterating a ``set``/``frozenset`` (directly, via a
  comprehension, or by materialising with ``list``/``tuple``): string
  hashes are salted per process (``PYTHONHASHSEED``), so set order can
  differ between the serial and parallel paths of the same sweep.
* **DET003** — ``sum()`` over an unordered iterable: float addition is
  not associative, so even a *stable* set order different from another
  process's order changes the accumulated metric in the last bits.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..context import FileContext
from ..findings import Finding, Severity
from .base import Rule, register

# Packages forming the deterministic simulation substrate; DET001
# additionally bans *timing* clocks here (host time must never leak in).
STRICT_PACKAGES = ("sim", "sched", "core", "workload", "cluster", "faults",
                   "bench")

# The one module allowed to touch RNG machinery directly.
BLESSED_MODULES = ("sim.rng",)

# Modules inside strict packages allowed to read host *timing* clocks:
# the profiling harness exists to measure host cost (phase attribution,
# cProfile) and none of its outputs feed a simulated trajectory.  Keep
# this list to measurement tooling — simulation logic never qualifies.
TIMING_BLESSED_MODULES = ("bench.profiling",)

WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.localtime",
    "time.gmtime",
    "time.ctime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}
TIMING_CLOCKS = {
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.thread_time",
}
ENTROPY = {
    "os.urandom",
    "os.getrandom",
    "uuid.uuid1",
    "uuid.uuid4",
}
# numpy.random entry points that either hold global state or mint
# generators outside the keyed RngFactory derivation.
NUMPY_BANNED_TAILS = {
    "default_rng",
    "RandomState",
    "seed",
    "random",
    "rand",
    "randn",
    "randint",
    "random_sample",
    "choice",
    "shuffle",
    "permutation",
    "uniform",
    "normal",
    "exponential",
    "poisson",
    "standard_normal",
}


@register
class Det001EntropySource(Rule):
    """Nondeterministic time/randomness source outside repro.sim.rng."""

    id = "DET001"
    severity = Severity.ERROR
    summary = (
        "wall-clock, stdlib random/secrets, os.urandom/uuid or numpy "
        "global/factory RNG outside repro.sim.rng"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.module in BLESSED_MODULES:
            return
        strict = (
            ctx.in_packages(*STRICT_PACKAGES)
            and ctx.module not in TIMING_BLESSED_MODULES
        )
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    top = alias.name.split(".")[0]
                    if top in ("random", "secrets"):
                        yield self.finding(
                            ctx,
                            node,
                            f"stdlib '{top}' is process-seeded and "
                            f"non-reproducible; derive streams from "
                            f"repro.sim.rng.RngFactory instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module is not None:
                    top = node.module.split(".")[0]
                    if top in ("random", "secrets"):
                        yield self.finding(
                            ctx,
                            node,
                            f"stdlib '{top}' is process-seeded and "
                            f"non-reproducible; derive streams from "
                            f"repro.sim.rng.RngFactory instead",
                        )
            elif isinstance(node, ast.Call):
                q = ctx.qualname(node.func)
                if q is None:
                    continue
                msg = self._classify(q, strict)
                if msg is not None:
                    yield self.finding(ctx, node, msg)

    @staticmethod
    def _classify(q: str, strict: bool) -> Optional[str]:
        if q in WALL_CLOCK:
            return (
                f"{q}() reads the host wall clock; simulated time comes "
                f"from the Simulator, host timestamps belong in the "
                f"manifest layer"
            )
        if strict and q in TIMING_CLOCKS:
            return (
                f"{q}() reads a host timing clock inside the simulation "
                f"substrate; results must not depend on host timing"
            )
        if q in ENTROPY:
            return (
                f"{q}() draws OS entropy; every stream must derive from "
                f"the master seed via repro.sim.rng.RngFactory"
            )
        if q.startswith("random.") or q == "random":
            return (
                f"{q}() uses the process-global stdlib RNG; derive a "
                f"keyed generator from repro.sim.rng.RngFactory"
            )
        if q.startswith("secrets."):
            return f"{q}() draws OS entropy and is never reproducible"
        if q.startswith("numpy.random."):
            tail = q.rsplit(".", 1)[1]
            if tail in NUMPY_BANNED_TAILS:
                return (
                    f"{q}() bypasses the keyed stream derivation; use "
                    f"repro.sim.rng.RngFactory(seed).generator(...) so "
                    f"stream identity depends only on the key"
                )
        return None


# -- set-typedness inference (shared by DET002/DET003) -------------------

SET_METHODS = {
    "union",
    "intersection",
    "difference",
    "symmetric_difference",
    "copy",
}
SET_BINOPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
SET_ANNOTATIONS = {"set", "frozenset", "Set", "FrozenSet", "AbstractSet"}


def _annotation_is_set(node: ast.expr) -> bool:
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):  # typing.Set[...]
        return node.attr in SET_ANNOTATIONS
    return isinstance(node, ast.Name) and node.id in SET_ANNOTATIONS


class _ScopeEnv:
    """Names provably set-typed within one function/module scope.

    Deliberately simple flow-insensitive inference: a name counts as
    set-typed iff every assignment to it in the scope yields a set (or
    its annotation says so) — mixed assignments make it unknown, which
    errs toward silence rather than false positives.
    """

    def __init__(self) -> None:
        self.set_names: set[str] = set()
        self.other_names: set[str] = set()

    def is_set_name(self, name: str) -> bool:
        return name in self.set_names and name not in self.other_names


def _is_set_expr(node: ast.expr, env: _ScopeEnv) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return env.is_set_name(node.id)
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if (
            isinstance(func, ast.Attribute)
            and func.attr in SET_METHODS
            and _is_set_expr(func.value, env)
        ):
            return True
        return False
    if isinstance(node, ast.BinOp) and isinstance(node.op, SET_BINOPS):
        return _is_set_expr(node.left, env) or _is_set_expr(node.right, env)
    if isinstance(node, ast.IfExp):
        return _is_set_expr(node.body, env) or _is_set_expr(node.orelse, env)
    return False


def _scope_units(
    tree: ast.Module,
) -> Iterator[tuple[ast.AST, list[ast.stmt]]]:
    """(scope node, body) pairs: the module plus every function."""
    yield tree, tree.body
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, node.body


def _iter_scope(body: list[ast.stmt]) -> Iterator[ast.AST]:
    """Walk a scope without descending into nested function/class defs."""
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _build_env(scope: ast.AST, body: list[ast.stmt]) -> _ScopeEnv:
    env = _ScopeEnv()
    if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = scope.args
        for arg in [
            *args.posonlyargs, *args.args, *args.kwonlyargs,
        ]:
            if arg.annotation is not None and _annotation_is_set(arg.annotation):
                env.set_names.add(arg.arg)
    annotated_sets = set(env.set_names)
    assigns: list[tuple[str, ast.expr]] = []
    for node in _iter_scope(body):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    assigns.append((target.id, node.value))
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            if _annotation_is_set(node.annotation):
                annotated_sets.add(node.target.id)
            elif node.value is not None:
                assigns.append((node.target.id, node.value))
    # Fixpoint so chained aliases (a = set(); b = a) resolve regardless
    # of textual order; three rounds bound the alias-chain depth we care
    # about without risking pathological runtimes.
    for _ in range(3):
        set_names = set(annotated_sets)
        other_names: set[str] = set()
        for name, value in assigns:
            if _is_set_expr(value, env):
                set_names.add(name)
            else:
                other_names.add(name)
        other_names -= annotated_sets
        if (set_names, other_names) == (env.set_names, env.other_names):
            break
        env.set_names, env.other_names = set_names, other_names
    return env


MATERIALIZERS = ("list", "tuple", "enumerate", "iter")


@register
class Det002UnorderedIteration(Rule):
    """Iteration order of a set leaks into downstream computation."""

    id = "DET002"
    severity = Severity.ERROR
    summary = (
        "iteration over a set/frozenset (loop, comprehension, or "
        "list()/tuple() materialisation) without sorted()"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for scope, body in _scope_units(ctx.tree):
            env = _build_env(scope, body)
            for node in _iter_scope(body):
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    if _is_set_expr(node.iter, env):
                        yield self.finding(
                            ctx,
                            node.iter,
                            "loop iterates a set in hash order, which is "
                            "process-dependent (PYTHONHASHSEED); wrap the "
                            "iterable in sorted(...)",
                        )
                elif isinstance(
                    node, (ast.ListComp, ast.SetComp, ast.DictComp,
                           ast.GeneratorExp)
                ):
                    for gen in node.generators:
                        if _is_set_expr(gen.iter, env):
                            yield self.finding(
                                ctx,
                                gen.iter,
                                "comprehension iterates a set in hash "
                                "order, which is process-dependent; wrap "
                                "the iterable in sorted(...)",
                            )
                elif isinstance(node, ast.Call):
                    func = node.func
                    if (
                        isinstance(func, ast.Name)
                        and func.id in MATERIALIZERS
                        and node.args
                        and _is_set_expr(node.args[0], env)
                    ):
                        yield self.finding(
                            ctx,
                            node,
                            f"{func.id}() materialises a set in hash "
                            f"order, which is process-dependent; use "
                            f"sorted(...) instead",
                        )


@register
class Det003UnorderedAccumulation(Rule):
    """Float accumulation whose result depends on set iteration order."""

    id = "DET003"
    severity = Severity.WARNING
    summary = "sum() over an unordered (set-typed) iterable"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for scope, body in _scope_units(ctx.tree):
            env = _build_env(scope, body)
            for node in _iter_scope(body):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "sum"
                    and node.args
                ):
                    continue
                arg = node.args[0]
                unordered = _is_set_expr(arg, env)
                if not unordered and isinstance(
                    arg, (ast.GeneratorExp, ast.ListComp)
                ):
                    unordered = any(
                        _is_set_expr(gen.iter, env) for gen in arg.generators
                    )
                if unordered:
                    yield self.finding(
                        ctx,
                        node,
                        "sum() over a set accumulates floats in hash "
                        "order; float addition is not associative — "
                        "sum(sorted(...)) or math.fsum() keep the result "
                        "order-independent",
                    )
