"""Incremental lint cache: per-file findings + effect summaries.

Keyed by **content**: the cache key is a SHA-256 over the file's
display path, its source bytes, and a *tool salt* hashing every ``.py``
source in the lint package itself.  Editing a file, moving it, or
changing any linter/rule/extractor code therefore misses cleanly — no
manual version bump required, no way to serve findings computed by an
older rule pack.

What is cached per file:

* the raw per-file rule findings (before waiver/baseline processing,
  which depends on run-time state and is recomputed each run from the
  — cheap to tokenize — pragma table);
* the :class:`~repro.lint.effects.model.ModuleFacts` effect summary.

The *project* phase (PURE001/PURE002, RACE002, BLK001 chains) is
recomputed every run from the cached summaries.  That is the
call-graph-transitive invalidation story: a changed file misses and is
re-extracted, and because interprocedural conclusions are derived
fresh from all current summaries, every function whose transitive
effects changed is re-judged automatically — there is no stale-edge
state to invalidate.

Entries are written atomically (temp file + ``os.replace``) so
concurrent lint runs sharing ``.repro-lint-cache/`` never observe a
torn entry; any unreadable or schema-mismatched entry is a miss.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Optional

from .effects.model import FACTS_SCHEMA_VERSION, ModuleFacts
from .findings import Finding, Severity

DEFAULT_CACHE_DIR = ".repro-lint-cache"

CACHE_SCHEMA_VERSION = 1


def _tool_salt() -> str:
    """Hash of every lint-package source file (rules, effects, engine)."""
    root = Path(__file__).resolve().parent
    h = hashlib.sha256()
    h.update(f"{CACHE_SCHEMA_VERSION}:{FACTS_SCHEMA_VERSION}".encode())
    for path in sorted(root.rglob("*.py")):
        h.update(path.relative_to(root).as_posix().encode())
        h.update(b"\x00")
        h.update(path.read_bytes())
        h.update(b"\x00")
    return h.hexdigest()


def _finding_from_dict(d: dict) -> Finding:
    return Finding(
        rule=d["rule"],
        severity=Severity(d["severity"]),
        path=d["path"],
        line=d["line"],
        col=d["col"],
        message=d["message"],
        snippet=d.get("snippet", ""),
    )


class LintCache:
    """Content-addressed store under one cache directory."""

    def __init__(self, root: str | Path = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)
        self.salt = _tool_salt()
        self.hits = 0
        self.misses = 0

    def _key(self, display_path: str, source: str) -> str:
        h = hashlib.sha256()
        h.update(self.salt.encode())
        h.update(b"\x00")
        h.update(display_path.encode())
        h.update(b"\x00")
        h.update(source.encode("utf-8"))
        return h.hexdigest()

    def _entry_path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def load(
        self, display_path: str, source: str
    ) -> Optional[tuple[list[Finding], Optional[ModuleFacts]]]:
        """Cached (raw findings, facts) for this exact content, or None."""
        try:
            raw = self._entry_path(
                self._key(display_path, source)
            ).read_text(encoding="utf-8")
            entry = json.loads(raw)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if entry.get("schema") != CACHE_SCHEMA_VERSION:
            self.misses += 1
            return None
        try:
            findings = [_finding_from_dict(f) for f in entry["findings"]]
            facts = (
                ModuleFacts.from_dict(entry["facts"])
                if entry["facts"] is not None
                else None
            )
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return findings, facts

    def store(
        self,
        display_path: str,
        source: str,
        findings: list[Finding],
        facts: Optional[ModuleFacts],
    ) -> None:
        entry = {
            "schema": CACHE_SCHEMA_VERSION,
            "findings": [f.to_dict() for f in findings],
            "facts": facts.to_dict() if facts is not None else None,
        }
        target = self._entry_path(self._key(display_path, source))
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=self.root, prefix=".tmp-", suffix=".json"
            )
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(entry, fh, separators=(",", ":"))
            os.replace(tmp, target)
        except OSError:
            pass  # an unwritable cache degrades to a cold run
