"""Lint engine: walk files, run rules, apply waivers and the baseline.

Determinism is a design requirement here too (the linter lints itself):
files are visited in sorted path order and findings are reported in
``(path, line, col, rule)`` order, so two runs over the same tree are
byte-identical — including a cold run versus a warm run from the
incremental cache.

The run is two-phase.  Phase one analyzes each file independently:
per-file rules plus extraction of the interprocedural effect summary
(:mod:`repro.lint.effects`); both are served from the content-hash
cache when one is configured.  Phase two assembles every summary into
one :class:`~repro.lint.effects.project.ProjectContext` and runs the
project rules (PURE001/PURE002, RACE001/RACE002, XPB001, BLK001) over
the whole call graph.  Waivers, the pragma audit and the baseline are
applied last, so project findings can be excused by pragmas in *any*
file they reference.

``--changed`` scoping restricts which files' findings are *reported*;
the whole tree is still analyzed so project summaries stay complete (a
changed caller is judged against unchanged callees' true effects).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

from .baseline import Baseline
from .cache import LintCache
from .context import FileContext
from .effects.extract import extract_module
from .effects.model import ModuleFacts
from .effects.project import ProjectContext
from .findings import Finding, Severity
from .pragmas import WaiverTable
from .rules import all_rules, known_rule_ids
from .rules.base import ProjectRule

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2

SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}


class LintUsageError(ValueError):
    """Bad invocation (unknown rule, missing path, unreadable baseline)."""


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    files_cached: int = 0  # served from the incremental cache (not in
    # the report payload: cold and warm runs must stay byte-identical)

    @property
    def active(self) -> list[Finding]:
        """Findings that count against the exit code."""
        return [f for f in self.findings if not f.suppressed]

    @property
    def errors(self) -> int:
        return sum(1 for f in self.active if f.severity is Severity.ERROR)

    @property
    def warnings(self) -> int:
        return sum(1 for f in self.active if f.severity is Severity.WARNING)

    @property
    def waived(self) -> int:
        return sum(1 for f in self.findings if f.waived)

    @property
    def baselined(self) -> int:
        return sum(1 for f in self.findings if f.baselined)

    @property
    def exit_code(self) -> int:
        return EXIT_CLEAN if not self.active else EXIT_FINDINGS

    def summary(self) -> dict[str, int]:
        return {
            "files_checked": self.files_checked,
            "findings": len(self.findings),
            "errors": self.errors,
            "warnings": self.warnings,
            "waived": self.waived,
            "baselined": self.baselined,
        }


def collect_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand paths to a sorted, de-duplicated list of ``.py`` files."""
    seen: dict[Path, None] = {}
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise LintUsageError(f"no such file or directory: {path}")
        if path.is_dir():
            candidates = sorted(
                p
                for p in path.rglob("*.py")
                if not SKIP_DIRS.intersection(p.parts)
            )
        elif path.suffix == ".py":
            candidates = [path]
        else:
            raise LintUsageError(f"not a Python file: {path}")
        for p in candidates:
            seen.setdefault(p.resolve(), None)
    return sorted(seen)


def _display_path(path: Path) -> str:
    """Path relative to the working directory when possible (stable
    across checkouts, which keeps baseline files shareable)."""
    try:
        return path.relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


@dataclass
class _FileAnalysis:
    """Phase-one output for one file."""

    path: Path
    display: str
    source: str
    findings: list[Finding]  # raw per-file rule findings (incl. LNT000)
    facts: Optional[ModuleFacts]
    cached: bool = False


def _analyze_file(
    path: Path,
    display: str,
    source: str,
    cache: Optional[LintCache],
) -> _FileAnalysis:
    """Per-file rules + effect extraction, cache-served when possible."""
    if cache is not None:
        entry = cache.load(display, source)
        if entry is not None:
            findings, facts = entry
            return _FileAnalysis(path, display, source, findings, facts,
                                 cached=True)
    try:
        ctx = FileContext(path, display, source)
    except SyntaxError as exc:
        findings = [
            Finding(
                rule="LNT000",
                severity=Severity.ERROR,
                path=display,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                message=f"syntax error: {exc.msg}",
            )
        ]
        facts = None
    else:
        findings = []
        for rule in all_rules().values():
            if not isinstance(rule, ProjectRule):
                findings.extend(rule.check(ctx))
        facts = extract_module(ctx)
    if cache is not None:
        cache.store(display, source, findings, facts)
    return _FileAnalysis(path, display, source, findings, facts)


def _run_pipeline(
    analyses: list[_FileAnalysis],
    rule_filter: Optional[set[str]],
    baseline: Optional[Baseline],
    report_paths: Optional[set[Path]],
) -> list[Finding]:
    """Phase two: project rules, waivers, audit, baseline, sort."""
    tables = {
        a.display: WaiverTable(a.display, a.source) for a in analyses
    }
    lines = {a.display: a.source.splitlines() for a in analyses}

    findings: list[Finding] = []
    for a in analyses:
        findings.extend(a.findings)
    project = ProjectContext(
        [a.facts for a in analyses if a.facts is not None], lines, tables
    )
    for rule in all_rules().values():
        if isinstance(rule, ProjectRule):
            findings.extend(rule.check_project(project))

    # waivers apply before scoping/filtering so every pragma's usage is
    # known when its file's audit runs
    for f in findings:
        table = tables.get(f.path)
        f.waived = table.try_waive(f.rule, f.line) if table else False

    reported: Optional[set[str]] = None
    if report_paths is not None:
        reported = {a.display for a in analyses if a.path in report_paths}
        findings = [f for f in findings if f.path in reported]
    if rule_filter is not None:
        findings = [f for f in findings if f.rule in rule_filter]

    for a in analyses:
        if reported is not None and a.display not in reported:
            continue
        meta = tables[a.display].audit(known_rule_ids(), lines[a.display])
        if rule_filter is not None:
            meta = [m for m in meta if m.rule in rule_filter]
        findings.extend(meta)

    if baseline is not None:
        for f in findings:
            if not f.waived:
                baseline.absorb(f)
    findings.sort(key=Finding.sort_key)
    return findings


def lint_file(
    path: Path,
    rule_filter: Optional[set[str]] = None,
    display_path: Optional[str] = None,
) -> list[Finding]:
    """Lint one file as a single-file project (fixtures, spot checks).

    Project rules see a one-module call graph, so contracts and lock
    discipline are still checked — against file-local knowledge only.
    """
    display = display_path if display_path is not None else _display_path(path)
    source = path.read_text(encoding="utf-8")
    analysis = _analyze_file(path, display, source, None)
    return _run_pipeline([analysis], rule_filter, None, None)


def run_lint(
    paths: Sequence[str | Path],
    rules: Optional[Sequence[str]] = None,
    baseline: Optional[str | Path] = None,
    changed: Optional[set[Path]] = None,
    cache_dir: Optional[str | Path] = None,
) -> LintResult:
    """Lint ``paths``; apply ``rules`` filter and ``baseline`` if given.

    ``changed`` (resolved paths) restricts which files' findings are
    reported — the whole tree is still analyzed for project summaries.
    ``cache_dir`` enables the incremental content-hash cache.

    Raises :class:`LintUsageError` for unknown rules or unreadable
    paths/baselines (CLI exit code 2); returns a :class:`LintResult`
    otherwise (exit code 0 when nothing unwaived/unbaselined remains).
    """
    rule_filter: Optional[set[str]] = None
    if rules:
        rule_filter = {r.upper() for r in rules}
        unknown = rule_filter - known_rule_ids()
        if unknown:
            raise LintUsageError(
                f"unknown rule(s): {', '.join(sorted(unknown))}; "
                f"see 'repro lint --list-rules'"
            )
    base: Optional[Baseline] = None
    if baseline is not None:
        base = Baseline.load(baseline)
    cache = LintCache(cache_dir) if cache_dir is not None else None

    analyses = []
    for path in collect_files(paths):
        display = _display_path(path)
        source = path.read_text(encoding="utf-8")
        analyses.append(_analyze_file(path, display, source, cache))

    result = LintResult(
        findings=_run_pipeline(analyses, rule_filter, base, changed),
        files_checked=len(analyses),
        files_cached=sum(1 for a in analyses if a.cached),
    )
    return result
