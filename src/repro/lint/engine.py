"""Lint engine: walk files, run rules, apply waivers and the baseline.

Determinism is a design requirement here too (the linter lints itself):
files are visited in sorted path order and findings are reported in
``(path, line, col, rule)`` order, so two runs over the same tree are
byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

from .baseline import Baseline
from .context import FileContext
from .findings import Finding, Severity
from .pragmas import WaiverTable
from .rules import all_rules, known_rule_ids

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2

SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}


class LintUsageError(ValueError):
    """Bad invocation (unknown rule, missing path, unreadable baseline)."""


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def active(self) -> list[Finding]:
        """Findings that count against the exit code."""
        return [f for f in self.findings if not f.suppressed]

    @property
    def errors(self) -> int:
        return sum(1 for f in self.active if f.severity is Severity.ERROR)

    @property
    def warnings(self) -> int:
        return sum(1 for f in self.active if f.severity is Severity.WARNING)

    @property
    def waived(self) -> int:
        return sum(1 for f in self.findings if f.waived)

    @property
    def baselined(self) -> int:
        return sum(1 for f in self.findings if f.baselined)

    @property
    def exit_code(self) -> int:
        return EXIT_CLEAN if not self.active else EXIT_FINDINGS

    def summary(self) -> dict[str, int]:
        return {
            "files_checked": self.files_checked,
            "findings": len(self.findings),
            "errors": self.errors,
            "warnings": self.warnings,
            "waived": self.waived,
            "baselined": self.baselined,
        }


def collect_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand paths to a sorted, de-duplicated list of ``.py`` files."""
    seen: dict[Path, None] = {}
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise LintUsageError(f"no such file or directory: {path}")
        if path.is_dir():
            candidates = sorted(
                p
                for p in path.rglob("*.py")
                if not SKIP_DIRS.intersection(p.parts)
            )
        elif path.suffix == ".py":
            candidates = [path]
        else:
            raise LintUsageError(f"not a Python file: {path}")
        for p in candidates:
            seen.setdefault(p.resolve(), None)
    return sorted(seen)


def _display_path(path: Path) -> str:
    """Path relative to the working directory when possible (stable
    across checkouts, which keeps baseline files shareable)."""
    try:
        return path.relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


def lint_file(
    path: Path,
    rule_filter: Optional[set[str]] = None,
    display_path: Optional[str] = None,
) -> list[Finding]:
    """Lint one file: rule findings plus pragma meta-findings."""
    display = display_path if display_path is not None else _display_path(path)
    source = path.read_text(encoding="utf-8")
    try:
        ctx = FileContext(path, display, source)
    except SyntaxError as exc:
        return [
            Finding(
                rule="LNT000",
                severity=Severity.ERROR,
                path=display,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                message=f"syntax error: {exc.msg}",
            )
        ]
    findings: list[Finding] = []
    for rule in all_rules().values():
        if rule_filter is not None and rule.id not in rule_filter:
            continue
        findings.extend(rule.check(ctx))

    waivers = WaiverTable(display, ctx.source)
    for f in findings:
        f.waived = waivers.try_waive(f.rule, f.line)
    meta = waivers.audit(known_rule_ids(), ctx.lines)
    if rule_filter is not None:
        meta = [m for m in meta if m.rule in rule_filter]
    findings.extend(meta)
    findings.sort(key=Finding.sort_key)
    return findings


def run_lint(
    paths: Sequence[str | Path],
    rules: Optional[Sequence[str]] = None,
    baseline: Optional[str | Path] = None,
) -> LintResult:
    """Lint ``paths``; apply ``rules`` filter and ``baseline`` if given.

    Raises :class:`LintUsageError` for unknown rules or unreadable
    paths/baselines (CLI exit code 2); returns a :class:`LintResult`
    otherwise (exit code 0 when nothing unwaived/unbaselined remains).
    """
    rule_filter: Optional[set[str]] = None
    if rules:
        rule_filter = {r.upper() for r in rules}
        unknown = rule_filter - known_rule_ids()
        if unknown:
            raise LintUsageError(
                f"unknown rule(s): {', '.join(sorted(unknown))}; "
                f"see 'repro lint --list-rules'"
            )
    base: Optional[Baseline] = None
    if baseline is not None:
        base = Baseline.load(baseline)

    result = LintResult()
    for path in collect_files(paths):
        file_findings = lint_file(path, rule_filter)
        if base is not None:
            for f in file_findings:
                if not f.waived:
                    base.absorb(f)
        result.findings.extend(file_findings)
        result.files_checked += 1
    result.findings.sort(key=Finding.sort_key)
    return result
