"""Per-file lint context: source, AST, import aliases, package scope.

The context gives rules everything they need without re-parsing:

* ``tree`` — the parsed :mod:`ast` module;
* ``package`` — the module's dotted path *inside* ``repro`` (empty for
  files that do not live under a ``repro`` package directory), so rules
  can scope themselves to e.g. ``sim``/``sched``/``core``/``workload``;
* ``qualname(node)`` — resolve an attribute/name chain to the fully
  qualified imported name it denotes (``np.random.default_rng`` →
  ``numpy.random.default_rng``), following ``import x as y`` and
  ``from x import y as z`` aliases collected from the whole file.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Optional


class FileContext:
    """Everything rules may ask about one source file."""

    def __init__(self, path: Path, display_path: str, source: str) -> None:
        self.path = path
        self.display_path = display_path
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=display_path)
        self.module_parts = _module_parts(path)
        # import aliases: local name -> fully qualified name
        self.aliases: dict[str, str] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else local
                    self.aliases[local] = target
            elif isinstance(node, ast.ImportFrom):
                if node.level or node.module is None:
                    continue  # relative imports stay project-local
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.aliases[local] = f"{node.module}.{alias.name}"

    # -- scoping ---------------------------------------------------------

    @property
    def module(self) -> str:
        """Dotted module path under ``repro``, or the bare file stem."""
        return ".".join(self.module_parts)

    @property
    def package(self) -> str:
        """First component under ``repro`` (``"sim"``, ``"core"``, …)."""
        return self.module_parts[0] if len(self.module_parts) > 1 else ""

    def in_packages(self, *names: str) -> bool:
        """True when the file lives under one of the named subpackages.

        Top-level modules (``repro/faults.py``) match their own stem so
        ``in_packages("faults")`` behaves as expected.
        """
        head = self.module_parts[0] if self.module_parts else ""
        return head in names or self.package in names

    # -- name resolution -------------------------------------------------

    def qualname(self, node: ast.AST) -> Optional[str]:
        """Fully qualified name of an attribute/name chain, if imported.

        Returns ``None`` for chains not rooted in an import (locals,
        attributes of call results, …).
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.aliases.get(node.id)
        if root is None:
            return None
        parts.append(root)
        return ".".join(reversed(parts))

    def line_at(self, lineno: int) -> str:
        """Stripped source text of a 1-based line (empty if out of range)."""
        if 0 < lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""


def _module_parts(path: Path) -> tuple[str, ...]:
    """Module path relative to the innermost ``repro`` package directory.

    ``src/repro/sim/engine.py`` → ``("sim", "engine")``;
    ``src/repro/faults.py`` → ``("faults",)``;
    a file outside any ``repro`` directory → ``("<stem>",)``.
    """
    parts = path.resolve().parts
    stem = path.stem
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            inner = parts[i + 1 : -1] + (stem,)
            return tuple(inner) if inner else (stem,)
    return (stem,)
