"""Lint findings: the unit of output shared by every rule.

A :class:`Finding` pins a rule violation to a file, line and column and
carries the *stripped source line* it fired on.  That snippet — not the
line number — anchors the finding's :meth:`~Finding.fingerprint`, so a
checked-in baseline survives unrelated edits that merely shift code up
or down the file.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Any


class Severity(enum.Enum):
    """How bad a finding is; drives exit codes and report ordering."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


# Keys every finding dict carries, in serialisation order.  Tests pin
# the JSON report against this schema.
FINDING_FIELDS = (
    "rule",
    "severity",
    "path",
    "line",
    "col",
    "message",
    "snippet",
    "waived",
    "baselined",
    "fingerprint",
)


@dataclass
class Finding:
    """One rule violation at one source location.

    Parameters
    ----------
    rule:
        Registered rule id, e.g. ``"DET001"``.
    severity:
        :class:`Severity` of the violation.
    path:
        Display path of the offending file (as given to the engine).
    line, col:
        1-based line and 0-based column of the violation.
    message:
        Human-readable explanation with the suggested fix.
    snippet:
        The stripped source line the finding fired on.
    waived:
        Set by the engine when a ``# repro-lint: disable=`` pragma
        covers the finding.
    baselined:
        Set by the engine when the finding matches the baseline file.
    """

    rule: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str
    snippet: str = ""
    waived: bool = field(default=False, compare=False)
    baselined: bool = field(default=False, compare=False)

    @property
    def suppressed(self) -> bool:
        """True when the finding does not count against the exit code."""
        return self.waived or self.baselined

    def fingerprint(self) -> str:
        """Stable identity: rule + path + offending line *content*.

        Line numbers are deliberately excluded so baselines survive
        pure line shifts; two identical offending lines in one file
        share a fingerprint and are disambiguated by the baseline
        matcher with an occurrence index.
        """
        h = hashlib.sha256()
        for part in (self.rule, self.path, self.snippet):
            h.update(part.encode("utf-8"))
            h.update(b"\x00")
        return h.hexdigest()[:16]

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "waived": self.waived,
            "baselined": self.baselined,
            "fingerprint": self.fingerprint(),
        }

    def render(self) -> str:
        """One-line text form: ``path:line:col: RULE severity: message``."""
        tag = ""
        if self.waived:
            tag = " [waived]"
        elif self.baselined:
            tag = " [baselined]"
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} {self.severity}: {self.message}{tag}"
        )
