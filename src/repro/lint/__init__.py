"""Static determinism & reproducibility linter (``repro lint``).

A dependency-free, :mod:`ast`-based analysis framework with a pluggable
rule registry.  Where the sanitizer (:mod:`repro.sanitize`) audits
invariants *at runtime* and the trace layer (:mod:`repro.obs`) proves
byte-identity *after* a run, this package rejects determinism hazards
*before* one: wall-clock reads, unseeded randomness, hash-order
iteration, worker-shared module state, invariant-swallowing handlers
and typing gaps in the public simulation API.

Public surface:

* :func:`run_lint` / :class:`LintResult` — programmatic entry point;
* :class:`Finding` / :class:`Severity` — the unit of output;
* :func:`~repro.lint.rules.catalogue` — the rule table;
* ``# repro-lint: disable=RULE -- why`` pragmas and a checked-in
  baseline file (see :mod:`repro.lint.pragmas` / ``lint-baseline.json``)
  for sanctioned exceptions.
"""

from __future__ import annotations

from .baseline import Baseline
from .engine import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_USAGE,
    LintResult,
    LintUsageError,
    lint_file,
    run_lint,
)
from .findings import Finding, Severity
from .rules import all_rules, catalogue

__all__ = [
    "Baseline",
    "EXIT_CLEAN",
    "EXIT_FINDINGS",
    "EXIT_USAGE",
    "Finding",
    "LintResult",
    "LintUsageError",
    "Severity",
    "all_rules",
    "catalogue",
    "lint_file",
    "run_lint",
]
