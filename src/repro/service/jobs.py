"""Job model, canonical result payloads and the persistent job store.

A *job* is one sweep grid submitted to ``repro serve``: a
:class:`JobSpec` (configs + replications + executor choice) that the
server turns into an :class:`~repro.core.orchestrator.Orchestrator`
run.  The :class:`JobStore` persists everything a restart needs under
the service state directory::

    <state_dir>/
      cache/                  shared disk ResultCache (all jobs)
      jobs/<job_id>/
        spec.json             the JobSpec, exactly as submitted
        status.json           terminal state (pending/running/done/...)
        journal.jsonl         RunJournal of grid lifecycle events
        manifest.json         RunManifest, written at completion
        results.json          canonical grid payload, written at completion

Resume semantics: a job found ``pending``/``running`` at server startup
is re-executed from its spec; because every computed task went through
the shared disk cache, the rebuilt orchestrator resolves completed work
in its prepare step and only incomplete chunks reach an executor.

Canonical payloads: :func:`canonical_grid_payload` is the one
serialisation used for byte-identity checks — results as sorted-key
JSON with the host-timing fields (``wall_time_s``, ``phase_timings``)
stripped, numpy scalars converted.  The service-smoke CI job diffs the
served payload against an in-process ``run_grid`` of the same spec.
"""

from __future__ import annotations

import base64
import dataclasses
import json
import os
import pickle
import tempfile
import threading
from pathlib import Path
from typing import Any, Optional, Sequence, Union

from ..contracts import declared_pure
from ..core.cache import ResultCache
from ..core.config import ExperimentConfig, config_from_dict
from ..core.results import ExperimentResult

#: layout version of results.json / the canonical grid payload
RESULTS_SCHEMA_VERSION = 1

#: per-result fields carrying host timing, stripped for byte-identity
NONDETERMINISTIC_RESULT_FIELDS = ("wall_time_s", "phase_timings")

JOB_STATES = ("pending", "running", "done", "failed", "cancelled")
EXECUTORS = ("inprocess", "pool", "workqueue")


def _json_default(obj: Any) -> Any:
    """Convert numpy scalars/arrays so canonical JSON is plain."""
    import numpy as np

    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    raise TypeError(f"not JSON-serialisable: {type(obj).__name__}")


@declared_pure
def canonical_grid_payload(
    grids: Sequence[Sequence[ExperimentResult]],
) -> dict:
    """Deterministic, JSON-ready view of a reassembled grid.

    Strips :data:`NONDETERMINISTIC_RESULT_FIELDS` from every result —
    the exact fields the tier-1 determinism tests pop before comparing
    serial and parallel runs — so two payloads are equal iff the sweeps
    were byte-identical.
    """
    grid = []
    for per_config in grids:
        rows = []
        for result in per_config:
            d = dataclasses.asdict(result)
            for key in NONDETERMINISTIC_RESULT_FIELDS:
                d.pop(key, None)
            rows.append(d)
        grid.append(rows)
    return {"schema": RESULTS_SCHEMA_VERSION, "grid": grid}


@declared_pure
def canonical_grid_json(
    grids: Sequence[Sequence[ExperimentResult]],
) -> str:
    """The payload as sorted-key JSON — the unit of `diff` in CI."""
    return json.dumps(
        canonical_grid_payload(grids),
        sort_keys=True,
        separators=(",", ":"),
        default=_json_default,
    )


def encode_chunk_results(
    results: Sequence[tuple[int, int, ExperimentResult]],
) -> str:
    """Pack a completed chunk for the JSON completion envelope.

    Base64-wrapped pickle: exact (ExperimentResult round-trips with
    full float precision, which JSON would not guarantee) and simple.
    The trust model is the transport's: ``repro serve`` binds loopback
    by default and unpickling completions from untrusted networks is
    explicitly out of scope (see docs/architecture.md).
    """
    blob = pickle.dumps(list(results), protocol=pickle.HIGHEST_PROTOCOL)
    return base64.b64encode(blob).decode("ascii")


def decode_chunk_results(
    text: str,
) -> list[tuple[int, int, ExperimentResult]]:
    """Inverse of :func:`encode_chunk_results` (validated shape)."""
    try:
        payload = pickle.loads(base64.b64decode(text.encode("ascii")))
    except Exception as exc:
        raise ValueError(f"undecodable chunk results: {exc!r}") from exc
    if not isinstance(payload, list):
        raise ValueError("chunk results must be a list")
    out: list[tuple[int, int, ExperimentResult]] = []
    for item in payload:
        ci, rep, result = item
        if not isinstance(result, ExperimentResult):
            raise ValueError(
                f"chunk result for ({ci}, {rep}) is "
                f"{type(result).__name__}, not ExperimentResult"
            )
        out.append((int(ci), int(rep), result))
    return out


@dataclasses.dataclass(frozen=True)
class JobSpec:
    """Everything needed to (re)build one sweep job's orchestrator."""

    configs: tuple[ExperimentConfig, ...]
    n_replications: int
    first_replication: int = 0
    executor: str = "inprocess"
    n_workers: int = 1
    chunksize: Optional[int] = None
    lease_ttl_s: float = 30.0
    max_attempts: int = 3

    def __post_init__(self) -> None:
        if not self.configs:
            raise ValueError("a job needs at least one config")
        if self.n_replications < 1:
            raise ValueError(
                f"need >= 1 replication, got {self.n_replications}"
            )
        if self.executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {self.executor!r}; choose from {EXECUTORS}"
            )
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {self.n_workers}")
        object.__setattr__(self, "configs", tuple(self.configs))

    def to_dict(self) -> dict:
        return {
            "configs": [cfg.to_dict() for cfg in self.configs],
            "n_replications": self.n_replications,
            "first_replication": self.first_replication,
            "executor": self.executor,
            "n_workers": self.n_workers,
            "chunksize": self.chunksize,
            "lease_ttl_s": self.lease_ttl_s,
            "max_attempts": self.max_attempts,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "JobSpec":
        data = dict(payload)
        raw_configs = data.pop("configs", None)
        if not isinstance(raw_configs, list) or not raw_configs:
            raise ValueError("spec must carry a non-empty 'configs' list")
        known = {f.name for f in dataclasses.fields(cls)} - {"configs"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown JobSpec field(s): {unknown}")
        configs = tuple(config_from_dict(c) for c in raw_configs)
        return cls(configs=configs, **data)


def _write_json_atomic(path: Path, payload: object) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, sort_keys=True, indent=2,
                      default=_json_default)
            fh.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class JobStore:
    """Filesystem-backed registry of jobs under one state directory."""

    def __init__(self, state_dir: Union[str, Path]) -> None:
        self.state_dir = Path(state_dir)
        self.jobs_dir = self.state_dir / "jobs"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._cache: Optional[ResultCache] = None

    def cache(self) -> ResultCache:
        """The disk result cache shared by every job (resume substrate)."""
        with self._lock:
            if self._cache is None:
                self._cache = ResultCache(self.state_dir / "cache")
            return self._cache

    # -- identity --------------------------------------------------------

    def job_dir(self, job_id: str) -> Path:
        if not job_id.startswith("job-") or "/" in job_id or ".." in job_id:
            raise ValueError(f"malformed job id {job_id!r}")
        return self.jobs_dir / job_id

    def job_ids(self) -> list[str]:
        return sorted(
            p.name for p in self.jobs_dir.iterdir()
            if p.is_dir() and p.name.startswith("job-")
        )

    def create_job(self, spec: JobSpec) -> str:
        """Persist a new job's spec and pending status; returns its id."""
        with self._lock:
            existing = self.job_ids()
            n = 1 + max(
                (int(j.split("-", 1)[1]) for j in existing
                 if j.split("-", 1)[1].isdigit()),
                default=0,
            )
            job_id = f"job-{n:04d}"
            jdir = self.job_dir(job_id)
            jdir.mkdir(parents=True)
        _write_json_atomic(jdir / "spec.json", spec.to_dict())
        self.write_status(job_id, state="pending")
        return job_id

    # -- per-job records -------------------------------------------------

    def spec(self, job_id: str) -> JobSpec:
        path = self.job_dir(job_id) / "spec.json"
        return JobSpec.from_dict(
            json.loads(path.read_text(encoding="utf-8"))
        )

    def write_status(self, job_id: str, state: str, **fields: Any) -> dict:
        if state not in JOB_STATES:
            raise ValueError(f"unknown job state {state!r}")
        payload = {"job_id": job_id, "state": state, **fields}
        _write_json_atomic(self.job_dir(job_id) / "status.json", payload)
        return payload

    def read_status(self, job_id: str) -> dict:
        path = self.job_dir(job_id) / "status.json"
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise KeyError(f"no such job {job_id!r}") from None
        if not isinstance(payload, dict):
            raise ValueError(f"corrupt status for {job_id!r}")
        return payload

    def results_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "results.json"

    def write_results(self, job_id: str, payload: dict) -> Path:
        path = self.results_path(job_id)
        # Canonical single-line JSON so `diff` against a locally
        # computed payload is byte-exact.
        path.parent.mkdir(parents=True, exist_ok=True)
        text = json.dumps(
            payload, sort_keys=True, separators=(",", ":"),
            default=_json_default,
        )
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(text + "\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def read_results(self, job_id: str) -> Optional[bytes]:
        try:
            return self.results_path(job_id).read_bytes()
        except FileNotFoundError:
            return None
