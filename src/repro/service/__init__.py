"""Async sweep service: submit, monitor, resume and cancel grid jobs.

The service layer turns the :class:`~repro.core.orchestrator.Orchestrator`
into a long-running system: ``repro serve`` hosts a small stdlib-only
HTTP API (:mod:`repro.service.server`) over an asyncio socket server
(:mod:`repro.service.http`); sweeps are submitted as jobs
(:mod:`repro.service.jobs`), executed on any of the core executors —
including the work-queue executor, whose chunks are leased to
``repro worker`` processes (:mod:`repro.service.worker`) — and polled,
fetched or cancelled through :mod:`repro.service.client`.

Durability model: each job persists its spec, a
:class:`~repro.obs.manifest.RunJournal`, its manifest and its canonical
results under the service state directory, and every computed task is
stored in a disk :class:`~repro.core.cache.ResultCache` shared across
jobs.  A killed server or worker therefore resumes by reconstructing
the orchestrator from the spec: completed tasks resolve from the cache
and only incomplete chunks are re-executed.

This package is deliberately *outside* the deterministic simulation
substrate: results are produced by the same pure
``run_single(config, replication)`` as every other path, so nothing
here — scheduling, lease timing, worker count — can change them.
"""

from .client import ServiceClient, ServiceError
from .jobs import JobSpec, JobStore, canonical_grid_payload
from .server import SweepService
from .worker import QueueWorker

__all__ = [
    "JobSpec",
    "JobStore",
    "QueueWorker",
    "ServiceClient",
    "ServiceError",
    "SweepService",
    "canonical_grid_payload",
]
