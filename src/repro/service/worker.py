"""``repro worker``: lease chunks from a sweep service and compute them.

A worker is stateless: it polls ``POST /v1/queue/lease``, reconstructs
the unique-config table shipped with each lease, runs the pure
``run_single(config, replication)`` for every task in the chunk —
heartbeating the lease after each task so slow chunks aren't requeued
under it — and delivers the results with ``POST /v1/queue/complete``.
If a task raises, the chunk is reported via ``POST /v1/queue/fail`` and
the server decides whether to requeue (attempt budget) or fail the job.

Workers can die at any point without corrupting anything: an
unheartbeated lease expires and the chunk is recomputed elsewhere, and
a completion that races its own lease expiry is still accepted (results
are pure, the orchestrator's record is idempotent).
"""

from __future__ import annotations

import itertools
import logging
import os
import threading
import time
from typing import Optional

from ..core.config import ExperimentConfig, config_from_dict
from ..core.experiment import run_single
from .client import ServiceClient, ServiceError

_log = logging.getLogger("repro.service.worker")

_WORKER_SEQ = itertools.count(1)


def default_worker_id() -> str:
    """Stable-enough worker identity: host pid + per-process counter."""
    return f"worker-{os.getpid()}-{next(_WORKER_SEQ)}"


class QueueWorker:
    """One lease/compute/complete loop against a sweep service."""

    def __init__(
        self,
        base_url: str,
        worker_id: Optional[str] = None,
        poll_interval_s: float = 0.2,
    ) -> None:
        self.client = ServiceClient(base_url)
        self.worker_id = worker_id or default_worker_id()
        self.poll_interval_s = poll_interval_s
        self._stop = threading.Event()

    def stop(self) -> None:
        """Ask the loop to exit after the current chunk."""
        self._stop.set()

    def run(
        self,
        max_chunks: Optional[int] = None,
        max_idle_polls: Optional[int] = None,
    ) -> int:
        """Lease and compute chunks until stopped; returns chunks done.

        ``max_idle_polls`` bounds consecutive empty polls (used by
        one-shot CI workers: drain the queue, then exit);
        ``max_chunks`` bounds total work.  Connection errors while the
        server restarts are retried at the polling cadence.
        """
        completed = 0
        idle = 0
        while not self._stop.is_set():
            if max_chunks is not None and completed >= max_chunks:
                break
            try:
                granted = self.client.lease(self.worker_id)
            except (ServiceError, OSError) as exc:
                _log.warning("lease failed (%s); retrying", exc)
                idle += 1
                if max_idle_polls is not None and idle >= max_idle_polls:
                    break
                time.sleep(self.poll_interval_s)
                continue
            if granted is None:
                idle += 1
                if max_idle_polls is not None and idle >= max_idle_polls:
                    break
                time.sleep(self.poll_interval_s)
                continue
            idle = 0
            if self._process(granted):
                completed += 1
        return completed

    def _process(self, granted: dict) -> bool:
        job_id = granted["job_id"]
        lease = granted["lease"]
        chunk_id, token = lease["chunk_id"], lease["token"]
        configs: list[ExperimentConfig] = [
            config_from_dict(c) for c in granted["configs"]
        ]
        results = []
        _log.info(
            "%s: computing job %s chunk %d (%d task(s), attempt %d)",
            self.worker_id, job_id, chunk_id, len(lease["tasks"]),
            lease["attempt"],
        )
        try:
            for ci, rep in lease["tasks"]:
                results.append((ci, rep, run_single(configs[ci], rep)))
                # Renew after every task: a chunk of slow simulations
                # must not outlive its own lease.
                self._heartbeat(job_id, chunk_id, token)
        except Exception as exc:  # repro-lint: disable=EXC001 -- worker
            # loop boundary: the failure is reported to the server
            # (which owns retry/give-up policy) and the worker moves on
            _log.exception(
                "%s: job %s chunk %d failed", self.worker_id, job_id,
                chunk_id,
            )
            try:
                self.client.fail(job_id, chunk_id, token, repr(exc))
            except (ServiceError, OSError):
                _log.warning("could not report failure; lease will expire")
            return False
        try:
            self.client.complete(job_id, chunk_id, token, results)
        except (ServiceError, OSError) as exc:
            _log.warning(
                "%s: completion of job %s chunk %d not delivered (%s); "
                "lease will expire and the chunk will be recomputed",
                self.worker_id, job_id, chunk_id, exc,
            )
            return False
        return True

    def _heartbeat(self, job_id: str, chunk_id: int, token: int) -> None:
        try:
            self.client.heartbeat(job_id, chunk_id, token)
        except (ServiceError, OSError):
            # Lost heartbeats only risk a duplicate computation, never
            # a wrong result; keep computing.
            _log.debug("heartbeat for chunk %d failed", chunk_id)
