"""HTTP client for the sweep service (CLI, workers, tests, CI).

Plain ``http.client`` — one short-lived connection per call, matching
the server's connection-per-request model.  Every method raises
:class:`ServiceError` on a non-2xx response (carrying the server's
error message) and lets ``OSError`` propagate for transport failures
so callers can distinguish "server said no" from "server unreachable".
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Optional, Sequence
from urllib.parse import urlsplit

from ..core.results import ExperimentResult
from .jobs import encode_chunk_results

#: job states that end the wait loop
TERMINAL_STATES = ("done", "failed", "cancelled")


class ServiceError(RuntimeError):
    """The service answered with an error status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(status, message)
        self.status = status
        self.message = message

    def __str__(self) -> str:
        return f"HTTP {self.status}: {self.message}"


class ServiceClient:
    """Typed wrapper over the sweep service's JSON API."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        parts = urlsplit(base_url if "//" in base_url else f"//{base_url}")
        if parts.scheme not in ("", "http"):
            raise ValueError(f"only http:// is supported, got {base_url!r}")
        if not parts.hostname:
            raise ValueError(f"no host in service url {base_url!r}")
        self.host = parts.hostname
        self.port = parts.port or 80
        self.timeout = timeout

    # -- transport -------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
        raw: bool = False,
    ) -> Any:
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            data = response.read()
        finally:
            conn.close()
        if response.status >= 400:
            try:
                message = json.loads(data.decode("utf-8"))["error"]
            except (ValueError, KeyError, UnicodeDecodeError):
                message = data.decode("utf-8", "replace").strip()
            raise ServiceError(response.status, message)
        if raw:
            return data
        if not data:
            return {}
        return json.loads(data.decode("utf-8"))

    # -- job API ---------------------------------------------------------

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def submit(self, spec: dict) -> str:
        """Submit a job spec (JobSpec.to_dict form); returns the job id."""
        return self._request("POST", "/v1/jobs", payload=spec)["job_id"]

    def jobs(self) -> list[dict]:
        return self._request("GET", "/v1/jobs")["jobs"]

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def cancel(self, job_id: str) -> dict:
        return self._request("POST", f"/v1/jobs/{job_id}/cancel")

    def results_bytes(self, job_id: str) -> bytes:
        """The job's canonical results JSON, exactly as stored."""
        data = self._request(
            "GET", f"/v1/jobs/{job_id}/results", raw=True
        )
        assert isinstance(data, bytes)
        return data

    def wait(
        self,
        job_id: str,
        timeout: Optional[float] = None,
        poll_interval_s: float = 0.2,
    ) -> dict:
        """Poll until the job reaches a terminal state; returns it.

        Raises ``TimeoutError`` (with the last status attached) if
        ``timeout`` elapses first.
        """
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        while True:
            status = self.status(job_id)
            if status.get("state") in TERMINAL_STATES:
                return status
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status.get('state')!r} after "
                    f"{timeout:g}s"
                )
            time.sleep(poll_interval_s)

    # -- work-queue API (workers) ----------------------------------------

    def lease(self, worker_id: str) -> Optional[dict]:
        """Lease the next chunk; None when no work is available."""
        granted = self._request(
            "POST", "/v1/queue/lease", payload={"worker_id": worker_id}
        )
        if granted.get("lease") is None:
            return None
        return granted

    def heartbeat(self, job_id: str, chunk_id: int, token: int) -> bool:
        return bool(self._request(
            "POST", "/v1/queue/heartbeat",
            payload={
                "job_id": job_id, "chunk_id": chunk_id, "token": token,
            },
        ).get("alive"))

    def complete(
        self,
        job_id: str,
        chunk_id: int,
        token: int,
        results: Sequence[tuple[int, int, ExperimentResult]],
    ) -> bool:
        return bool(self._request(
            "POST", "/v1/queue/complete",
            payload={
                "job_id": job_id,
                "chunk_id": chunk_id,
                "token": token,
                "results": encode_chunk_results(results),
            },
        ).get("fresh_lease"))

    def fail(
        self, job_id: str, chunk_id: int, token: int, cause: str
    ) -> bool:
        return bool(self._request(
            "POST", "/v1/queue/fail",
            payload={
                "job_id": job_id, "chunk_id": chunk_id, "token": token,
                "cause": cause,
            },
        ).get("accepted"))
