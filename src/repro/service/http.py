"""Minimal asyncio HTTP/1.1 server — stdlib sockets, no frameworks.

``asyncio.start_server`` gives us the listening socket and per
connection streams; this module adds just enough HTTP/1.1 on top for a
JSON control API: request-line + header parsing, ``Content-Length``
bodies, and one response per connection (``Connection: close``).
Deliberately not supported: chunked transfer, keep-alive, pipelining,
TLS — the service binds loopback by default and every client we ship
(:mod:`repro.service.client`, the worker, curl in CI) speaks this
subset.

Handlers are synchronous callables ``(HttpRequest) -> HttpResponse``;
the routes in :mod:`repro.service.server` only touch in-memory state
under short-lived locks and small files, so they run directly on the
event loop.
"""

from __future__ import annotations

import asyncio
import json
import logging
import threading
from typing import Callable, Optional
from urllib.parse import parse_qs, unquote, urlsplit

_log = logging.getLogger("repro.service.http")

#: refuse request bodies beyond this (the largest legitimate payload is
#: a completed chunk of pickled results; smoke-scale chunks are ~100 kB)
MAX_BODY_BYTES = 256 * 1024 * 1024
MAX_HEADER_BYTES = 64 * 1024


class HttpError(Exception):
    """Raise inside a handler to produce a non-200 JSON response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(status, message)
        self.status = status
        self.message = message


class HttpRequest:
    """One parsed request: method, path, query mapping, body bytes."""

    def __init__(
        self, method: str, target: str, headers: dict[str, str], body: bytes
    ) -> None:
        self.method = method
        parts = urlsplit(target)
        self.path = unquote(parts.path)
        self.query: dict[str, str] = {
            k: v[-1] for k, v in parse_qs(parts.query).items()
        }
        self.headers = headers
        self.body = body

    def json(self) -> dict:
        """Decode the body as a JSON object (400 on anything else)."""
        if not self.body:
            return {}
        try:
            payload = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            raise HttpError(400, "request body is not valid JSON") from None
        if not isinstance(payload, dict):
            raise HttpError(400, "request body must be a JSON object")
        return payload


class HttpResponse:
    """Status + body; :meth:`json` builds the common case."""

    REASONS = {
        200: "OK", 201: "Created", 204: "No Content", 400: "Bad Request",
        404: "Not Found", 405: "Method Not Allowed", 409: "Conflict",
        413: "Payload Too Large", 500: "Internal Server Error",
        503: "Service Unavailable",
    }

    def __init__(
        self, status: int = 200, body: bytes = b"",
        content_type: str = "application/octet-stream",
    ) -> None:
        self.status = status
        self.body = body
        self.content_type = content_type

    @classmethod
    def json(cls, payload: object, status: int = 200) -> "HttpResponse":
        data = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        return cls(status, data, "application/json")

    def encode(self) -> bytes:
        reason = self.REASONS.get(self.status, "Unknown")
        head = (
            f"HTTP/1.1 {self.status} {reason}\r\n"
            f"Content-Type: {self.content_type}\r\n"
            f"Content-Length: {len(self.body)}\r\n"
            f"Connection: close\r\n"
            f"\r\n"
        )
        return head.encode("ascii") + self.body


Handler = Callable[[HttpRequest], HttpResponse]


async def _read_request(reader: asyncio.StreamReader) -> Optional[HttpRequest]:
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError:
        return None  # connection closed before a full request arrived
    except asyncio.LimitOverrunError:
        raise HttpError(413, "headers too large") from None
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(413, "headers too large")
    lines = head.decode("latin-1").split("\r\n")
    try:
        method, target, version = lines[0].split(" ", 2)
    except ValueError:
        raise HttpError(400, f"malformed request line {lines[0]!r}") from None
    if not version.startswith("HTTP/1."):
        raise HttpError(400, f"unsupported protocol {version!r}")
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise HttpError(400, f"bad Content-Length {length_text!r}") from None
    if length < 0 or length > MAX_BODY_BYTES:
        raise HttpError(413, f"body of {length} bytes refused")
    body = await reader.readexactly(length) if length else b""
    return HttpRequest(method.upper(), target, headers, body)


class HttpServer:
    """Serve a synchronous handler over ``asyncio.start_server``."""

    def __init__(
        self, handler: Handler, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.handler = handler
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> int:
        """Bind and start accepting; returns the bound port."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            limit=MAX_HEADER_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        _log.info("listening on http://%s:%d", self.host, self.port)
        return self.port

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await _read_request(reader)
                if request is None:
                    return
                response = self.handler(request)
            except HttpError as err:
                response = HttpResponse.json(
                    {"error": err.message}, status=err.status
                )
            except Exception:  # repro-lint: disable=EXC001 -- connection
                # boundary: one bad request must not take the service
                # down; the traceback is logged and the client gets 500
                _log.exception("handler crashed")
                response = HttpResponse.json(
                    {"error": "internal server error"}, status=500
                )
            writer.write(response.encode())
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-response; nothing to salvage
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass


RouteHandler = Callable[..., HttpResponse]


class Router:
    """Tiny path router: literal segments plus ``{name}`` captures."""

    def __init__(self) -> None:
        self._routes: list[tuple[str, list[str], RouteHandler]] = []

    def add(self, method: str, pattern: str, handler: RouteHandler) -> None:
        self._routes.append(
            (method.upper(), pattern.strip("/").split("/"), handler)
        )

    def dispatch(self, request: HttpRequest) -> HttpResponse:
        segments = request.path.strip("/").split("/")
        path_matched = False
        for method, pattern, handler in self._routes:
            params = self._match(pattern, segments)
            if params is None:
                continue
            path_matched = True
            if method != request.method:
                continue
            return handler(request, **params)
        if path_matched:
            raise HttpError(405, f"method {request.method} not allowed here")
        raise HttpError(404, f"no route for {request.path}")

    @staticmethod
    def _match(
        pattern: list[str], segments: list[str]
    ) -> Optional[dict[str, str]]:
        if len(pattern) != len(segments):
            return None
        params: dict[str, str] = {}
        for part, segment in zip(pattern, segments):
            if part.startswith("{") and part.endswith("}"):
                if not segment:
                    return None
                params[part[1:-1]] = segment
            elif part != segment:
                return None
        return params


def run_server_in_thread(
    handler: Handler, host: str = "127.0.0.1", port: int = 0,
) -> "ThreadedHttpServer":
    """Start an :class:`HttpServer` on a daemon thread (tests, service).

    Returns once the socket is bound; ``.port`` is the live port and
    ``.stop()`` shuts the loop down.
    """
    server = HttpServer(handler, host, port)
    started = threading.Event()
    box: dict[str, object] = {}

    def runner() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        box["loop"] = loop
        try:
            loop.run_until_complete(server.start())
            started.set()
            loop.run_forever()
        finally:
            loop.run_until_complete(server.close())
            loop.close()

    thread = threading.Thread(
        target=runner, name="repro-http", daemon=True
    )
    thread.start()
    if not started.wait(timeout=10.0):
        raise RuntimeError("HTTP server failed to start within 10 s")
    loop = box["loop"]
    assert isinstance(loop, asyncio.AbstractEventLoop)
    return ThreadedHttpServer(server, loop, thread)


class ThreadedHttpServer:
    """Handle to a server running on its own event-loop thread."""

    def __init__(
        self,
        server: HttpServer,
        loop: asyncio.AbstractEventLoop,
        thread: threading.Thread,
    ) -> None:
        self.server = server
        self.loop = loop
        self.thread = thread

    @property
    def port(self) -> int:
        return self.server.port

    def stop(self, timeout: float = 10.0) -> None:
        if self.loop.is_running():
            self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=timeout)
